"""Invariant packs: the per-scenario contracts the oracle enforces.

A scenario without an enforceable contract is a demo, not a gate.  Each
scenario family in :mod:`repro.scenarios.suite` ships an
:class:`InvariantPack` — a frozen bundle of bounds evaluated against the
scenario's ``spotweb-events/1`` journal by :func:`evaluate_pack`:

- **SLO floor** — request-weighted compliance over the ``slo.interval``
  series (cluster episodes) or the served fraction reported by the
  interval simulator (portfolio scenarios) must not drop below a floor.
- **Cost ceiling** — the episode's integrated cost must stay bounded;
  a controller that survives a storm by buying the world has not won.
- **No stranded sessions** — at episode end no session may remain
  pinned to a dead or dropped backend.
- **Causal resolution** — every ``warning.issued`` must be closed by a
  ``warning.resolved`` whose ``cause`` names it (terminal outcomes are
  enforced by the journal schema itself).
- **Conservation ledger** — the hybrid engine's fluid tier must balance
  (inflow == outflow + residual mass) to within a tolerance.
- **Stress witnesses** — minimum revocation counts / shortfall so a
  green run proves the scenario actually bit, not that it was skipped.

Violations are data, not exceptions: the oracle collects all of them and
the CLI turns a non-empty list into a non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Violation",
    "InvariantPack",
    "scenario_outcome",
    "weighted_compliance",
    "unresolved_warnings",
    "evaluate_pack",
    "compare_engines",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with the observed value and its bound."""

    scenario: str
    invariant: str
    message: str
    observed: float | None = None
    bound: float | None = None

    def __str__(self) -> str:
        return f"{self.scenario}: [{self.invariant}] {self.message}"


@dataclass(frozen=True)
class InvariantPack:
    """Bounds one scenario's journal must satisfy.

    ``None`` disables a bound (e.g. portfolio scenarios have no session
    table, so ``max_stranded=None``).  ``min_revocations`` and
    ``min_unserved_fraction`` are *stress witnesses*: they fail the run
    when the adversarial condition never materialized, which would make
    every other bound vacuously green.
    """

    slo_floor: float | None = None
    cost_ceiling: float | None = None
    max_stranded: int | None = 0
    require_resolution: bool = True
    conservation_tol: float | None = 1e-6
    min_revocations: int = 0
    max_unserved_fraction: float | None = None
    min_unserved_fraction: float | None = None
    #: Detection witness: the streaming anomaly detectors must flag the
    #: episode at least this many times (``telemetry.anomaly`` events).
    min_anomalies: int = 0
    #: Quiet bound for control scenarios: at most this many flags
    #: (``None`` disables; ``0`` demands total silence).
    max_anomalies: int | None = None

    def __post_init__(self) -> None:
        if self.slo_floor is not None and not 0 <= self.slo_floor <= 1:
            raise ValueError("slo_floor must be in [0, 1]")
        if self.cost_ceiling is not None and self.cost_ceiling <= 0:
            raise ValueError("cost_ceiling must be positive")
        if self.max_stranded is not None and self.max_stranded < 0:
            raise ValueError("max_stranded must be non-negative")
        if self.conservation_tol is not None and self.conservation_tol < 0:
            raise ValueError("conservation_tol must be non-negative")
        if self.min_revocations < 0:
            raise ValueError("min_revocations must be non-negative")
        if self.min_anomalies < 0:
            raise ValueError("min_anomalies must be non-negative")
        if self.max_anomalies is not None and (
            self.max_anomalies < self.min_anomalies
        ):
            raise ValueError("max_anomalies must be >= min_anomalies")


def scenario_outcome(records: list[dict]) -> dict | None:
    """The attrs of the journal's final ``scenario.outcome`` event."""
    outcome = None
    for rec in records:
        if rec["kind"] == "scenario.outcome":
            outcome = rec["attrs"]
    return outcome


def weighted_compliance(records: list[dict]) -> float | None:
    """Request-weighted SLO compliance over the ``slo.interval`` series.

    ``None`` when the journal has no SLO series (interval-level
    scenarios) — callers fall back to the outcome's served fraction.
    Empty intervals carry compliance 1.0 with weight 0, so they cannot
    mask a bad interval.
    """
    total = 0.0
    good = 0.0
    seen = False
    for rec in records:
        if rec["kind"] != "slo.interval":
            continue
        seen = True
        requests = float(rec["attrs"].get("requests", 0))
        total += requests
        good += requests * float(rec["attrs"].get("compliance", 1.0))
    if not seen:
        return None
    return good / total if total > 0 else 1.0


def unresolved_warnings(records: list[dict]) -> list[str]:
    """Ids of ``warning.issued`` events never closed by a resolution."""
    open_ids: dict[str, None] = {}
    for rec in records:
        if rec["kind"] == "warning.issued" and rec["id"] is not None:
            open_ids[rec["id"]] = None
        elif rec["kind"] == "warning.resolved" and rec["cause"] is not None:
            open_ids.pop(rec["cause"], None)
    return list(open_ids)


def _count_warnings(records: list[dict]) -> int:
    return sum(1 for rec in records if rec["kind"] == "warning.issued")


def _count_anomalies(records: list[dict]) -> int:
    return sum(1 for rec in records if rec["kind"] == "telemetry.anomaly")


def evaluate_pack(
    scenario: str, records: list[dict], pack: InvariantPack
) -> list[Violation]:
    """Evaluate one scenario journal against its pack; returns violations.

    The journal must contain a ``scenario.outcome`` event (emitted by
    every scenario runner); its absence is itself a violation, because a
    crashed or truncated run must not pass the gate.
    """
    violations: list[Violation] = []

    outcome = scenario_outcome(records)
    if outcome is None:
        violations.append(
            Violation(
                scenario,
                "outcome",
                "journal has no scenario.outcome event (truncated run?)",
            )
        )
        outcome = {}

    compliance = weighted_compliance(records)
    if compliance is None:
        served = outcome.get("compliance")
        compliance = None if served is None else float(served)
    if pack.slo_floor is not None:
        if compliance is None:
            violations.append(
                Violation(
                    scenario,
                    "slo_floor",
                    "no compliance signal in journal (no slo.interval "
                    "events and no outcome compliance)",
                    bound=pack.slo_floor,
                )
            )
        elif compliance < pack.slo_floor:
            violations.append(
                Violation(
                    scenario,
                    "slo_floor",
                    f"compliance {compliance:.4f} below floor "
                    f"{pack.slo_floor:.4f}",
                    observed=compliance,
                    bound=pack.slo_floor,
                )
            )

    if pack.cost_ceiling is not None:
        cost = outcome.get("cost")
        if cost is None:
            violations.append(
                Violation(
                    scenario,
                    "cost_ceiling",
                    "outcome reports no cost",
                    bound=pack.cost_ceiling,
                )
            )
        elif float(cost) > pack.cost_ceiling:
            violations.append(
                Violation(
                    scenario,
                    "cost_ceiling",
                    f"cost {float(cost):.3f} exceeds ceiling "
                    f"{pack.cost_ceiling:.3f}",
                    observed=float(cost),
                    bound=pack.cost_ceiling,
                )
            )

    if pack.max_stranded is not None:
        stranded = int(outcome.get("stranded", 0))
        if stranded > pack.max_stranded:
            violations.append(
                Violation(
                    scenario,
                    "stranded_sessions",
                    f"{stranded} sessions stranded on dead backends "
                    f"(allowed {pack.max_stranded})",
                    observed=float(stranded),
                    bound=float(pack.max_stranded),
                )
            )

    if pack.require_resolution:
        dangling = unresolved_warnings(records)
        if dangling:
            violations.append(
                Violation(
                    scenario,
                    "warning_resolution",
                    f"{len(dangling)} warning(s) never resolved: "
                    f"{', '.join(sorted(dangling)[:5])}",
                    observed=float(len(dangling)),
                    bound=0.0,
                )
            )

    if pack.conservation_tol is not None:
        ledger = abs(float(outcome.get("ledger_error", 0.0)))
        if ledger > pack.conservation_tol:
            violations.append(
                Violation(
                    scenario,
                    "conservation",
                    f"fluid ledger error {ledger:.3e} exceeds tolerance "
                    f"{pack.conservation_tol:.1e}",
                    observed=ledger,
                    bound=pack.conservation_tol,
                )
            )

    if pack.min_revocations > 0:
        revocations = _count_warnings(records)
        if revocations < pack.min_revocations:
            violations.append(
                Violation(
                    scenario,
                    "stress_witness",
                    f"only {revocations} revocation warning(s); scenario "
                    f"requires at least {pack.min_revocations} to count "
                    "as stressed",
                    observed=float(revocations),
                    bound=float(pack.min_revocations),
                )
            )

    if pack.min_anomalies > 0 or pack.max_anomalies is not None:
        anomalies = _count_anomalies(records)
        if anomalies < pack.min_anomalies:
            violations.append(
                Violation(
                    scenario,
                    "detection_witness",
                    f"only {anomalies} telemetry.anomaly event(s); scenario "
                    f"requires at least {pack.min_anomalies} — the streaming "
                    "detectors missed the incident",
                    observed=float(anomalies),
                    bound=float(pack.min_anomalies),
                )
            )
        if pack.max_anomalies is not None and anomalies > pack.max_anomalies:
            violations.append(
                Violation(
                    scenario,
                    "detection_quiet",
                    f"{anomalies} telemetry.anomaly event(s) on a scenario "
                    f"bounded at {pack.max_anomalies} — the detectors are "
                    "crying wolf",
                    observed=float(anomalies),
                    bound=float(pack.max_anomalies),
                )
            )

    unserved = outcome.get("unserved_fraction")
    if pack.max_unserved_fraction is not None and unserved is not None:
        if float(unserved) > pack.max_unserved_fraction:
            violations.append(
                Violation(
                    scenario,
                    "unserved_ceiling",
                    f"unserved fraction {float(unserved):.4f} exceeds "
                    f"{pack.max_unserved_fraction:.4f}",
                    observed=float(unserved),
                    bound=pack.max_unserved_fraction,
                )
            )
    if pack.min_unserved_fraction is not None:
        if unserved is None or float(unserved) < pack.min_unserved_fraction:
            violations.append(
                Violation(
                    scenario,
                    "stress_witness",
                    "scenario expected unavoidable shortfall "
                    f"(>= {pack.min_unserved_fraction:.4f}) but observed "
                    f"{0.0 if unserved is None else float(unserved):.4f}",
                    observed=0.0 if unserved is None else float(unserved),
                    bound=pack.min_unserved_fraction,
                )
            )

    return violations


def compare_engines(
    scenario: str,
    compliance_by_engine: dict[str, float],
    *,
    tolerance: float,
) -> list[Violation]:
    """Cross-engine accuracy gate: compliance must agree within tolerance.

    Scenario episodes run under both ``engine=request`` (the reference)
    and ``engine=hybrid`` (the fluid/request two-tier engine); a drift
    larger than ``tolerance`` means the fluid tier is mis-modelling
    exactly the adversarial windows it exists to survive.
    """
    if len(compliance_by_engine) < 2:
        return []
    values = sorted(compliance_by_engine.items())
    spread = max(v for _, v in values) - min(v for _, v in values)
    if spread <= tolerance:
        return []
    detail = ", ".join(f"{eng}={val:.4f}" for eng, val in values)
    return [
        Violation(
            scenario,
            "engine_agreement",
            f"compliance spread {spread:.4f} across engines ({detail}) "
            f"exceeds tolerance {tolerance:.4f}",
            observed=spread,
            bound=tolerance,
        )
    ]
