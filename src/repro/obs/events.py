"""Sim-time domain-event journal for the SpotWeb *service* lifecycle.

Where :mod:`repro.obs.tracer` observes the **code** (wall-clock spans),
this module observes the **service**: revocation warnings, drains,
session migrations, replacement boots, admission-control flips,
reprovision requests, per-interval plans, and SLO state.  Events are
keyed by **simulation time** and interval — never the wall clock — so a
journal is a pure function of ``(config, seed)`` and composes with
spotgraph's determinism-taint rules: two identical-seed runs produce
byte-identical journals, serial or parallel.

Causal linkage
--------------
Every revocation warning opened with :meth:`EventLog.open_warning` gets
a journal-unique id (``w0``, ``w1``, ...).  The drain / migration /
replacement-boot / admission-control / reprovision events it triggers
carry that id in their ``cause`` field, and the warning is closed by a
``warning.resolved`` event whose ``outcome`` is one of
:data:`TERMINAL_OUTCOMES`:

- ``migrated`` — the backend was drained and its sessions moved before
  the kill (nothing was lost);
- ``completed`` — the backend died idle (nothing to migrate, nothing
  lost), or an interval-level revocation was replaced like-for-like;
- ``failed`` — in-flight requests were lost at the kill.

The journal is **off by default** behind a shared no-op sink: when
disabled, every instrumented site costs one method call (or one local
boolean check in the DES hot loop), so tier-1 runtime and bitwise
experiment outputs are unchanged.  Opt in with ``--events`` on the CLI,
:func:`enable_events`, or ``SPOTWEB_EVENTS=1``.

Journals export as schema-tagged JSONL (``spotweb-events/1``): a header
line carrying the schema tag, then one event per line with fields
``seq`` / ``t`` / ``interval`` / ``kind`` / ``id`` / ``cause`` /
``attrs``.  :func:`validate_events` reports the **file line number and
offending field** of the first malformed record.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.contracts import field_units, units

__all__ = [
    "EVENTS_SCHEMA",
    "TERMINAL_OUTCOMES",
    "EventValidationError",
    "EventLog",
    "get_events",
    "set_events",
    "enable_events",
    "disable_events",
    "events_enabled",
    "write_events",
    "load_events",
    "validate_events",
]

EVENTS_SCHEMA = "spotweb-events/1"

#: Outcomes a ``warning.resolved`` event may carry.
TERMINAL_OUTCOMES = ("migrated", "completed", "failed")

# Required keys of one exported event record, with their permitted types.
_EVENT_FIELDS: dict[str, tuple[type, ...]] = {
    "seq": (int,),
    "t": (int, float),
    "interval": (int, type(None)),
    "kind": (str,),
    "id": (str, type(None)),
    "cause": (str, type(None)),
    "attrs": (dict,),
}

_UNSET = object()


class EventValidationError(ValueError):
    """A malformed journal record, locating the line and field at fault.

    ``line`` is the 1-based JSONL line number (``None`` when validating
    in-memory records with no file context); ``field`` names the
    offending record field (``None`` for whole-record problems).
    """

    def __init__(
        self, message: str, *, line: int | None = None, field: str | None = None
    ) -> None:
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line
        self.field = field


@field_units(clock="s")
class EventLog:
    """Deterministic, sim-time-keyed domain-event collector.

    One log is active per process (see :func:`get_events`); instrumented
    code does::

        ev = get_events()
        wid = ev.open_warning(backend_id, t=now, capacity_rps=cap)
        ...
        ev.emit("server.drain", t=now, cause=wid, backend=backend_id)
        ...
        ev.resolve_warning(wid, t=now, lost=lost)

    When ``enabled`` is ``False`` (the default for the global log) every
    method returns immediately, so the disabled cost of an instrumented
    site is a single method call.

    The log also carries a **sim clock** (``clock``/``interval``) that
    time-owning drivers (the DES loop, the interval simulator) keep
    current, so components with no view of simulation time — the WRR
    scheduler, the revocation sampler — can still emit correctly keyed
    events.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.clock = 0.0
        self.interval: int | None = None
        self._records: list[dict] = []
        self._seq = 0
        self._next_warning = 0
        # warning id -> {"backend": ..., "migrated": accumulated count}
        self._open_warnings: dict[str, dict] = {}
        self._backend_warning: dict[object, str] = {}
        self._last_warning: str | None = None
        self._cause_stack: list[str] = []

    # -------------------------------------------------------------- recording
    @units(None, t="s")
    def emit(
        self,
        kind: str,
        *,
        t: float | None = None,
        interval: object = _UNSET,
        event_id: str | None = None,
        cause: str | None = None,
        **attrs,
    ) -> None:
        """Append one event; no-op while disabled.

        ``t`` defaults to the log's sim clock, ``interval`` to the log's
        current interval; ``cause`` defaults to the innermost active
        :meth:`causal` context (``None`` outside one).  ``attrs`` values
        are coerced to JSON-native scalars (numpy scalars flattened).
        """
        if not self.enabled:
            return
        if t is None:
            t = self.clock
        if interval is _UNSET:
            interval = self.interval
        if cause is None and self._cause_stack:
            cause = self._cause_stack[-1]
        self._records.append(
            {
                "seq": self._seq,
                "t": float(t),
                "interval": None if interval is None else int(interval),
                "kind": str(kind),
                "id": event_id,
                "cause": cause,
                "attrs": {key: _plain(value) for key, value in attrs.items()},
            }
        )
        self._seq += 1
        if cause is not None and kind == "session.migrate":
            info = self._open_warnings.get(cause)
            if info is not None:
                info["migrated"] += int(attrs.get("migrated", 0))

    def unique_id(self, prefix: str) -> str | None:
        """A journal-unique event id (``None`` while disabled).

        Built from the next sequence number, which strictly increases and
        is never reused — so ids minted here can never collide with each
        other, and :meth:`adopt` prefixing keeps them unique across
        parallel sweep cells.  Intended for emitters that need a
        referenceable id outside the warning lifecycle (e.g. spike
        markers that tier-switch events point at causally).
        """
        if not self.enabled:
            return None
        return f"{prefix}{self._seq}"

    # ---------------------------------------------------------- causal layer
    @units(None, t="s")
    def open_warning(
        self, backend: object, *, t: float | None = None, **attrs
    ) -> str | None:
        """Issue a revocation warning; returns its journal-unique id."""
        if not self.enabled:
            return None
        wid = f"w{self._next_warning}"
        self._next_warning += 1
        self._open_warnings[wid] = {"backend": backend, "migrated": 0}
        self._backend_warning[backend] = wid
        self._last_warning = wid
        self.emit(
            "warning.issued", t=t, event_id=wid, backend=_plain(backend), **attrs
        )
        return wid

    def warning_for(self, backend: object) -> str | None:
        """The open warning id covering ``backend`` (``None`` if none)."""
        return self._backend_warning.get(backend)

    def last_open_warning(self) -> str | None:
        """The most recently issued warning id still unresolved."""
        if self._last_warning in self._open_warnings:
            return self._last_warning
        return None

    def warning_migrations(self, warning_id: str | None) -> int:
        """Sessions migrated so far under an open warning."""
        info = self._open_warnings.get(warning_id)
        return 0 if info is None else int(info["migrated"])

    @units(None, t="s")
    def resolve_warning(
        self,
        warning_id: str | None,
        *,
        t: float | None = None,
        lost: int = 0,
        outcome: str | None = None,
        **attrs,
    ) -> None:
        """Close a warning with a terminal outcome.

        When ``outcome`` is not given it is derived: ``failed`` if the
        kill lost requests, else ``migrated`` if any sessions were
        migrated under this warning, else ``completed``.
        """
        if not self.enabled or warning_id is None:
            return
        info = self._open_warnings.pop(warning_id, None)
        if info is None:
            return
        if self._backend_warning.get(info["backend"]) == warning_id:
            del self._backend_warning[info["backend"]]
        if outcome is None:
            if lost > 0:
                outcome = "failed"
            elif info["migrated"] > 0:
                outcome = "migrated"
            else:
                outcome = "completed"
        self.emit(
            "warning.resolved",
            t=t,
            cause=warning_id,
            outcome=outcome,
            lost=int(lost),
            migrated=int(info["migrated"]),
            **attrs,
        )

    @contextmanager
    def causal(self, cause: str | None) -> Iterator[None]:
        """Scope within which emitted events default their ``cause``."""
        if not self.enabled or cause is None:
            yield
            return
        self._cause_stack.append(cause)
        try:
            yield
        finally:
            self._cause_stack.pop()

    def current_cause(self) -> str | None:
        """The innermost active :meth:`causal` context id."""
        return self._cause_stack[-1] if self._cause_stack else None

    # --------------------------------------------------------------- sim clock
    @units(None, "s")
    def set_interval(self, interval: int | None, t: float | None = None) -> None:
        """Advance the log's interval (and optionally its sim clock)."""
        if not self.enabled:
            return
        self.interval = None if interval is None else int(interval)
        if t is not None:
            self.clock = float(t)

    # ----------------------------------------------------------------- results
    def records(self) -> list[dict]:
        """The journal so far, in emission (= seq) order."""
        return list(self._records)

    def record_count(self) -> int:
        """Number of records in the journal (cheap cursor anchor)."""
        return len(self._records)

    def records_since(self, start: int) -> list[dict]:
        """Records appended at index ``start`` and later.

        Streaming consumers (the telemetry bus) keep a cursor of
        :meth:`record_count` and drain only the new tail each tick; a
        count smaller than the cursor means the log was cleared or
        swapped, so callers should reset their cursor to zero.
        """
        return list(self._records[start:])

    def open_warning_count(self) -> int:
        return len(self._open_warnings)

    def clear(self) -> None:
        """Drop every event and reset ids, clock, and causal state."""
        self._records.clear()
        self._seq = 0
        self._next_warning = 0
        self._open_warnings.clear()
        self._backend_warning.clear()
        self._last_warning = None
        self._cause_stack.clear()
        self.clock = 0.0
        self.interval = None

    def adopt(self, records: Iterable[dict], *, cell: int | None = None) -> None:
        """Merge a sub-run's journal (e.g. one parallel sweep cell).

        Events are re-sequenced onto this log; ids and causes are
        prefixed ``c<cell>.`` so warnings from different cells never
        collide.  Adoption order is the caller's responsibility — the
        sweep engine adopts cells in item order, which is what makes the
        serial and parallel journals byte-identical.
        """
        if not self.enabled:
            return
        prefix = None if cell is None else f"c{cell}."
        for rec in records:
            eid, cause = rec["id"], rec["cause"]
            attrs = dict(rec["attrs"])
            if prefix is not None:
                eid = None if eid is None else prefix + eid
                cause = None if cause is None else prefix + cause
                attrs["cell"] = cell
            self._records.append(
                {
                    "seq": self._seq,
                    "t": rec["t"],
                    "interval": rec["interval"],
                    "kind": rec["kind"],
                    "id": eid,
                    "cause": cause,
                    "attrs": attrs,
                }
            )
            self._seq += 1

    def write(self, path: str | Path) -> Path:
        """Export the journal as schema-tagged JSONL."""
        return write_events(self.records(), path)


def _plain(value: object) -> object:
    """Coerce numpy scalars and other oddities to JSON-native types."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    try:
        return value.item()  # numpy scalar
    except AttributeError:
        return str(value)


# ---------------------------------------------------------------------- global
def _enabled_from_env() -> bool:
    return os.environ.get("SPOTWEB_EVENTS", "0") not in ("", "0")


_EVENTS = EventLog(enabled=_enabled_from_env())


def get_events() -> EventLog:
    """The process-global event log (disabled unless opted in)."""
    return _EVENTS


def set_events(log: EventLog) -> EventLog:
    """Replace the global log (tests, sweep cells); returns the old one."""
    global _EVENTS
    old, _EVENTS = _EVENTS, log
    return old


def enable_events() -> EventLog:
    """Switch the global log on (fresh seq counter, empty journal)."""
    _EVENTS.enabled = True
    _EVENTS.clear()
    return _EVENTS


def disable_events() -> EventLog:
    """Switch the global log off; keeps already-recorded events."""
    _EVENTS.enabled = False
    return _EVENTS


def events_enabled() -> bool:
    return _EVENTS.enabled


# ---------------------------------------------------------------- journal files
def write_events(records: Iterable[dict], path: str | Path) -> Path:
    """Write event records as JSONL with a schema header line."""
    path = Path(path)
    lines = [json.dumps({"schema": EVENTS_SCHEMA, "kind": "header"})]
    lines.extend(json.dumps(rec, sort_keys=True) for rec in records)
    path.write_text("\n".join(lines) + "\n")
    return path


def load_events(
    path: str | Path, *, require_resolution: bool = True
) -> list[dict]:
    """Load and validate a journal; returns the event records.

    Raises :class:`EventValidationError` naming the 1-based file line and
    the offending field of the first malformed record.
    """
    raw = Path(path).read_text().splitlines()
    numbered: list[tuple[int, dict]] = []
    for lineno, line in enumerate(raw, start=1):
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError as exc:
            raise EventValidationError(
                f"not valid JSON: {exc.msg}", line=lineno
            ) from exc
        if not isinstance(parsed, dict):
            raise EventValidationError("record is not an object", line=lineno)
        numbered.append((lineno, parsed))
    if not numbered:
        raise EventValidationError("empty journal file")
    header_line, header = numbered[0]
    if header.get("schema") != EVENTS_SCHEMA:
        raise EventValidationError(
            f"unknown journal schema: {header.get('schema')!r}",
            line=header_line,
            field="schema",
        )
    records = [rec for _lineno, rec in numbered[1:]]
    lines = [lineno for lineno, _rec in numbered[1:]]
    validate_events(
        records, lines=lines, require_resolution=require_resolution
    )
    return records


def validate_events(
    records: list[dict],
    *,
    lines: list[int] | None = None,
    require_resolution: bool = True,
) -> None:
    """Check event records against the ``spotweb-events/1`` schema.

    Raises :class:`EventValidationError` on the first violation: a
    missing or mistyped field, a non-monotonic ``seq``, a duplicate id, a
    ``cause`` referencing an id not seen earlier in the journal, a
    ``warning.resolved`` with a non-terminal outcome, or (with
    ``require_resolution``) a ``warning.issued`` never resolved.

    ``lines`` maps each record to its 1-based JSONL line number so the
    error can point at the file, not just the record index.
    """

    def where(i: int) -> int | None:
        return lines[i] if lines is not None and i < len(lines) else None

    seen_ids: dict[str, int] = {}
    open_warnings: dict[str, int] = {}
    prev_seq: int | None = None
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise EventValidationError(
                f"record {i} is not an object", line=where(i)
            )
        for key, types in _EVENT_FIELDS.items():
            if key not in rec:
                raise EventValidationError(
                    f"record {i} missing field {key!r}",
                    line=where(i),
                    field=key,
                )
            if not isinstance(rec[key], types) or isinstance(rec[key], bool):
                raise EventValidationError(
                    f"record {i} field {key!r} has type "
                    f"{type(rec[key]).__name__}, expected "
                    + "/".join(t.__name__ for t in types),
                    line=where(i),
                    field=key,
                )
        if prev_seq is not None and rec["seq"] <= prev_seq:
            raise EventValidationError(
                f"record {i} seq {rec['seq']} is not strictly increasing "
                f"(previous {prev_seq})",
                line=where(i),
                field="seq",
            )
        prev_seq = rec["seq"]
        eid = rec["id"]
        if eid is not None:
            if eid in seen_ids:
                raise EventValidationError(
                    f"record {i} reuses id {eid!r} "
                    f"(first defined by record {seen_ids[eid]})",
                    line=where(i),
                    field="id",
                )
            seen_ids[eid] = i
        cause = rec["cause"]
        if cause is not None and cause not in seen_ids:
            raise EventValidationError(
                f"record {i} cause {cause!r} references an id not seen "
                "earlier in the journal",
                line=where(i),
                field="cause",
            )
        kind = rec["kind"]
        if kind == "warning.issued" and eid is not None:
            open_warnings[eid] = i
        elif kind == "warning.resolved":
            outcome = rec["attrs"].get("outcome")
            if outcome not in TERMINAL_OUTCOMES:
                raise EventValidationError(
                    f"record {i} warning.resolved outcome {outcome!r} is not "
                    f"one of {TERMINAL_OUTCOMES}",
                    line=where(i),
                    field="attrs",
                )
            if cause is None:
                raise EventValidationError(
                    f"record {i} warning.resolved has no cause",
                    line=where(i),
                    field="cause",
                )
            open_warnings.pop(cause, None)
    if require_resolution and open_warnings:
        wid = min(open_warnings, key=open_warnings.get)
        i = open_warnings[wid]
        raise EventValidationError(
            f"warning {wid!r} (record {i}) never resolved to a terminal "
            "outcome",
            line=where(i),
            field="id",
        )
