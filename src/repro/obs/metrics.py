"""Lightweight metrics registry: counters, gauges, histograms.

The registry is always on — an increment is an attribute add, far below
the cost of anything it instruments — and it never feeds back into any
decision, prediction, or RNG stream, so experiment outputs are bitwise
identical with or without consumers reading it.

Instrumented metrics across the control loop include::

    sim.revocations            revocation events seen by the cost simulator
    lb.warnings                revocation warnings handled by the balancer
    lb.migrations              sessions migrated off doomed backends
    lb.admission_rejections    requests rejected by admission control
    lb.reprovision_requests    replacement-capacity callbacks issued
    mpo.solves / mpo.warm_start_hits   solver invocations / warm-started ones
    mpo.iterations             ADMM iterations per solve (histogram)
    controller.solve_ms        per-interval optimizer latency (histogram)

:meth:`MetricsRegistry.snapshot` returns a deterministic, JSON-ready dict
(sorted names, stable summary statistics) that experiment reports and the
CLI fold into their output.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "prometheus_text",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """An append-only sample distribution with a deterministic summary.

    Stores every observation (the control loop produces at most one sample
    per interval per metric, so memory stays bounded by run length); the
    snapshot reports count/total/min/max and interpolated p50/p95.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.values.append(value)

    @staticmethod
    def _quantile(ordered: list[float], q: float) -> float:
        """Linear-interpolated quantile of an already-sorted sample."""
        if not ordered:
            return 0.0
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def snapshot(self) -> dict:
        ordered = sorted(self.values)
        if not ordered:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": len(ordered),
            "total": float(sum(ordered)),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self._quantile(ordered, 0.50),
            "p95": self._quantile(ordered, 0.95),
        }


class MetricsRegistry:
    """Name-keyed store of counters, gauges, and histograms.

    Accessors create on first use, so instrumented code never has to
    pre-register::

        get_metrics().counter("lb.warnings").inc()

    A name is bound to its first-seen kind; reusing it as another kind
    raises (two call sites silently sharing a name is always a bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Deterministic dict of every metric's current value.

        Counters map to ints, gauges to floats, histograms to their summary
        dicts; names are sorted so two identical runs produce identical
        (and JSON-diffable) snapshots.
        """
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        self._metrics.clear()


def _prom_name(name: str, *, prefix: str) -> str:
    return prefix + name.replace(".", "_").replace("-", "_")


def prometheus_text(snapshot: dict, *, prefix: str = "spotweb_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format.

    Counters (int values) become ``counter`` series, gauges (floats)
    become ``gauge`` series, and histogram summaries export as a
    Prometheus ``summary``: ``{quantile="0.5"|"0.95"}`` series plus the
    conventional ``_sum`` and ``_count``.  Metric names keep snapshot
    (sorted) order with dots mangled to underscores, so output is as
    deterministic as the snapshot itself.
    """
    lines: list[str] = []
    for name, value in snapshot.items():
        pname = _prom_name(name, prefix=prefix)
        if isinstance(value, bool):
            raise TypeError(f"metric {name!r} has non-metric value {value!r}")
        if isinstance(value, int):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {value}")
        elif isinstance(value, float):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {value}")
        elif isinstance(value, dict):
            lines.append(f"# TYPE {pname} summary")
            lines.append(f'{pname}{{quantile="0.5"}} {value["p50"]}')
            lines.append(f'{pname}{{quantile="0.95"}} {value["p95"]}')
            lines.append(f"{pname}_sum {value['total']}")
            lines.append(f"{pname}_count {value['count']}")
        else:
            raise TypeError(f"metric {name!r} has non-metric value {value!r}")
    return "\n".join(lines) + "\n" if lines else ""


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry (tests); returns the old one."""
    global _METRICS
    old, _METRICS = _METRICS, registry
    return old


def reset_metrics() -> None:
    """Clear every metric in the global registry."""
    _METRICS.reset()
