"""Lightweight metrics registry: counters, gauges, histograms.

The registry is always on — an increment is an attribute add, far below
the cost of anything it instruments — and it never feeds back into any
decision, prediction, or RNG stream, so experiment outputs are bitwise
identical with or without consumers reading it.

Instrumented metrics across the control loop include::

    sim.revocations            revocation events seen by the cost simulator
    lb.warnings                revocation warnings handled by the balancer
    lb.migrations              sessions migrated off doomed backends
    lb.admission_rejections    requests rejected by admission control
    lb.reprovision_requests    replacement-capacity callbacks issued
    mpo.solves / mpo.warm_start_hits   solver invocations / warm-started ones
    mpo.iterations             ADMM iterations per solve (histogram)
    controller.solve_ms        per-interval optimizer latency (histogram)

:meth:`MetricsRegistry.snapshot` returns a deterministic, JSON-ready dict
(sorted names, stable summary statistics) that experiment reports and the
CLI fold into their output.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "reset_metrics",
    "prometheus_text",
    "write_prometheus",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """An append-only sample distribution with a deterministic summary.

    Stores every observation (the control loop produces at most one sample
    per interval per metric, so memory stays bounded by run length); the
    snapshot reports count/total/min/max and interpolated p50/p95.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.values.append(value)

    @staticmethod
    def _quantile(ordered: list[float], q: float) -> float:
        """Linear-interpolated quantile of an already-sorted sample."""
        if not ordered:
            return 0.0
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def snapshot(self) -> dict:
        ordered = sorted(self.values)
        if not ordered:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": len(ordered),
            "total": float(sum(ordered)),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": self._quantile(ordered, 0.50),
            "p95": self._quantile(ordered, 0.95),
        }


class MetricsRegistry:
    """Name-keyed store of counters, gauges, and histograms.

    Accessors create on first use, so instrumented code never has to
    pre-register::

        get_metrics().counter("lb.warnings").inc()

    A name is bound to its first-seen kind; reusing it as another kind
    raises (two call sites silently sharing a name is always a bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def kinds(self) -> dict[str, str]:
        """Metric name -> declared kind (``counter``/``gauge``/``histogram``).

        The authoritative type map for exporters: a metric's kind comes
        from the class it was registered as, never from the Python type
        of its current value (an integer-valued gauge is still a gauge).
        """
        return {
            name: type(self._metrics[name]).__name__.lower()
            for name in sorted(self._metrics)
        }

    def snapshot(self) -> dict:
        """Deterministic dict of every metric's current value.

        Counters map to ints, gauges to floats, histograms to their summary
        dicts; names are sorted so two identical runs produce identical
        (and JSON-diffable) snapshots.
        """
        return {
            name: self._metrics[name].snapshot() for name in sorted(self._metrics)
        }

    def reset(self) -> None:
        self._metrics.clear()


def _prom_name(name: str, *, prefix: str) -> str:
    return prefix + name.replace(".", "_").replace("-", "_")


def _infer_kind(name: str, value: object) -> str:
    """Legacy value-type inference for plain snapshot dicts."""
    if isinstance(value, bool):
        raise TypeError(f"metric {name!r} has non-metric value {value!r}")
    if isinstance(value, int):
        return "counter"
    if isinstance(value, float):
        return "gauge"
    if isinstance(value, dict):
        return "histogram"
    raise TypeError(f"metric {name!r} has non-metric value {value!r}")


def _mangled_names(names: list[str], *, prefix: str) -> dict[str, str]:
    """Map each metric name to a collision-free Prometheus name.

    Dot/dash mangling can collapse distinct metric names (``lb.spare-rps``
    and ``lb.spare.rps`` both mangle to ``lb_spare_rps``); later
    occurrences get a deterministic ``_2``/``_3``... suffix in input
    order, so the exported family names stay unique.
    """
    out: dict[str, str] = {}
    used: dict[str, int] = {}
    for name in names:
        pname = _prom_name(name, prefix=prefix)
        seen = used.get(pname, 0)
        used[pname] = seen + 1
        out[name] = pname if seen == 0 else f"{pname}_{seen + 1}"
    return out


def prometheus_text(
    source: "MetricsRegistry | dict",
    *,
    prefix: str = "spotweb_",
    openmetrics: bool = False,
) -> str:
    """Render a registry (or legacy snapshot dict) in Prometheus text format.

    Given a :class:`MetricsRegistry`, each family's type comes from the
    metric class it was registered as — an integer-valued gauge exports
    as a gauge.  Given a plain :meth:`MetricsRegistry.snapshot` dict, the
    type falls back to value inference (``int`` -> counter, ``float`` ->
    gauge, ``dict`` -> summary); booleans are rejected either way.

    Counters carry the conventional ``_total`` sample suffix, every
    family gets a ``# HELP`` line, histogram summaries export
    ``{quantile="0.5"|"0.95"}`` series plus ``_sum``/``_count``, and
    names that mangle to duplicates are suffixed deterministically (see
    :func:`_mangled_names`).  With ``openmetrics=True`` the output is
    terminated by the ``# EOF`` marker the OpenMetrics wire format
    requires.  Output order follows the snapshot, so it is as
    deterministic as the snapshot itself.
    """
    if isinstance(source, MetricsRegistry):
        snapshot = source.snapshot()
        kinds = source.kinds()
    else:
        snapshot = source
        kinds = {
            name: _infer_kind(name, value) for name, value in snapshot.items()
        }
    pnames = _mangled_names(list(snapshot), prefix=prefix)
    lines: list[str] = []
    for name, value in snapshot.items():
        pname = pnames[name]
        kind = kinds[name]
        if isinstance(value, bool):
            raise TypeError(f"metric {name!r} has non-metric value {value!r}")
        if kind == "counter":
            lines.append(f"# HELP {pname}_total SpotWeb counter {name}")
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {value}")
        elif kind == "gauge":
            lines.append(f"# HELP {pname} SpotWeb gauge {name}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {value}")
        elif kind == "histogram":
            lines.append(f"# HELP {pname} SpotWeb histogram summary {name}")
            lines.append(f"# TYPE {pname} summary")
            lines.append(f'{pname}{{quantile="0.5"}} {value["p50"]}')
            lines.append(f'{pname}{{quantile="0.95"}} {value["p95"]}')
            lines.append(f"{pname}_sum {value['total']}")
            lines.append(f"{pname}_count {value['count']}")
        else:
            raise TypeError(f"metric {name!r} has non-metric value {value!r}")
    if not lines:
        return ""
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: "str | Path",
    source: "MetricsRegistry | dict | None" = None,
    *,
    prefix: str = "spotweb_",
    openmetrics: bool = False,
) -> Path:
    """Atomically export metrics in Prometheus text format.

    Writes to a same-directory temp file and renames it into place, so an
    external scraper polling the path never reads a torn file.  ``source``
    defaults to the process-global registry.
    """
    path = Path(path)
    if source is None:
        source = get_metrics()
    text = prometheus_text(source, prefix=prefix, openmetrics=openmetrics)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
    return path


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry (tests); returns the old one."""
    global _METRICS
    old, _METRICS = _METRICS, registry
    return old


def reset_metrics() -> None:
    """Clear every metric in the global registry."""
    _METRICS.reset()
