"""Journal analysis: ``python -m repro events summarize|timeline|diff``.

Turns a ``spotweb-events/1`` JSONL journal into terminal reports (all
rendered through the foundation renderer :mod:`repro.textfmt` —
``repro.obs`` must not depend on the reporting layer):

- **summarize** — event-kind top-N table, the per-warning incident
  report (warning → outcome, sessions migrated, requests lost, capacity
  gap), and the SLO compliance series with alert count;
- **timeline** — the ASCII incident timeline: every warning with its
  causally linked drain / migration / replacement-boot / admission /
  reprovision events indented beneath it, in sim-time order; journals
  from the hybrid engine additionally get a tier-span table showing
  when the run was on the fluid vs the request tier and which
  warning/spike forced each switch;
- **diff** — aligns two journals by interval (falling back to sim-time
  buckets for intra-interval events) and reports the divergent buckets;
  identical-seed runs must report zero divergence.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from pathlib import Path

from repro.obs.events import load_events
from repro.textfmt import format_chain, format_table, format_topn, sparkline

__all__ = [
    "incidents",
    "kind_counts",
    "slo_series",
    "tier_spans",
    "format_event_summary",
    "format_timeline",
    "diff_journals",
    "format_diff",
    "summarize_events_file",
    "timeline_file",
    "diff_files",
]

#: Sim-time width of one diff bucket for events outside any interval.
_DIFF_BUCKET_SECONDS = 60.0


def kind_counts(records: list[dict]) -> list[tuple[str, int]]:
    """Event kinds with counts, most frequent first (name-tiebroken)."""
    counts = Counter(rec["kind"] for rec in records)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def _children_by_cause(records: list[dict]) -> dict[str, list[dict]]:
    children: dict[str, list[dict]] = defaultdict(list)
    for rec in records:
        if rec["cause"] is not None:
            children[rec["cause"]].append(rec)
    return children


def incidents(records: list[dict]) -> list[dict]:
    """One entry per revocation warning, in issue order.

    Each entry carries the warning id/backend/time, the terminal outcome
    (``open`` if the journal ended first), sessions migrated, requests
    lost, the revoked capacity, and every causally linked event.
    """
    children = _children_by_cause(records)
    out: list[dict] = []
    for rec in records:
        if rec["kind"] != "warning.issued" or rec["id"] is None:
            continue
        wid = rec["id"]
        linked = children.get(wid, [])
        resolved = next(
            (e for e in linked if e["kind"] == "warning.resolved"), None
        )
        migrated = sum(
            int(e["attrs"].get("migrated", 0))
            for e in linked
            if e["kind"] == "session.migrate"
        )
        out.append(
            {
                "id": wid,
                "backend": rec["attrs"].get("backend"),
                "t_issued": rec["t"],
                "t_resolved": None if resolved is None else resolved["t"],
                "outcome": (
                    "open"
                    if resolved is None
                    else resolved["attrs"].get("outcome")
                ),
                "migrated": (
                    int(resolved["attrs"].get("migrated", migrated))
                    if resolved is not None
                    else migrated
                ),
                "lost": (
                    int(resolved["attrs"].get("lost", 0))
                    if resolved is not None
                    else 0
                ),
                "capacity_rps": rec["attrs"].get("capacity_rps", 0.0),
                "events": linked,
            }
        )
    return out


def slo_series(records: list[dict]) -> list[dict]:
    """The ``slo.interval`` events in interval order."""
    series = [r for r in records if r["kind"] == "slo.interval"]
    series.sort(key=lambda r: (r["interval"], r["seq"]))
    return series


def tier_spans(records: list[dict]) -> list[dict]:
    """Engine-tier spans from ``sim.tier_switch`` events, in time order.

    Each span carries the tier, its ``[t_start, t_end)`` extent (the last
    span ends at the journal's final event time), the trigger that forced
    the switch, the causal link (``warning.issued`` / ``sim.spike`` id or
    ``None``), and how many in-flight requests the handoff moved.
    Journals without tier switches (plain request-level runs) yield an
    empty list.
    """
    switches = [r for r in records if r["kind"] == "sim.tier_switch"]
    if not switches:
        return []
    switches.sort(key=lambda r: (r["t"], r["seq"]))
    t_last = max(rec["t"] for rec in records)
    spans: list[dict] = []
    for i, rec in enumerate(switches):
        t_end = switches[i + 1]["t"] if i + 1 < len(switches) else t_last
        spans.append(
            {
                "tier": rec["attrs"]["tier"],
                "t_start": rec["t"],
                "t_end": t_end,
                "trigger": rec["attrs"].get("trigger"),
                "cause": rec["cause"],
                "moved": int(rec["attrs"].get("moved", 0)),
            }
        )
    return spans


def format_event_summary(records: list[dict], *, top: int = 12) -> str:
    """Render the full text report for one journal."""
    if not records:
        return "journal contains no events"
    parts: list[str] = []
    span = records[-1]["t"] - records[0]["t"]
    kinds = kind_counts(records)
    parts.append(
        format_topn(
            ["kind", "count"],
            [[kind, count] for kind, count in kinds],
            top=top,
            title=(
                f"event kinds ({len(records)} events over "
                f"{span:.1f} s of sim time)"
            ),
        )
    )

    incs = incidents(records)
    if incs:
        rows = [
            [
                inc["id"],
                inc["backend"] if inc["backend"] is not None else "-",
                inc["t_issued"],
                inc["outcome"],
                inc["migrated"],
                inc["lost"],
                inc["capacity_rps"],
                len(inc["events"]),
            ]
            for inc in incs
        ]
        parts.append(
            format_table(
                [
                    "warning",
                    "backend",
                    "t_issued",
                    "outcome",
                    "migrated",
                    "lost",
                    "capacity_rps",
                    "events",
                ],
                rows,
                title=f"incident report ({len(incs)} revocation warnings)",
            )
        )
        outcomes = Counter(inc["outcome"] for inc in incs)
        parts.append(
            "outcomes: "
            + ", ".join(f"{k}={outcomes[k]}" for k in sorted(outcomes))
        )

    series = slo_series(records)
    if series:
        compliance = [s["attrs"]["compliance"] for s in series]
        alerts = [r for r in records if r["kind"] == "slo.alert"]
        firing = sum(
            1 for a in alerts if a["attrs"].get("state") == "firing"
        )
        worst = min(compliance)
        parts.append(
            f"SLO compliance ({len(series)} intervals, worst "
            f"{100.0 * worst:.2f}%, {firing} alert(s) fired):\n  "
            + sparkline(compliance, width=72)
        )
    return "\n\n".join(parts)


def _event_label(rec: dict) -> str:
    attrs = rec["attrs"]
    extras = []
    for key in ("backend", "action", "state", "outcome", "sessions",
                "migrated", "lost", "capacity_rps"):
        if key in attrs:
            extras.append(f"{key}={attrs[key]}")
    label = rec["kind"]
    if extras:
        label += " (" + ", ".join(extras) + ")"
    return label


#: Per warning, runs of more than this many same-kind linked events are
#: collapsed in the timeline (state chatter like ``admission.flip`` can
#: attribute thousands of events to one long-lived warning).
_TIMELINE_RUN_CAP = 3


def _capped_children(events: list[dict]) -> list[tuple[dict | None, str]]:
    """Collapse long same-kind runs to head events plus an elision row."""
    out: list[tuple[dict | None, str]] = []
    i = 0
    while i < len(events):
        kind = events[i]["kind"]
        j = i
        while j < len(events) and events[j]["kind"] == kind:
            j += 1
        run = events[i:j]
        if len(run) > _TIMELINE_RUN_CAP:
            for e in run[:_TIMELINE_RUN_CAP - 1]:
                out.append((e, _event_label(e)))
            hidden = len(run) - (_TIMELINE_RUN_CAP - 1)
            out.append((None, f"... ({hidden} more {kind})"))
        else:
            for e in run:
                out.append((e, _event_label(e)))
        i = j
    return out


def _format_tier_spans(spans: list[dict]) -> str:
    rows = [
        [
            span["tier"],
            span["t_start"],
            span["t_end"],
            span["trigger"] if span["trigger"] is not None else "-",
            span["cause"] if span["cause"] is not None else "-",
            span["moved"],
        ]
        for span in spans
    ]
    return format_table(
        ["tier", "t_start", "t_end", "trigger", "cause", "moved"],
        rows,
        title=f"engine tier spans ({len(spans)} spans)",
    )


def format_timeline(records: list[dict]) -> str:
    """ASCII incident timeline: warnings with linked events indented.

    Hybrid-engine journals get the tier-span table prepended; journals
    without ``sim.tier_switch`` events render exactly as before.
    """
    if not records:
        return "journal contains no events"
    spans = tier_spans(records)
    incs = incidents(records)
    if not incs:
        if spans:
            return _format_tier_spans(spans)
        return "journal contains no revocation warnings"
    rows: list[list] = []
    depths: list[int] = []
    for inc in incs:
        rows.append(
            [f"{inc['id']} warning.issued", inc["t_issued"], "-"]
        )
        depths.append(0)
        for e, label in _capped_children(inc["events"]):
            if e is None:
                rows.append([label, "", ""])
            else:
                rows.append([label, e["t"], e["cause"]])
            depths.append(1)
    timeline = format_chain(
        ["event", "t", "cause"],
        rows,
        depths,
        title=f"incident timeline ({len(incs)} warnings)",
    )
    if spans:
        return _format_tier_spans(spans) + "\n\n" + timeline
    return timeline


# ----------------------------------------------------------------------- diff
def _bucket_of(rec: dict) -> str:
    if rec["interval"] is not None:
        return f"interval {rec['interval']}"
    return f"t[{int(rec['t'] // _DIFF_BUCKET_SECONDS) * int(_DIFF_BUCKET_SECONDS)}s)"


def _bucket_sort_key(bucket: str) -> tuple:
    kind, _, value = bucket.partition(" ")
    if kind == "interval":
        return (0, int(value), 0.0)
    return (1, 0, float(bucket[2:].rstrip("s)")))


def _fingerprint(rec: dict) -> str:
    return json.dumps(
        {
            "t": rec["t"],
            "interval": rec["interval"],
            "kind": rec["kind"],
            "id": rec["id"],
            "cause": rec["cause"],
            "attrs": rec["attrs"],
        },
        sort_keys=True,
    )


def diff_journals(a: list[dict], b: list[dict]) -> dict:
    """Align two journals and report divergences by interval/time bucket.

    Returns ``{"identical": bool, "buckets": [...], "first": ... }`` where
    each bucket entry carries the bucket label, per-side event counts,
    and the events present on only one side (as fingerprints).  ``first``
    is the earliest divergent bucket label (``None`` when identical).
    ``seq`` is excluded from the comparison — alignment is by content,
    so journals that only differ by re-sequencing compare clean.
    """
    sides: list[dict[str, Counter]] = []
    for records in (a, b):
        buckets: dict[str, Counter] = defaultdict(Counter)
        for rec in records:
            buckets[_bucket_of(rec)][_fingerprint(rec)] += 1
        sides.append(buckets)
    only_a, only_b = sides
    labels = sorted(
        set(only_a) | set(only_b), key=_bucket_sort_key
    )
    divergent: list[dict] = []
    for label in labels:
        ca, cb = only_a.get(label, Counter()), only_b.get(label, Counter())
        if ca == cb:
            continue
        missing_b = sorted((ca - cb).elements())
        missing_a = sorted((cb - ca).elements())
        divergent.append(
            {
                "bucket": label,
                "count_a": sum(ca.values()),
                "count_b": sum(cb.values()),
                "only_a": missing_b,
                "only_b": missing_a,
            }
        )
    return {
        "identical": not divergent,
        "buckets": divergent,
        "first": divergent[0]["bucket"] if divergent else None,
    }


def format_diff(result: dict, *, name_a: str = "A", name_b: str = "B") -> str:
    """Render a :func:`diff_journals` result."""
    if result["identical"]:
        return f"journals are equivalent: zero divergence ({name_a} == {name_b})"
    rows = [
        [
            d["bucket"],
            d["count_a"],
            d["count_b"],
            len(d["only_a"]),
            len(d["only_b"]),
        ]
        for d in result["buckets"]
    ]
    text = format_table(
        ["bucket", f"events_{name_a}", f"events_{name_b}",
         f"only_{name_a}", f"only_{name_b}"],
        rows,
        title=(
            f"{len(result['buckets'])} divergent bucket(s), first at "
            f"{result['first']}"
        ),
    )
    first = result["buckets"][0]
    sample = (first["only_a"] or first["only_b"])[:3]
    if sample:
        text += "\nfirst divergence sample:\n" + "\n".join(
            f"  {line}" for line in sample
        )
    return text


# ------------------------------------------------------------------ file entry
def summarize_events_file(path: str | Path, *, top: int = 12) -> str:
    """Load, validate, and summarize one journal file."""
    return format_event_summary(
        load_events(path, require_resolution=False), top=top
    )


def timeline_file(path: str | Path) -> str:
    """Load, validate, and render the incident timeline of one journal."""
    return format_timeline(load_events(path, require_resolution=False))


def diff_files(
    path_a: str | Path, path_b: str | Path
) -> tuple[dict, str]:
    """Diff two journal files; returns (result dict, rendered text)."""
    a = load_events(path_a, require_resolution=False)
    b = load_events(path_b, require_resolution=False)
    result = diff_journals(a, b)
    return result, format_diff(
        result, name_a=Path(path_a).name, name_b=Path(path_b).name
    )
