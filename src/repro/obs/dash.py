"""`repro top`: live ASCII dashboard state and rendering.

:class:`DashState` is a telemetry-bus subscriber that folds the delta
stream (:mod:`repro.obs.live`) into the current operator view — fleet
size by market, demand vs. capacity, SLO percentile/burn history,
cost, open revocation warnings, anomaly flags.  :func:`render_dash`
turns one state into a deterministic text frame (sparklines and tables
from :mod:`repro.textfmt`), and :class:`DashRenderer` repaints a stream
every N frames for the live ``python -m repro top`` mode.

State and rendering are pure functions of the delta stream, so the
``--once`` snapshot mode is as deterministic as the stream itself; the
only nondeterministic datum — last solver wall-time — is *passed in* by
the live CLI (``solve_ms=``) and rendered as ``-`` when absent.
"""

from __future__ import annotations

import sys
from collections import deque

from repro.textfmt import format_table, sparkline

__all__ = [
    "DashState",
    "render_dash",
    "DashRenderer",
]


class DashState:
    """Folds telemetry deltas into the current dashboard view.

    Subscribe to a bus (or feed deltas by calling it); every field is a
    plain value derived from sim-time-stamped deltas, so two
    identical-seed runs hold identical states at every frame.
    """

    def __init__(self, *, history: int = 24) -> None:
        self.t = 0.0
        self.interval: int | None = None
        self.demand_rps = 0.0
        self.capacity_rps = 0.0
        self.servers = 0
        self.shortfall_rps = 0.0
        self.revocations = 0
        self.by_market: dict[str, int] = {}
        self.p99: deque[float] = deque(maxlen=history)
        self.burn: deque[float] = deque(maxlen=history)
        self.compliance: deque[float] = deque(maxlen=history)
        self.requests = 0
        self.cost_total = 0.0
        self.cost_last = 0.0
        self.open_warnings = 0
        self.warnings = 0
        self.anomalies: list[dict] = []

    def __call__(self, delta: dict) -> None:
        dtype = delta.get("type")
        if dtype == "events":
            for rec in delta["events"]:
                self._fold_event(rec)
        elif dtype == "slo":
            for point in delta["points"]:
                self.p99.append(float(point.get("p99", 0.0)))
                self.burn.append(float(point.get("burn", 0.0)))
                self.compliance.append(float(point.get("compliance", 0.0)))
                self.requests += int(point.get("requests", 0))
        elif dtype == "tick":
            self.t = float(delta["t"])
            if delta["interval"] is not None:
                self.interval = int(delta["interval"])

    def _fold_event(self, rec: dict) -> None:
        kind = rec["kind"]
        attrs = rec["attrs"]
        if kind == "interval.plan":
            self.demand_rps = float(attrs.get("demand_rps", self.demand_rps))
            self.capacity_rps = float(
                attrs.get("capacity_rps", self.capacity_rps)
            )
            self.servers = int(attrs.get("servers", self.servers))
            self.shortfall_rps = float(attrs.get("shortfall_rps", 0.0))
            self.revocations += int(attrs.get("revoked", 0))
            cost = float(attrs.get("cost", 0.0))
            self.cost_last = cost
            self.cost_total += cost
        elif kind == "telemetry.fleet":
            self.servers = int(attrs.get("servers", self.servers))
            by_market = attrs.get("by_market")
            if isinstance(by_market, dict):
                self.by_market = {
                    str(market): int(count)
                    for market, count in by_market.items()
                }
        elif kind == "warning.issued":
            self.open_warnings += 1
            self.warnings += 1
        elif kind == "warning.resolved":
            self.open_warnings = max(0, self.open_warnings - 1)
        elif kind == "telemetry.anomaly":
            self.anomalies.append(
                {"t": rec["t"], "interval": rec["interval"], **attrs}
            )


def _spark(values: deque[float]) -> str:
    return sparkline(list(values)) if values else "-"


def _last(values: deque[float]) -> str:
    return f"{values[-1]:.3f}" if values else "-"


def render_dash(state: DashState, *, solve_ms: float | None = None) -> str:
    """One deterministic text frame of the dashboard.

    ``solve_ms`` is the only wall-clock datum on the board; the live CLI
    passes the last optimizer latency, the ``--once`` snapshot mode
    leaves it ``None`` and the cell renders ``-``.
    """
    interval = "-" if state.interval is None else str(state.interval)
    fleet = (
        " ".join(
            f"{market}={count}"
            for market, count in sorted(state.by_market.items())
        )
        or "-"
    )
    solve = "-" if solve_ms is None else f"{solve_ms:.1f} ms"
    rows = [
        ("demand", f"{state.demand_rps:.0f} req/s"),
        ("capacity", f"{state.capacity_rps:.0f} req/s"),
        ("servers", f"{state.servers} ({fleet})"),
        ("shortfall", f"{state.shortfall_rps:.0f} req/s"),
        ("p99", f"{_last(state.p99)} s  {_spark(state.p99)}"),
        ("burn", f"{_last(state.burn)}  {_spark(state.burn)}"),
        ("compliance", f"{_last(state.compliance)}  {_spark(state.compliance)}"),
        ("requests", str(state.requests)),
        ("cost", f"{state.cost_last:.4f} last / {state.cost_total:.4f} total usd"),
        ("warnings", f"{state.open_warnings} open / {state.warnings} total"),
        ("revocations", str(state.revocations)),
        ("anomalies", str(len(state.anomalies))),
        ("last solve", solve),
    ]
    lines = [
        f"spotweb top  t={state.t:.0f}s  interval={interval}",
        format_table(("signal", "value"), rows),
    ]
    if state.anomalies:
        recent = state.anomalies[-3:]
        lines.append(
            "recent anomalies: "
            + "; ".join(
                f"{a.get('series')}/{a.get('detector')} t={a['t']:.0f} "
                f"score={a.get('score')}"
                for a in recent
            )
        )
    return "\n".join(lines)


class DashRenderer:
    """Bus subscriber that repaints a stream every ``every`` frames.

    Owns a :class:`DashState`, folds every delta into it, and on each
    Nth ``tick`` delta writes a fresh frame — preceded by an ANSI
    clear-screen when the stream is a TTY, so the board repaints in
    place rather than scrolling.
    """

    def __init__(
        self,
        state: DashState | None = None,
        *,
        stream=None,
        every: int = 1,
        clear: bool = True,
    ) -> None:
        self.state = state if state is not None else DashState()
        self.every = max(1, int(every))
        self.clear = bool(clear)
        self._stream = stream
        self._frames = 0

    def __call__(self, delta: dict) -> None:
        self.state(delta)
        if delta.get("type") != "tick":
            return
        self._frames += 1
        if self._frames % self.every == 0:
            self.render()

    def render(self, *, solve_ms: float | None = None) -> None:
        """Write one frame to the stream (stdout when none was given)."""
        stream = self._stream if self._stream is not None else sys.stdout
        text = render_dash(self.state, solve_ms=solve_ms)
        if self.clear and getattr(stream, "isatty", lambda: False)():
            stream.write("\x1b[2J\x1b[H")
        stream.write(text + "\n")
        stream.flush()
