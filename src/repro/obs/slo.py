"""Streaming SLO accounting: fixed-bin latency digest + burn-rate alerts.

Two pieces, both deterministic and bounded-memory:

- :class:`LatencyDigest` — a fixed-bin streaming histogram of latencies.
  Memory is ``O(bins)`` independent of request count, and its quantiles
  are deterministic (pure integer bin arithmetic + within-bin linear
  interpolation), agreeing with the exact ``np.percentile`` of the raw
  sample to within one bin width.  :class:`~repro.simulator.metrics
  .LatencyRecorder` routes every served latency through one of these, so
  latency percentiles no longer require unbounded raw arrays.
- :class:`SLOEngine` — per-interval SLO-compliance series plus SRE-style
  multi-window burn-rate alerting.  Requests are classified good/bad
  against the SLO threshold (unserved requests are bad); each closed
  interval emits an ``slo.interval`` event carrying compliance, burn
  rate, and the interval's latency quantiles, and an ``slo.alert``
  event fires (and later resolves) when **both** the short and long
  windows — expressed in sim intervals, never wall-clock — burn error
  budget faster than ``burn_threshold``.

Everything is keyed by simulation time, so the emitted events compose
with the :mod:`repro.obs.events` determinism contract: identical-seed
runs produce identical SLO series and alert timelines.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.devtools.contracts import field_units, units
from repro.obs.events import get_events
from repro.obs.live import get_bus

__all__ = ["LatencyDigest", "SLOEngine"]


@field_units(bin_width="s", max="s")
class LatencyDigest:
    """Fixed-bin streaming latency histogram with deterministic quantiles.

    Latencies land in ``ceil(max_latency / bin_width)`` uniform bins plus
    one overflow bin; a quantile is located by integer rank walk and
    linearly interpolated inside its bin, so the estimate is within one
    ``bin_width`` of the exact order statistic whenever the sample is
    dense at that rank (the acceptance bound the tests check).
    """

    __slots__ = ("bin_width", "num_bins", "counts", "count", "total", "max")

    def __init__(self, *, bin_width: float = 0.01, max_latency: float = 30.0) -> None:
        if bin_width <= 0 or max_latency <= bin_width:
            raise ValueError("need bin_width > 0 and max_latency > bin_width")
        self.bin_width = float(bin_width)
        self.num_bins = int(max_latency / bin_width + 0.999999)
        self.counts = [0] * (self.num_bins + 1)  # last bin = overflow
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @units("s")
    def add(self, latency: float) -> None:
        """Record one latency (seconds, non-negative)."""
        idx = int(latency / self.bin_width)
        if idx > self.num_bins:
            idx = self.num_bins
        self.counts[idx] += 1
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency

    @units("s", "req")
    def add_masses(self, latencies: np.ndarray, weights: np.ndarray) -> None:
        """Record fractional request *mass* at each latency (fluid tier).

        One vectorized call folds a whole quantile-node batch into the
        histogram: ``weights[i]`` requests (a float mass, not a count) at
        latency ``latencies[i]``.  Bin counts become floats once this is
        used; the integer :meth:`add` path is untouched until then, so
        request-level-only runs stay bitwise-identical.
        """
        lat = np.asarray(latencies, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64).ravel()
        if lat.shape != w.shape:
            raise ValueError("latencies and weights must have the same shape")
        if lat.size == 0:
            return
        if float(lat.min()) < 0 or float(w.min()) < 0:
            raise ValueError("latencies and weights must be non-negative")
        idx = np.minimum(
            (lat / self.bin_width).astype(np.int64), self.num_bins
        )
        binned = np.bincount(idx, weights=w, minlength=self.num_bins + 1)
        for i in np.flatnonzero(binned):
            self.counts[i] += float(binned[i])
        mass = float(w.sum())
        if mass <= 0:
            return
        self.count += mass
        self.total += float((lat * w).sum())
        top = float(lat[w > 0].max())
        if top > self.max:
            self.max = top

    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @units(None, ret="s")
    def percentile(self, p: float) -> float:
        """Deterministic quantile estimate (``p`` in [0, 100]).

        Matches ``np.percentile``'s linear-interpolation rank convention,
        with the order statistic located to its bin and interpolated
        uniformly inside it.  The overflow bin reports the observed max.
        """
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        # np.percentile: 0-based fractional rank pos = p/100 * (n - 1).
        rank = 1.0 + (p / 100.0) * (self.count - 1)  # 1-based fractional
        cum = 0
        for idx, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                if idx == self.num_bins:
                    return self.max
                frac = (rank - cum) / c
                return (idx + frac) * self.bin_width
            cum += c
        return self.max

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest (same geometry) into this one."""
        if (
            other.bin_width != self.bin_width
            or other.num_bins != self.num_bins
        ):
            raise ValueError("digest geometries differ")
        for idx, c in enumerate(other.counts):
            self.counts[idx] += c
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    def snapshot(self) -> dict:
        """JSON-ready summary (count, mean, p50/p95/p99, max)."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


@field_units(
    slo_threshold="s",
    target="frac",
    interval_seconds="s",
    origin="s",
)
class SLOEngine:
    """Per-interval SLO compliance + multi-window burn-rate alerting.

    Parameters
    ----------
    slo_threshold:
        Served latency above this (seconds) is an SLO violation; dropped
        and failed requests always are.
    target:
        SLO compliance objective (e.g. 0.99); the error budget per
        interval is ``1 - target`` and a burn rate of 1.0 consumes it
        exactly.
    interval_seconds:
        Width of one SLO interval in **sim** seconds.
    short_window / long_window:
        Alert windows in sim intervals (SRE multi-window pattern: the
        short window gates detection latency, the long window gates
        flappiness; both must burn ≥ ``burn_threshold`` to fire).
    """

    def __init__(
        self,
        *,
        slo_threshold: float = 1.0,
        target: float = 0.99,
        interval_seconds: float = 60.0,
        short_window: int = 3,
        long_window: int = 10,
        burn_threshold: float = 10.0,
        origin: float = 0.0,
        digest_bin_width: float = 0.01,
        digest_max_latency: float = 30.0,
    ) -> None:
        if not 0 < target < 1:
            raise ValueError("target must be in (0, 1)")
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if short_window < 1 or long_window < short_window:
            raise ValueError("need 1 <= short_window <= long_window")
        if burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        self.slo_threshold = float(slo_threshold)
        self.target = float(target)
        self.interval_seconds = float(interval_seconds)
        self.short_window = int(short_window)
        self.long_window = int(long_window)
        self.burn_threshold = float(burn_threshold)
        self.origin = float(origin)
        self._digest_bin_width = float(digest_bin_width)
        self._digest_max_latency = float(digest_max_latency)
        self._interval = 0
        self._good = 0
        self._bad = 0
        self._digest = self._new_digest()
        self._short: deque[float] = deque(maxlen=self.short_window)
        self._long: deque[float] = deque(maxlen=self.long_window)
        self.alert_firing = False
        self.alerts = 0
        #: closed-interval history: dicts with interval/compliance/burn.
        self.history: list[dict] = []

    def _new_digest(self) -> LatencyDigest:
        return LatencyDigest(
            bin_width=self._digest_bin_width,
            max_latency=self._digest_max_latency,
        )

    # --------------------------------------------------------------- recording
    @units("s", "s")
    def record(self, t: float, latency: float) -> None:
        """Classify one served request against the SLO."""
        self._roll(t)
        if latency > self.slo_threshold:
            self._bad += 1
        else:
            self._good += 1
        self._digest.add(latency)

    @units("s")
    def record_bad(self, t: float) -> None:
        """Count one unserved (dropped or failed) request as a violation."""
        self._roll(t)
        self._bad += 1

    @units("s", "s", "req")
    def record_mass(
        self, t: float, latencies: np.ndarray, weights: np.ndarray
    ) -> None:
        """Classify served request *mass* (fluid tier) against the SLO.

        ``weights[i]`` requests at latency ``latencies[i]``; mass above the
        threshold burns budget exactly like individually-late requests.
        """
        self._roll(t)
        lat = np.asarray(latencies, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64).ravel()
        late = lat > self.slo_threshold
        self._bad += float(w[late].sum())
        self._good += float(w[~late].sum())
        self._digest.add_masses(lat, w)

    @units("s", "req")
    def record_bad_mass(self, t: float, mass: float) -> None:
        """Count unserved request mass (fluid-tier drops/kills) as violations."""
        if mass < 0:
            raise ValueError("mass must be non-negative")
        if mass == 0:
            return
        self._roll(t)
        self._bad += float(mass)

    @units("s")
    def finish(self, t: float) -> None:
        """Close every interval up to ``t`` (the last only if it saw traffic)."""
        self._roll(t)
        if self._good or self._bad:
            self._close_interval()

    # ---------------------------------------------------------------- rolling
    @units("s")
    def _roll(self, t: float) -> None:
        idx = int((t - self.origin) / self.interval_seconds)
        while self._interval < idx:
            self._close_interval()

    def _close_interval(self) -> None:
        total = self._good + self._bad
        compliance = (self._good / total) if total else 1.0
        burn = (1.0 - compliance) / (1.0 - self.target)
        end_t = self.origin + (self._interval + 1) * self.interval_seconds
        digest = self._digest.snapshot()
        entry = {
            "interval": self._interval,
            "t": end_t,
            "requests": total,
            "compliance": compliance,
            "burn": burn,
            "p50": digest["p50"],
            "p95": digest["p95"],
            "p99": digest["p99"],
        }
        self.history.append(entry)
        self._short.append(burn)
        self._long.append(burn)
        ev = get_events()
        ev.emit(
            "slo.interval",
            t=end_t,
            interval=self._interval,
            requests=total,
            compliance=compliance,
            burn=burn,
            p50=digest["p50"],
            p95=digest["p95"],
            p99=digest["p99"],
        )
        self._evaluate_alert(end_t)
        # Frame boundary for streaming consumers: the SLO interval close
        # is the sim-time heartbeat of DES/hybrid runs (the interval cost
        # simulator ticks its own loop).  One method call when disabled.
        get_bus().tick(end_t, self._interval)
        self._interval += 1
        self._good = 0
        self._bad = 0
        self._digest = self._new_digest()

    @units("s")
    def _evaluate_alert(self, t: float) -> None:
        short = sum(self._short) / len(self._short) if self._short else 0.0
        long_ = sum(self._long) / len(self._long) if self._long else 0.0
        firing = (
            short >= self.burn_threshold and long_ >= self.burn_threshold
        )
        if firing == self.alert_firing:
            return
        self.alert_firing = firing
        ev = get_events()
        cause = ev.last_open_warning()
        if firing:
            self.alerts += 1
        ev.emit(
            "slo.alert",
            t=t,
            interval=self._interval,
            cause=cause,
            state="firing" if firing else "resolved",
            burn_short=short,
            burn_long=long_,
            threshold=self.burn_threshold,
            window_short=self.short_window,
            window_long=self.long_window,
        )
