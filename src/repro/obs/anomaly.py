"""Streaming anomaly detectors over the telemetry delta stream.

Two classic sequential detectors watch selected SLO/metric series as the
:class:`repro.obs.live.TelemetryBus` publishes them:

- :class:`EwmaZScoreDetector` — robust z-score against an exponentially
  weighted mean and absolute deviation; catches sharp spikes (a flash
  crowd blowing out P99) the moment one lands.
- :class:`CusumDetector` — two-sided CUSUM change-point statistic
  against a baseline frozen at the end of warmup; catches *sustained*
  level shifts (an AZ storm degrading P99 by 30% forever after) that
  stay under any single-sample threshold.

Both are **pure functions of (config, series)**: no RNG, no clock reads,
state advanced only by :meth:`~EwmaZScoreDetector.update` — so two
identical runs flag identical points, and :func:`detect_series` exposes
the same arithmetic over a plain list for tests and offline analysis.

:class:`AnomalyMonitor` subscribes the detectors to the bus and emits a
``telemetry.anomaly`` journal event for every flag, sim-time-stamped at
the observation that fired and causally linked to the innermost open
revocation warning — so scenario invariant packs can count anomalies and
the eventreport timeline renders them inside the incident chain.

Robust scales are floored at ``min_scale``: the fluid simulation tier
produces *exactly* constant steady-state series (zero deviation), and
without a floor the first infinitesimal wobble would divide by zero into
an infinite z-score.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.obs.events import get_events
from repro.obs.metrics import get_metrics

__all__ = [
    "ANOMALY_EVENT",
    "DetectorConfig",
    "EwmaZScoreDetector",
    "CusumDetector",
    "detect_series",
    "SeriesSpec",
    "DEFAULT_SERIES",
    "AnomalyMonitor",
]

#: Journal event kind emitted for every detector flag.
ANOMALY_EVENT = "telemetry.anomaly"


@dataclass(frozen=True)
class DetectorConfig:
    """Tuning shared by both detectors.

    ``warmup`` observations establish the baseline (no scoring, no
    flags); ``min_scale`` floors the robust scale estimate in the units
    of the watched series (see module docstring).  Defaults are
    calibrated on the scenario suite: the storm/flash-crowd level shifts
    (z >= ~4.5 per interval) fire within 1–3 intervals, while steady-run
    noise (|z| <= ~1.6) never does.
    """

    warmup: int = 4
    ewma_alpha: float = 0.3
    z_threshold: float = 4.0
    cusum_k: float = 0.5
    cusum_h: float = 5.0
    min_scale: float = 1e-6

    def __post_init__(self) -> None:
        if self.warmup < 1:
            raise ValueError("warmup must be at least 1 observation")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.z_threshold <= 0 or self.cusum_h <= 0:
            raise ValueError("thresholds must be positive")
        if self.cusum_k < 0 or self.min_scale <= 0:
            raise ValueError("cusum_k must be >= 0 and min_scale > 0")


class EwmaZScoreDetector:
    """Robust z-score against EWMA mean and EWMA absolute deviation.

    Warmup uses simple averages (an EWMA seeded from one sample
    over-trusts it); after warmup each observation is scored **before**
    the state absorbs it, so an outlier cannot mask itself.  ``update``
    returns the score (``None`` during warmup) and sets :attr:`fired`.
    """

    name = "ewma_z"

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.fired = False
        self._warmup_values: list[float] = []
        self._mean = 0.0
        self._dev = 0.0
        self._ready = False

    def update(self, value: float) -> float | None:
        value = float(value)
        self.fired = False
        if not self._ready:
            self._warmup_values.append(value)
            if len(self._warmup_values) >= self.config.warmup:
                n = len(self._warmup_values)
                self._mean = sum(self._warmup_values) / n
                self._dev = (
                    sum(abs(x - self._mean) for x in self._warmup_values) / n
                )
                self._warmup_values = []
                self._ready = True
            return None
        scale = max(self._dev, self.config.min_scale)
        score = (value - self._mean) / scale
        self.fired = abs(score) >= self.config.z_threshold
        alpha = self.config.ewma_alpha
        deviation = abs(value - self._mean)
        self._mean = (1.0 - alpha) * self._mean + alpha * value
        self._dev = (1.0 - alpha) * self._dev + alpha * deviation
        return score


class CusumDetector:
    """Two-sided CUSUM change-point detector with a frozen baseline.

    The baseline mean and robust scale are frozen at the end of warmup
    (a drifting baseline would absorb exactly the level shifts this
    detector exists to catch).  Each observation's standardized deviation
    feeds two one-sided accumulators::

        s_pos = max(0, s_pos + z - k)      # upward shifts
        s_neg = max(0, s_neg - z - k)      # downward shifts

    A flag fires when either accumulator reaches ``cusum_h``; both reset
    afterwards so a persisting shift re-alarms rather than saturating.
    ``update`` returns the current statistic (``None`` during warmup)
    and sets :attr:`fired`.
    """

    name = "cusum"

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.fired = False
        self._warmup_values: list[float] = []
        self._mean = 0.0
        self._scale = 0.0
        self._s_pos = 0.0
        self._s_neg = 0.0
        self._ready = False

    def update(self, value: float) -> float | None:
        value = float(value)
        self.fired = False
        if not self._ready:
            self._warmup_values.append(value)
            if len(self._warmup_values) >= self.config.warmup:
                n = len(self._warmup_values)
                self._mean = sum(self._warmup_values) / n
                dev = sum(abs(x - self._mean) for x in self._warmup_values) / n
                self._scale = max(dev, self.config.min_scale)
                self._warmup_values = []
                self._ready = True
            return None
        z = (value - self._mean) / self._scale
        k = self.config.cusum_k
        self._s_pos = max(0.0, self._s_pos + z - k)
        self._s_neg = max(0.0, self._s_neg - z - k)
        score = max(self._s_pos, self._s_neg)
        if score >= self.config.cusum_h:
            self.fired = True
            self._s_pos = 0.0
            self._s_neg = 0.0
        return score


def detect_series(
    values: list[float],
    config: DetectorConfig | None = None,
    *,
    detector: str = "cusum",
) -> list[dict]:
    """Run one detector over a finished series; return the flagged points.

    The offline twin of the streaming path — same classes, same
    arithmetic — returning ``{"index", "value", "score", "detector"}``
    per flag.  ``detector`` is ``"cusum"`` or ``"ewma"``.
    """
    if detector == "cusum":
        det: CusumDetector | EwmaZScoreDetector = CusumDetector(config)
    elif detector == "ewma":
        det = EwmaZScoreDetector(config)
    else:
        raise ValueError(f"unknown detector {detector!r}")
    flags: list[dict] = []
    for index, raw in enumerate(values):
        value = float(raw)
        score = det.update(value)
        if score is not None and det.fired:
            flags.append(
                {
                    "index": index,
                    "value": value,
                    "score": score,
                    "detector": det.name,
                }
            )
    return flags


@dataclass(frozen=True)
class SeriesSpec:
    """One watched series: which journal events feed it, and how.

    ``extract`` maps a matching journal record to the observation
    (``None`` skips the record); ``config`` carries the per-series
    ``min_scale`` floor in the series' own units.
    """

    name: str
    kind: str
    extract: Callable[[dict], float | None]
    config: DetectorConfig


def _extract_p99(rec: dict) -> float | None:
    return rec["attrs"].get("p99")


def _extract_unserved(rec: dict) -> float | None:
    compliance = rec["attrs"].get("compliance")
    return None if compliance is None else 1.0 - float(compliance)


def _extract_cost(rec: dict) -> float | None:
    return rec["attrs"].get("cost")


_BASE = DetectorConfig()

#: The SLO/cost series every monitor watches by default.  min_scale
#: floors: 20 ms on P99 (sub-floor wobble is jitter, not an incident),
#: half a point of unserved fraction, one cent of per-interval cost.
DEFAULT_SERIES: tuple[SeriesSpec, ...] = (
    SeriesSpec(
        "slo.p99", "slo.interval", _extract_p99, replace(_BASE, min_scale=0.02)
    ),
    SeriesSpec(
        "slo.unserved",
        "slo.interval",
        _extract_unserved,
        replace(_BASE, min_scale=0.005),
    ),
    SeriesSpec(
        "cost.rate",
        "interval.plan",
        _extract_cost,
        replace(_BASE, min_scale=0.01),
    ),
)


class AnomalyMonitor:
    """Bus subscriber running both detectors over each watched series.

    Every flag emits a ``telemetry.anomaly`` event into the active
    journal — sim-time-stamped at the observation that fired, causally
    linked to the innermost open revocation warning (``None`` outside an
    incident) — and is mirrored on :attr:`anomalies` for direct
    inspection.  Detector state is per-monitor, so scenario episodes get
    a fresh monitor each (no cross-episode baseline bleed).

    ``include_wall_time=True`` additionally watches the last
    ``controller.solve_ms`` sample from the live registry at each frame.
    Solver wall-time is *not* deterministic, so this series is for
    interactive runs only — scenario episodes and determinism tests must
    leave it off (the default).
    """

    def __init__(
        self,
        series: tuple[SeriesSpec, ...] | None = None,
        *,
        include_wall_time: bool = False,
    ) -> None:
        specs = DEFAULT_SERIES if series is None else tuple(series)
        self._watch: list[tuple[SeriesSpec, list]] = [
            (spec, [EwmaZScoreDetector(spec.config), CusumDetector(spec.config)])
            for spec in specs
        ]
        self.include_wall_time = bool(include_wall_time)
        self._wall_detectors = [
            EwmaZScoreDetector(replace(_BASE, min_scale=1.0)),
            CusumDetector(replace(_BASE, min_scale=1.0)),
        ]
        self._wall_seen = 0
        self.anomalies: list[dict] = []

    def __call__(self, delta: dict) -> None:
        if delta.get("type") == "events":
            for rec in delta["events"]:
                if rec["kind"] == ANOMALY_EVENT:
                    continue
                for spec, detectors in self._watch:
                    if rec["kind"] != spec.kind:
                        continue
                    value = spec.extract(rec)
                    if value is None:
                        continue
                    for det in detectors:
                        score = det.update(value)
                        if score is not None and det.fired:
                            self._flag(spec.name, det.name, rec, value, score)
        elif delta.get("type") == "tick" and self.include_wall_time:
            self._observe_wall_time(delta)

    def _observe_wall_time(self, delta: dict) -> None:
        histogram = get_metrics().histogram("controller.solve_ms")
        samples = histogram.values
        if len(samples) <= self._wall_seen:
            return
        fresh = samples[self._wall_seen :]
        self._wall_seen = len(samples)
        rec = {"t": delta["t"], "interval": delta["interval"]}
        for value in fresh:
            for det in self._wall_detectors:
                score = det.update(value)
                if score is not None and det.fired:
                    self._flag("solver.wall_ms", det.name, rec, value, score)

    def _flag(
        self, series: str, detector: str, rec: dict, value: float, score: float
    ) -> None:
        entry = {
            "series": series,
            "detector": detector,
            "t": rec["t"],
            "interval": rec["interval"],
            "value": float(value),
            "score": round(float(score), 6),
        }
        self.anomalies.append(entry)
        ev = get_events()
        ev.emit(
            ANOMALY_EVENT,
            t=rec["t"],
            interval=rec["interval"],
            event_id=ev.unique_id("anom"),
            cause=ev.last_open_warning(),
            series=series,
            detector=detector,
            value=entry["value"],
            score=entry["score"],
        )
