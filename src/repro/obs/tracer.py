"""Structured span tracing for the SpotWeb control loop.

A :class:`Tracer` records **nested spans** — named, monotonic-clock-timed,
attribute-tagged intervals — across the hot seams of the system: the
controller's per-interval loop (observe → predict → solve → discretize →
actuate), the QP solver phases (setup / factorize / iterate), the DES event
loop, and the load balancer's warning → migrate → replace path.

Tracing is **off by default** and adds a single shared no-op context
manager per instrumented block when disabled, so the tier-1 runtime and the
bitwise experiment outputs are unchanged.  Opt in with ``--trace`` on the
CLI, :func:`enable_tracing` programmatically, or the ``SPOTWEB_TRACE``
environment variable (any value other than ``""``/``"0"``).

Completed spans export to schema-tagged JSONL (``spotweb-trace/1``, the
same convention as the ``BENCH_*.json`` baselines): the first line is a
header record carrying the schema tag, every following line one span.
Timestamps are ``time.perf_counter`` offsets from the tracer's epoch — the
tracer never reads the wall clock, so it is safe inside the DES-owned
packages.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "NullSpan",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "write_trace",
    "load_trace",
    "validate_trace",
]

TRACE_SCHEMA = "spotweb-trace/1"

# Required keys of one exported span record, with their permitted types.
_SPAN_FIELDS: dict[str, tuple[type, ...]] = {
    "id": (int,),
    "parent": (int, type(None)),
    "name": (str,),
    "depth": (int,),
    "start": (int, float),
    "dur": (int, float),
    "attrs": (dict,),
}


@dataclass
class Span:
    """One live (or finished) traced interval.

    ``start``/``dur`` are seconds on the ``time.perf_counter`` clock,
    relative to the owning tracer's epoch.  Attributes are free-form
    JSON-serializable tags; add more mid-span with :meth:`tag`.
    """

    tracer: "Tracer"
    id: int
    parent: int | None
    name: str
    depth: int
    start: float
    dur: float = 0.0
    attrs: dict = field(default_factory=dict)

    def tag(self, **attrs) -> "Span":
        """Attach attributes to the span (e.g. iteration counts at exit)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._finish(self)

    def to_record(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "depth": self.depth,
            "start": self.start,
            "dur": self.dur,
            "attrs": self.attrs,
        }


class NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def tag(self, **attrs) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = NullSpan()


class Tracer:
    """Collects nested spans on a monotonic clock.

    One tracer is active per process (see :func:`get_tracer`); instrumented
    code does::

        with get_tracer().span("controller.step", step=t) as sp:
            ...
            sp.tag(iterations=result.iterations)

    When ``enabled`` is ``False`` (the default for the global tracer),
    :meth:`span` returns a shared :class:`NullSpan` and records nothing —
    the disabled cost of an instrumented block is one method call.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._epoch_s = time.perf_counter()
        self._next_id = 0
        self._stack: list[Span] = []
        self._finished: list[Span] = []

    # ------------------------------------------------------------- recording
    def span(self, name: str, **attrs) -> Span | NullSpan:
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            tracer=self,
            id=self._next_id,
            parent=None if parent is None else parent.id,
            name=str(name),
            depth=0 if parent is None else parent.depth + 1,
            start=time.perf_counter() - self._epoch_s,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        sp.dur = time.perf_counter() - self._epoch_s - sp.start
        # Tolerate mis-nested exits (exceptions unwinding several spans).
        while self._stack and self._stack[-1] is not sp:
            dangling = self._stack.pop()
            dangling.dur = time.perf_counter() - self._epoch_s - dangling.start
            self._finished.append(dangling)
        if self._stack:
            self._stack.pop()
        self._finished.append(sp)

    # --------------------------------------------------------------- results
    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def records(self) -> list[dict]:
        """Finished spans as JSON-ready records, ordered by start time."""
        spans = sorted(self._finished, key=lambda s: (s.start, s.id))
        return [s.to_record() for s in spans]

    def clear(self) -> None:
        """Drop every finished span and reset the id counter and epoch."""
        self._finished.clear()
        self._stack.clear()
        self._next_id = 0
        self._epoch_s = time.perf_counter()

    def write(self, path: str | Path) -> Path:
        """Export the finished spans as schema-tagged JSONL."""
        return write_trace(self.records(), path)


# --------------------------------------------------------------------- global
def _enabled_from_env() -> bool:
    return os.environ.get("SPOTWEB_TRACE", "0") not in ("", "0")


_TRACER = Tracer(enabled=_enabled_from_env())


def get_tracer() -> Tracer:
    """The process-global tracer (disabled unless opted in)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the global tracer (tests, embedded use); returns the old one."""
    global _TRACER
    old, _TRACER = _TRACER, tracer
    return old


def enable_tracing() -> Tracer:
    """Switch the global tracer on (fresh epoch, empty span list)."""
    _TRACER.enabled = True
    _TRACER.clear()
    return _TRACER


def disable_tracing() -> Tracer:
    """Switch the global tracer off; keeps already-recorded spans."""
    _TRACER.enabled = False
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


# ----------------------------------------------------------------- trace files
def write_trace(records: Iterable[dict], path: str | Path) -> Path:
    """Write span records as JSONL with a schema header line."""
    path = Path(path)
    lines = [json.dumps({"schema": TRACE_SCHEMA, "kind": "header"})]
    lines.extend(json.dumps(rec, sort_keys=True) for rec in records)
    path.write_text("\n".join(lines) + "\n")
    return path


def load_trace(path: str | Path) -> list[dict]:
    """Load and validate a trace JSONL file; returns the span records."""
    raw = Path(path).read_text().splitlines()
    if not raw:
        raise ValueError("empty trace file")
    parsed: list[dict] = []
    line_numbers: list[int] = []
    for lineno, line in enumerate(raw, start=1):
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"line {lineno}: trace file is not valid JSONL: {exc}"
            ) from exc
        line_numbers.append(lineno)
    if not parsed:
        raise ValueError("empty trace file")
    header, records = parsed[0], parsed[1:]
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        schema = header.get("schema") if isinstance(header, dict) else header
        raise ValueError(
            f"line {line_numbers[0]}: unknown trace schema: {schema!r}"
        )
    validate_trace(records, lines=line_numbers[1:])
    return records


def validate_trace(records: list[dict], *, lines: list[int] | None = None) -> None:
    """Check span records against the ``spotweb-trace/1`` schema.

    Raises ``ValueError`` on the first violation — a missing or mistyped
    field, a duplicate id, a parent reference to an unknown span, a negative
    duration, or a child starting before its parent — naming the offending
    field and, when ``lines`` maps record indices back to JSONL line
    numbers (as :func:`load_trace` passes), the source line.
    """

    def _loc(i: int) -> str:
        if lines is not None and i < len(lines):
            return f"line {lines[i]}: record {i}"
        return f"record {i}"

    seen: dict[int, tuple[dict, int]] = {}
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise ValueError(f"{_loc(i)} is not an object")
        for key, types in _SPAN_FIELDS.items():
            if key not in rec:
                raise ValueError(f"{_loc(i)} missing field {key!r}")
            if not isinstance(rec[key], types) or isinstance(rec[key], bool):
                raise ValueError(
                    f"{_loc(i)} field {key!r} has type "
                    f"{type(rec[key]).__name__}, expected "
                    + "/".join(t.__name__ for t in types)
                )
        if rec["dur"] < 0:
            raise ValueError(f"{_loc(i)} field 'dur' has negative duration")
        if rec["start"] < 0:
            raise ValueError(f"{_loc(i)} field 'start' has negative start")
        if rec["id"] in seen:
            raise ValueError(f"{_loc(i)} field 'id': duplicate span id {rec['id']}")
        seen[rec["id"]] = (rec, i)
    for rec, i in seen.values():
        parent_id = rec["parent"]
        if parent_id is None:
            continue
        entry = seen.get(parent_id)
        if entry is None:
            raise ValueError(
                f"{_loc(i)} field 'parent': span {rec['id']} references "
                f"unknown parent {parent_id}"
            )
        parent = entry[0]
        if rec["depth"] != parent["depth"] + 1:
            raise ValueError(
                f"{_loc(i)} field 'depth': span {rec['id']} depth "
                f"{rec['depth']} inconsistent with parent depth {parent['depth']}"
            )
        # Children must start within the parent interval (timer jitter slack).
        if rec["start"] + 1e-9 < parent["start"]:
            raise ValueError(
                f"{_loc(i)} field 'start': span {rec['id']} starts before "
                f"its parent {parent_id}"
            )
