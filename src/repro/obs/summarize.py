"""Trace analysis: ``python -m repro trace summarize <file>``.

Turns a ``spotweb-trace/1`` JSONL file into a terminal report:

- **top spans** — wall-clock aggregated by span name (count, total,
  mean, max, share of the root);
- **critical path** — the chain of longest children from the root span
  down, with each hop's share of its parent;
- **coverage** — how much of each composite span its children account
  for (the acceptance gate asks the instrumented critical path to cover
  >= 95% of the root's wall-clock);
- **per-interval timeline** — the ``controller.step`` spans in time
  order, phase totals, and an ASCII sparkline of interval latency
  (via the foundation renderer :mod:`repro.textfmt` — ``repro.obs``
  must not depend on the reporting layer).
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.obs.tracer import load_trace
from repro.units import MS_PER_SECOND

__all__ = [
    "span_children",
    "aggregate_by_name",
    "critical_path",
    "child_coverage",
    "interval_spans",
    "format_summary",
    "summarize_file",
]

_INTERVAL_SPAN = "controller.step"


def span_children(records: list[dict]) -> dict[int | None, list[dict]]:
    """Map parent id (``None`` for roots) to children in start order."""
    children: dict[int | None, list[dict]] = defaultdict(list)
    for rec in records:
        children[rec["parent"]].append(rec)
    for kids in children.values():
        kids.sort(key=lambda r: (r["start"], r["id"]))
    return dict(children)


def aggregate_by_name(records: list[dict]) -> list[dict]:
    """Per-name totals, sorted by total duration descending.

    ``self`` time excludes child spans, so a composite span does not count
    its phases twice in the share column.
    """
    child_time: dict[int, float] = defaultdict(float)
    for rec in records:
        if rec["parent"] is not None:
            child_time[rec["parent"]] += rec["dur"]
    by_name: dict[str, dict] = {}
    for rec in records:
        agg = by_name.setdefault(
            rec["name"],
            {"name": rec["name"], "count": 0, "total": 0.0, "self": 0.0,
             "max": 0.0},
        )
        agg["count"] += 1
        agg["total"] += rec["dur"]
        agg["self"] += max(0.0, rec["dur"] - child_time.get(rec["id"], 0.0))
        agg["max"] = max(agg["max"], rec["dur"])
    out = sorted(by_name.values(), key=lambda a: (-a["total"], a["name"]))
    for agg in out:
        agg["mean"] = agg["total"] / agg["count"]
    return out


def critical_path(records: list[dict]) -> list[dict]:
    """Longest-child chain from the longest root span downward.

    Each entry carries the span record plus ``share``, its duration as a
    fraction of its parent on the path (1.0 for the root).
    """
    children = span_children(records)
    roots = children.get(None, [])
    if not roots:
        return []
    node = max(roots, key=lambda r: r["dur"])
    path = [{**node, "share": 1.0}]
    while True:
        kids = children.get(node["id"], [])
        if not kids:
            break
        nxt = max(kids, key=lambda r: r["dur"])
        share = nxt["dur"] / node["dur"] if node["dur"] > 0 else 0.0
        path.append({**nxt, "share": share})
        node = nxt
    return path


def child_coverage(records: list[dict]) -> dict[int, float]:
    """Fraction of each composite span's duration covered by its children."""
    children = span_children(records)
    coverage: dict[int, float] = {}
    for rec in records:
        kids = children.get(rec["id"])
        if not kids:
            continue
        covered = sum(k["dur"] for k in kids)
        coverage[rec["id"]] = covered / rec["dur"] if rec["dur"] > 0 else 1.0
    return coverage


def interval_spans(records: list[dict]) -> list[dict]:
    """The per-interval ``controller.step`` spans in time order."""
    steps = [r for r in records if r["name"] == _INTERVAL_SPAN]
    steps.sort(key=lambda r: (r["start"], r["id"]))
    return steps


def _phase_totals(records: list[dict]) -> list[dict]:
    """Totals of the direct children of the interval spans, by name."""
    step_ids = {r["id"] for r in interval_spans(records)}
    phases: dict[str, dict] = {}
    total = 0.0
    for rec in records:
        if rec["parent"] not in step_ids:
            continue
        agg = phases.setdefault(
            rec["name"], {"phase": rec["name"], "count": 0, "total": 0.0}
        )
        agg["count"] += 1
        agg["total"] += rec["dur"]
        total += rec["dur"]
    out = sorted(phases.values(), key=lambda a: (-a["total"], a["phase"]))
    for agg in out:
        agg["share"] = agg["total"] / total if total > 0 else 0.0
    return out


def format_summary(records: list[dict], *, top: int = 12) -> str:
    """Render the full text report for one trace."""
    from repro.textfmt import format_chain, format_table, format_topn, sparkline

    if not records:
        return "trace contains no spans"
    parts: list[str] = []
    total_wall = sum(r["dur"] for r in records if r["parent"] is None)

    aggs = aggregate_by_name(records)
    rows = [
        [
            a["name"],
            a["count"],
            MS_PER_SECOND * a["total"],
            MS_PER_SECOND * a["mean"],
            MS_PER_SECOND * a["max"],
            100.0 * (a["self"] / total_wall if total_wall > 0 else 0.0),
        ]
        for a in aggs
    ]
    parts.append(
        format_topn(
            ["span", "count", "total_ms", "mean_ms", "max_ms", "self_%"],
            rows,
            top=top,
            title=f"top spans ({len(records)} spans, "
            f"{MS_PER_SECOND * total_wall:.1f} ms root wall-clock)",
        )
    )

    path = critical_path(records)
    rows = [
        [p["name"], MS_PER_SECOND * p["dur"], 100.0 * p["share"]] for p in path
    ]
    parts.append(
        format_chain(
            ["critical path", "total_ms", "parent_%"],
            rows,
            list(range(len(path))),
            title="critical path (longest child chain)",
        )
    )

    coverage = child_coverage(records)
    roots = [r for r in records if r["parent"] is None]
    root = max(roots, key=lambda r: r["dur"])
    root_cov = coverage.get(root["id"], 0.0)
    parts.append(
        f"root span '{root['name']}': {MS_PER_SECOND * root['dur']:.1f} ms, "
        f"{100.0 * root_cov:.1f}% covered by child spans"
    )

    steps = interval_spans(records)
    if steps:
        durs = np.array([s["dur"] for s in steps])
        parts.append(
            f"interval timeline ({len(steps)} x {_INTERVAL_SPAN}, "
            f"median {MS_PER_SECOND * float(np.median(durs)):.2f} ms):\n  "
            + sparkline(durs, width=72)
        )
        rows = [
            [p["phase"], p["count"], MS_PER_SECOND * p["total"], 100.0 * p["share"]]
            for p in _phase_totals(records)
        ]
        if rows:
            parts.append(
                format_table(
                    ["phase", "count", "total_ms", "share_%"],
                    rows,
                    title="per-interval phase breakdown",
                )
            )
    return "\n\n".join(parts)


def summarize_file(path: str | Path, *, top: int = 12) -> str:
    """Load, validate, and summarize one trace JSONL file."""
    return format_summary(load_trace(path), top=top)
