"""Streaming telemetry plane: the in-process TelemetryBus and its sinks.

Batch observability (:mod:`repro.obs.metrics` snapshots, journal files)
answers questions *after* a run; this module answers them *during* one.
Time-owning drivers — the interval cost simulator, the SLO engine at
interval closes — call :meth:`TelemetryBus.tick` at sim-interval
boundaries, and the bus publishes incremental **deltas** to in-process
subscribers: the flight recorder (:mod:`repro.obs.flightrec`), streaming
anomaly detectors (:mod:`repro.obs.anomaly`), the live dashboard
(:mod:`repro.obs.dash`), the OpenMetrics scrape endpoint
(:class:`MetricsServer`), and file sinks (:class:`DeltaWriter`,
:class:`PromFileWriter`).

Delta stream schema (``spotweb-telemetry/1``)
---------------------------------------------
Every delta is a JSON object with ``seq`` (bus-wide, strictly
increasing), ``t`` (sim seconds), ``interval`` (or ``None``), and a
``type`` discriminator.  One :meth:`~TelemetryBus.tick` publishes, in
order:

- ``{"type": "events", "events": [...]}`` — journal records appended
  since the previous tick (``spotweb-events/1`` record shape), when any;
- ``{"type": "slo", "points": [...]}`` — the ``slo.interval`` points
  among those events (``interval``/``t``/``requests``/``compliance``/
  ``burn``/``p50``/``p95``/``p99``), when any;
- ``{"type": "metrics", "changed": {...}}`` — registry values that
  changed since last published, when metric publishing is on.  Wall-clock
  histograms (``*_ms`` names) collapse to ``{"count": n}`` so the stream
  stays a pure function of ``(config, seed)``;
- ``{"type": "tick"}`` — always, as the frame boundary subscribers key
  refreshes on.

Because every field is sim-time-derived, two identical-seed runs publish
**byte-identical** delta streams (:func:`delta_line` is the canonical
serialization) — locked by test, same contract as the events journal.

The bus is off by default behind the shared no-op pattern: when
disabled, :meth:`~TelemetryBus.tick` is a single attribute check, so
tier-1 runtime and bitwise run outputs are unchanged.  Opt in with the
CLI telemetry flags, :func:`enable_telemetry`, or ``SPOTWEB_TELEMETRY=1``.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable

from repro.obs.events import enable_events, events_enabled, get_events
from repro.obs.metrics import (
    MetricsRegistry,
    get_metrics,
    prometheus_text,
    write_prometheus,
)

__all__ = [
    "TELEMETRY_SCHEMA",
    "SLO_POINT_FIELDS",
    "delta_line",
    "TelemetryBus",
    "DeltaWriter",
    "PromFileWriter",
    "MetricsServer",
    "get_bus",
    "set_bus",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
]

TELEMETRY_SCHEMA = "spotweb-telemetry/1"

#: Attrs copied from ``slo.interval`` journal events into ``slo`` deltas.
SLO_POINT_FIELDS = ("requests", "compliance", "burn", "p50", "p95", "p99")


def delta_line(delta: dict) -> str:
    """The canonical one-line JSON serialization of a delta.

    Sorted keys and default separators, so equal deltas serialize to
    equal bytes — the unit the byte-identical-stream contract is stated
    in.
    """
    return json.dumps(delta, sort_keys=True)


class TelemetryBus:
    """Publishes sim-time-stamped telemetry deltas to subscribers.

    Subscribers are plain callables ``fn(delta: dict) -> None`` invoked
    synchronously, in subscription order, on the ticking thread — so a
    subscriber's view of the stream is deterministic and totally ordered.
    Subscribers must not mutate the delta they receive (it is shared).

    ``publish_metrics=False`` drops ``metrics`` deltas entirely; scenario
    episodes use it because the process-global registry accumulates
    across episodes, and the event-only stream is what is a pure function
    of the episode ``(spec, seed)``.
    """

    def __init__(
        self, *, enabled: bool = False, publish_metrics: bool = True
    ) -> None:
        self.enabled = bool(enabled)
        self.publish_metrics = bool(publish_metrics)
        self._subscribers: list[Callable[[dict], None]] = []
        self._seq = 0
        self._event_cursor = 0
        self._event_log_id: int | None = None
        self._last_metrics: dict = {}

    # ----------------------------------------------------------- subscribers
    def subscribe(self, fn: Callable[[dict], None]) -> Callable[[dict], None]:
        """Register a subscriber; returns it for chaining."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[dict], None]) -> None:
        """Remove a subscriber (no-op if not subscribed)."""
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    # ------------------------------------------------------------ publishing
    def _publish(self, delta: dict) -> None:
        delta["seq"] = self._seq
        self._seq += 1
        for fn in self._subscribers:
            fn(delta)

    def tick(self, t: float, interval: int | None = None) -> None:
        """Publish the deltas for one sim-interval boundary.

        Drains journal records appended since the last tick (cursoring on
        :meth:`EventLog.record_count`; a swapped log object or a shrunk
        count means the journal restarted and the cursor goes back to
        zero), derives the ``slo`` point delta from them, diffs the
        metrics registry, and closes the frame with a ``tick`` delta.
        No-op while disabled.
        """
        if not self.enabled:
            return
        t = float(t)
        interval = None if interval is None else int(interval)
        ev = get_events()
        count = ev.record_count()
        if id(ev) != self._event_log_id or count < self._event_cursor:
            self._event_log_id = id(ev)
            self._event_cursor = 0
        new = ev.records_since(self._event_cursor)
        self._event_cursor = count
        if new:
            self._publish(
                {"type": "events", "t": t, "interval": interval, "events": new}
            )
            points = [
                {
                    "interval": rec["interval"],
                    "t": rec["t"],
                    **{
                        key: rec["attrs"][key]
                        for key in SLO_POINT_FIELDS
                        if key in rec["attrs"]
                    },
                }
                for rec in new
                if rec["kind"] == "slo.interval"
            ]
            if points:
                self._publish(
                    {
                        "type": "slo",
                        "t": t,
                        "interval": interval,
                        "points": points,
                    }
                )
        if self.publish_metrics:
            changed = self._changed_metrics()
            if changed:
                self._publish(
                    {
                        "type": "metrics",
                        "t": t,
                        "interval": interval,
                        "changed": changed,
                    }
                )
        self._publish({"type": "tick", "t": t, "interval": interval})

    def _changed_metrics(self) -> dict:
        """Registry values that differ from the last published state.

        Histograms whose name carries the wall-clock ``_ms`` suffix
        collapse to their sample count: the count is deterministic (one
        sample per solve), the latency statistics are not, and only
        deterministic values may enter the delta stream.
        """
        changed: dict = {}
        for name, value in get_metrics().snapshot().items():
            if name.endswith("_ms") and isinstance(value, dict):
                value = {"count": value["count"]}
            if self._last_metrics.get(name) != value:
                changed[name] = value
                self._last_metrics[name] = value
        return changed

    def flush(self, t: float | None = None) -> None:
        """Publish any pending deltas (final partial frame at end of run)."""
        if not self.enabled:
            return
        ev = get_events()
        self.tick(ev.clock if t is None else t, ev.interval)

    def reset(self) -> None:
        """Restart the stream: seq, event cursor, and metrics diff state."""
        self._seq = 0
        self._event_cursor = 0
        self._event_log_id = None
        self._last_metrics = {}


class DeltaWriter:
    """Bus subscriber that accumulates the delta stream as JSONL lines.

    ``write`` exports the stream schema-tagged (``spotweb-telemetry/1``
    header line, then one delta per line) — the artifact the
    byte-identical-stream test compares across identical-seed runs.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    def __call__(self, delta: dict) -> None:
        self.lines.append(delta_line(delta))

    def text(self) -> str:
        header = json.dumps({"schema": TELEMETRY_SCHEMA, "kind": "header"})
        return "\n".join([header, *self.lines]) + "\n"

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.text(), encoding="utf-8")
        return path


class PromFileWriter:
    """Bus subscriber that refreshes a Prometheus textfile every frame.

    On each ``tick`` delta the current registry state is re-exported
    atomically (:func:`repro.obs.metrics.write_prometheus`), so an
    external scraper polling the path sees a fresh, never-torn file at
    every sim interval instead of only at end of run.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        prefix: str = "spotweb_",
        openmetrics: bool = False,
    ) -> None:
        self.path = Path(path)
        self.prefix = prefix
        self.openmetrics = openmetrics

    def __call__(self, delta: dict) -> None:
        if delta.get("type") == "tick":
            write_prometheus(
                self.path,
                get_metrics(),
                prefix=self.prefix,
                openmetrics=self.openmetrics,
            )


class MetricsServer:
    """Live OpenMetrics scrape endpoint on a background thread.

    Serves ``GET /metrics`` (and ``/``) from a cached render of the
    registry; the cache refreshes when the server is subscribed to a
    ticking bus (every ``tick`` delta) or via :meth:`refresh`.  Render
    and serve are decoupled so scrapes never race a half-updated
    registry: the handler only ever reads the cached text under a lock.

    ``port=0`` binds an ephemeral port; read the bound one from
    ``.port`` after :meth:`start`.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        prefix: str = "spotweb_",
    ) -> None:
        self.host = host
        self.port = int(port)
        self.prefix = prefix
        self._registry = registry
        self._lock = threading.Lock()
        self._text = "# EOF\n"
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def refresh(self) -> None:
        """Re-render the registry into the serve cache."""
        registry = self._registry if self._registry is not None else get_metrics()
        text = prometheus_text(registry, prefix=self.prefix, openmetrics=True)
        if not text:
            text = "# EOF\n"
        with self._lock:
            self._text = text

    def __call__(self, delta: dict) -> None:
        """Bus subscriber hook: refresh the cache at each frame."""
        if delta.get("type") == "tick":
            self.refresh()

    def text(self) -> str:
        """The currently cached OpenMetrics payload."""
        with self._lock:
            return self._text

    def start(self) -> "MetricsServer":
        """Bind the socket and serve from a daemon thread."""
        if self._server is not None:
            return self
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served")
                    return
                body = outer.text().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args) -> None:
                # Scrapes must not spam the simulation's stdout.
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self.refresh()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="spotweb-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"


# ---------------------------------------------------------------------- global
def _enabled_from_env() -> bool:
    return os.environ.get("SPOTWEB_TELEMETRY", "0") not in ("", "0")


_BUS = TelemetryBus(enabled=_enabled_from_env())


def get_bus() -> TelemetryBus:
    """The process-global telemetry bus (disabled unless opted in)."""
    return _BUS


def set_bus(bus: TelemetryBus) -> TelemetryBus:
    """Replace the global bus (tests, scenario episodes); returns the old."""
    global _BUS
    old, _BUS = _BUS, bus
    return old


def enable_telemetry() -> TelemetryBus:
    """Switch the global bus on (fresh stream state).

    Telemetry deltas are derived from the events journal, so this also
    enables the global event log if it is not already on.
    """
    _BUS.enabled = True
    _BUS.reset()
    if not events_enabled():
        enable_events()
    return _BUS


def disable_telemetry() -> TelemetryBus:
    """Switch the global bus off; keeps subscribers attached."""
    _BUS.enabled = False
    return _BUS


def telemetry_enabled() -> bool:
    return _BUS.enabled
