"""Flight recorder: bounded telemetry ring buffer with incident dumps.

An aircraft-style black box for simulation runs: a
:class:`FlightRecorder` subscribes to the telemetry bus
(:mod:`repro.obs.live`) and keeps the last ``max_records`` deltas inside
a sliding ``window_seconds`` of sim time.  When something goes wrong —
an SLO burn-rate alert fires (auto-detected in the delta stream), a
scenario invariant is violated, or the process crashes (see
:func:`install_crash_hooks`) — the buffer is dumped as a schema-tagged
``spotweb-flightrec/1`` bundle answering "what happened in the last N
sim-seconds before the incident".

Bundle format: a header line ``{"schema": "spotweb-flightrec/1",
"kind": "header", "reason": ..., "t": ..., "trigger": ...,
"records": N}`` followed by the buffered deltas, one canonical JSON line
each (``spotweb-telemetry/1`` delta shape).  Because the delta stream is
a pure function of ``(config, seed)``, so is the bundle: identical-seed
runs dump byte-identical bundles.

``python -m repro flightrec validate|summarize`` round-trips bundles
through :func:`load_flightrec` / :func:`summarize_flightrec`, rendering
the incident window with the existing eventreport/textfmt machinery.
"""

from __future__ import annotations

import atexit
import json
import sys
from collections import deque
from pathlib import Path

from repro.obs.eventreport import format_event_summary, format_timeline
from repro.obs.live import delta_line, get_bus
from repro.textfmt import format_table

__all__ = [
    "FLIGHTREC_SCHEMA",
    "FlightRecValidationError",
    "FlightRecorder",
    "get_flightrec",
    "set_flightrec",
    "enable_flightrec",
    "disable_flightrec",
    "flightrec_enabled",
    "install_crash_hooks",
    "uninstall_crash_hooks",
    "load_flightrec",
    "validate_flightrec",
    "summarize_flightrec",
]

FLIGHTREC_SCHEMA = "spotweb-flightrec/1"

_DELTA_TYPES = ("events", "metrics", "slo", "tick")


class FlightRecValidationError(ValueError):
    """A malformed flight bundle, locating the line at fault."""

    def __init__(self, message: str, *, line: int | None = None) -> None:
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


class FlightRecorder:
    """Ring buffer of telemetry deltas, dumped on incidents.

    Subscribe it to a bus (``bus.subscribe(recorder)``); it retains at
    most ``max_records`` deltas no older than ``window_seconds`` of sim
    time behind the newest.  With ``auto_dump`` (the default) a
    ``slo.alert`` journal event entering the stream in the ``firing``
    state triggers a dump immediately — the buffer still holds the
    pre-alert window at that point, which is exactly the forensic value.

    Dump paths are deterministic (``flightrec_<n>_<reason>.jsonl`` under
    ``out_dir``, numbered in dump order), so identical-seed runs produce
    identical bundle files; written paths accumulate on :attr:`dumped`.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        out_dir: str | Path = ".",
        max_records: int = 512,
        window_seconds: float = 120.0,
        auto_dump: bool = True,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.enabled = bool(enabled)
        self.out_dir = Path(out_dir)
        self.window_seconds = float(window_seconds)
        self.auto_dump = bool(auto_dump)
        self._buffer: deque[dict] = deque(maxlen=int(max_records))
        self._dumps = 0
        self.dumped: list[Path] = []

    def __call__(self, delta: dict) -> None:
        """Bus subscriber hook: buffer the delta, auto-dump on alerts."""
        if not self.enabled:
            return
        self._buffer.append(delta)
        horizon = float(delta["t"]) - self.window_seconds
        while self._buffer and float(self._buffer[0]["t"]) < horizon:
            self._buffer.popleft()
        if self.auto_dump and delta.get("type") == "events":
            for rec in delta["events"]:
                if (
                    rec["kind"] == "slo.alert"
                    and rec["attrs"].get("state") == "firing"
                ):
                    self.dump(
                        "slo.alert",
                        trigger={
                            "kind": rec["kind"],
                            "t": rec["t"],
                            "interval": rec["interval"],
                            "id": rec["id"],
                            "cause": rec["cause"],
                            "attrs": rec["attrs"],
                        },
                    )

    def buffered(self) -> list[dict]:
        """The deltas currently retained, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop the buffer (dump counter and written paths are kept)."""
        self._buffer.clear()

    def dump(
        self,
        reason: str,
        *,
        trigger: dict | None = None,
        path: str | Path | None = None,
    ) -> Path:
        """Write the buffered window as a ``spotweb-flightrec/1`` bundle.

        ``reason`` states why the dump happened (``slo.alert``,
        ``invariant.violation``, ``crash``, ``exit``, or ad hoc);
        ``trigger`` optionally carries the journal event or violation
        that pulled the cord, verbatim, so the bundle is self-describing.
        """
        self._dumps += 1
        records = list(self._buffer)
        t = float(records[-1]["t"]) if records else 0.0
        if path is None:
            safe = reason.replace(".", "_").replace("/", "_")
            path = self.out_dir / f"flightrec_{self._dumps:03d}_{safe}.jsonl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "schema": FLIGHTREC_SCHEMA,
            "kind": "header",
            "reason": reason,
            "t": t,
            "trigger": trigger,
            "records": len(records),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(delta_line(delta) for delta in records)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self.dumped.append(path)
        return path


# ---------------------------------------------------------------------- global
_FLIGHTREC = FlightRecorder(enabled=False)


def get_flightrec() -> FlightRecorder:
    """The process-global flight recorder (disabled unless opted in)."""
    return _FLIGHTREC


def set_flightrec(recorder: FlightRecorder) -> FlightRecorder:
    """Replace the global recorder (tests); returns the old one."""
    global _FLIGHTREC
    old, _FLIGHTREC = _FLIGHTREC, recorder
    return old


def enable_flightrec(out_dir: str | Path = ".") -> FlightRecorder:
    """Arm the global recorder and attach it to the global bus.

    Scenario episodes additionally subscribe the armed recorder to
    their private per-episode bus, so episode incidents are captured
    even though episodes journal into a private log.
    """
    recorder = get_flightrec()
    recorder.enabled = True
    recorder.out_dir = Path(out_dir)
    bus = get_bus()
    bus.unsubscribe(recorder)
    bus.subscribe(recorder)
    return recorder


def disable_flightrec() -> FlightRecorder:
    """Disarm the global recorder and detach it from the global bus."""
    recorder = get_flightrec()
    recorder.enabled = False
    get_bus().unsubscribe(recorder)
    return recorder


def flightrec_enabled() -> bool:
    return get_flightrec().enabled


# ----------------------------------------------------------------- crash hooks
_ORIG_EXCEPTHOOK = None


def _crash_excepthook(exc_type, exc, tb) -> None:
    recorder = get_flightrec()
    if recorder.enabled:
        recorder.dump(
            "crash",
            trigger={
                "exception": exc_type.__name__,
                "message": str(exc),
            },
        )
    hook = _ORIG_EXCEPTHOOK if _ORIG_EXCEPTHOOK is not None else sys.__excepthook__
    hook(exc_type, exc, tb)


def _exit_dump() -> None:
    recorder = get_flightrec()
    if recorder.enabled and recorder.buffered():
        recorder.dump("exit")


def install_crash_hooks(*, on_exit: bool = False) -> None:
    """Dump the armed recorder's buffer when the process dies unhappily.

    Wraps ``sys.excepthook`` so an uncaught exception dumps a ``crash``
    bundle before the original hook prints the traceback.  With
    ``on_exit`` an atexit handler also dumps any non-empty buffer as an
    ``exit`` bundle (off by default: clean exits are not incidents).
    """
    global _ORIG_EXCEPTHOOK
    if _ORIG_EXCEPTHOOK is None:
        _ORIG_EXCEPTHOOK = sys.excepthook
        sys.excepthook = _crash_excepthook
    if on_exit:
        atexit.register(_exit_dump)


def uninstall_crash_hooks() -> None:
    """Restore the original excepthook and drop the atexit dump."""
    global _ORIG_EXCEPTHOOK
    if _ORIG_EXCEPTHOOK is not None:
        sys.excepthook = _ORIG_EXCEPTHOOK
        _ORIG_EXCEPTHOOK = None
    atexit.unregister(_exit_dump)


# --------------------------------------------------------------- bundle files
def load_flightrec(path: str | Path) -> tuple[dict, list[dict]]:
    """Load and validate a flight bundle; returns ``(header, deltas)``.

    Raises :class:`FlightRecValidationError` naming the 1-based file
    line of the first malformed record: wrong schema tag, unknown delta
    type, missing/mistyped ``seq``/``t``, non-increasing ``seq``, a
    record-count header that disagrees with the body, or payload fields
    of the wrong shape.
    """
    raw = Path(path).read_text().splitlines()
    parsed: list[tuple[int, dict]] = []
    for lineno, line in enumerate(raw, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FlightRecValidationError(
                f"not valid JSON: {exc.msg}", line=lineno
            ) from exc
        if not isinstance(obj, dict):
            raise FlightRecValidationError("record is not an object", line=lineno)
        parsed.append((lineno, obj))
    if not parsed:
        raise FlightRecValidationError("empty flight bundle")
    header_line, header = parsed[0]
    if header.get("schema") != FLIGHTREC_SCHEMA:
        raise FlightRecValidationError(
            f"unknown bundle schema: {header.get('schema')!r}", line=header_line
        )
    if not isinstance(header.get("reason"), str):
        raise FlightRecValidationError(
            "header is missing a string 'reason'", line=header_line
        )
    deltas: list[dict] = []
    prev_seq: int | None = None
    for lineno, delta in parsed[1:]:
        dtype = delta.get("type")
        if dtype not in _DELTA_TYPES:
            raise FlightRecValidationError(
                f"unknown delta type {dtype!r}", line=lineno
            )
        seq = delta.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise FlightRecValidationError(
                f"delta seq {seq!r} is not an int", line=lineno
            )
        if prev_seq is not None and seq <= prev_seq:
            raise FlightRecValidationError(
                f"delta seq {seq} is not strictly increasing "
                f"(previous {prev_seq})",
                line=lineno,
            )
        prev_seq = seq
        if not isinstance(delta.get("t"), (int, float)) or isinstance(
            delta.get("t"), bool
        ):
            raise FlightRecValidationError(
                f"delta t {delta.get('t')!r} is not a number", line=lineno
            )
        if dtype == "events" and not isinstance(delta.get("events"), list):
            raise FlightRecValidationError(
                "events delta has no 'events' list", line=lineno
            )
        if dtype == "slo" and not isinstance(delta.get("points"), list):
            raise FlightRecValidationError(
                "slo delta has no 'points' list", line=lineno
            )
        if dtype == "metrics" and not isinstance(delta.get("changed"), dict):
            raise FlightRecValidationError(
                "metrics delta has no 'changed' mapping", line=lineno
            )
        deltas.append(delta)
    declared = header.get("records")
    if declared != len(deltas):
        raise FlightRecValidationError(
            f"header declares {declared!r} records, bundle has {len(deltas)}",
            line=header_line,
        )
    return header, deltas


def validate_flightrec(path: str | Path) -> dict:
    """Validate a bundle; returns a small summary dict on success."""
    header, deltas = load_flightrec(path)
    return {
        "reason": header["reason"],
        "t": header.get("t"),
        "deltas": len(deltas),
        "events": sum(
            len(d["events"]) for d in deltas if d["type"] == "events"
        ),
    }


def summarize_flightrec(path: str | Path) -> str:
    """Render the incident window of a flight bundle as a text report.

    Names the dump reason and the triggering alert, then reuses the
    journal report machinery (:func:`format_event_summary`,
    :func:`format_timeline`) over the buffered events and closes with
    the last-published metric values.
    """
    path = Path(path)
    header, deltas = load_flightrec(path)
    events = [
        rec for d in deltas if d["type"] == "events" for rec in d["events"]
    ]
    lines = [
        f"flight bundle {path.name}: reason={header['reason']} "
        f"t={header.get('t')} deltas={len(deltas)} events={len(events)}"
    ]
    trigger = header.get("trigger")
    if trigger:
        lines.append("trigger: " + json.dumps(trigger, sort_keys=True))
    alerts = [rec for rec in events if rec["kind"] == "slo.alert"]
    for rec in alerts:
        attrs = rec["attrs"]
        lines.append(
            f"slo.alert t={rec['t']} state={attrs.get('state')} "
            f"burn_short={attrs.get('burn_short')} "
            f"burn_long={attrs.get('burn_long')}"
        )
    if events:
        lines.append("")
        lines.append(format_event_summary(events))
        lines.append("")
        lines.append(format_timeline(events))
    merged: dict = {}
    for delta in deltas:
        if delta["type"] == "metrics":
            merged.update(delta["changed"])
    if merged:
        rows = [
            (
                name,
                json.dumps(value, sort_keys=True)
                if isinstance(value, dict)
                else value,
            )
            for name, value in sorted(merged.items())
        ]
        lines.append("")
        lines.append(
            format_table(("metric", "last value"), rows, title="last metrics")
        )
    return "\n".join(lines)
