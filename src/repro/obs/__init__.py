"""``repro.obs`` — zero-dependency observability for the control loop.

Three layers, all off (or free) by default so tier-1 runtime and bitwise
experiment outputs are unchanged:

- :mod:`repro.obs.tracer` — nested span tracing across the controller's
  per-interval loop, the QP solver phases, the DES event loop, and the
  load balancer's warning path; exports schema-tagged JSONL
  (``spotweb-trace/1``).  Opt in with ``--trace`` / ``SPOTWEB_TRACE``.
- :mod:`repro.obs.metrics` — an always-on (but feedback-free) registry of
  counters/gauges/histograms with a deterministic snapshot API.
- :mod:`repro.obs.summarize` — the ``python -m repro trace summarize``
  analyzer: top spans, critical path, child coverage, and an ASCII
  per-interval timeline.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    set_metrics,
)
from repro.obs.tracer import (
    TRACE_SCHEMA,
    NullSpan,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace,
    set_tracer,
    tracing_enabled,
    validate_trace,
    write_trace,
)
from repro.obs.summarize import (
    aggregate_by_name,
    child_coverage,
    critical_path,
    format_summary,
    interval_spans,
    span_children,
    summarize_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "set_metrics",
    "TRACE_SCHEMA",
    "NullSpan",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "load_trace",
    "set_tracer",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
    "aggregate_by_name",
    "child_coverage",
    "critical_path",
    "format_summary",
    "interval_spans",
    "span_children",
    "summarize_file",
]
