"""``repro.obs`` — zero-dependency observability for the control loop.

Batch and streaming layers, all off (or free) by default so tier-1
runtime and bitwise experiment outputs are unchanged:

- :mod:`repro.obs.tracer` — nested span tracing across the controller's
  per-interval loop, the QP solver phases, the DES event loop, and the
  load balancer's warning path; exports schema-tagged JSONL
  (``spotweb-trace/1``).  Opt in with ``--trace`` / ``SPOTWEB_TRACE``.
- :mod:`repro.obs.metrics` — an always-on (but feedback-free) registry of
  counters/gauges/histograms with a deterministic snapshot API and a
  Prometheus/OpenMetrics exporter.
- :mod:`repro.obs.summarize` — the ``python -m repro trace summarize``
  analyzer: top spans, critical path, child coverage, and an ASCII
  per-interval timeline.
- :mod:`repro.obs.events` — the sim-time domain-event journal
  (``spotweb-events/1``): causally linked revocation-warning lifecycles,
  load-balancer and controller decisions, SLO state.  Opt in with
  ``--events`` / ``SPOTWEB_EVENTS``.
- :mod:`repro.obs.slo` — streaming fixed-bin latency digest plus the
  per-interval SLO-compliance / multi-window burn-rate engine feeding
  ``slo.interval`` / ``slo.alert`` events.
- :mod:`repro.obs.eventreport` — the ``python -m repro events`` analyzer:
  incident report, ASCII timeline, and journal diff.
- :mod:`repro.obs.live` — the streaming telemetry plane: a
  :class:`~repro.obs.live.TelemetryBus` publishing deterministic
  sim-time deltas (``spotweb-telemetry/1``) at interval boundaries, plus
  file sinks and the live OpenMetrics scrape endpoint.  Opt in with the
  CLI telemetry flags / ``SPOTWEB_TELEMETRY``.
- :mod:`repro.obs.flightrec` — the flight recorder: a bounded ring
  buffer of recent deltas dumped as ``spotweb-flightrec/1`` bundles on
  SLO alerts, invariant violations, or crashes.
- :mod:`repro.obs.anomaly` — streaming EWMA z-score and CUSUM detectors
  over SLO/cost series, emitting ``telemetry.anomaly`` journal events.
- :mod:`repro.obs.dash` — the ``python -m repro top`` dashboard: bus-fed
  state and deterministic ASCII rendering.
"""

from repro.obs.anomaly import (
    ANOMALY_EVENT,
    AnomalyMonitor,
    CusumDetector,
    DEFAULT_SERIES,
    DetectorConfig,
    EwmaZScoreDetector,
    SeriesSpec,
    detect_series,
)
from repro.obs.dash import DashRenderer, DashState, render_dash
from repro.obs.eventreport import (
    diff_files,
    diff_journals,
    format_diff,
    format_event_summary,
    format_timeline,
    incidents,
    kind_counts,
    slo_series,
    summarize_events_file,
    tier_spans,
    timeline_file,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    TERMINAL_OUTCOMES,
    EventLog,
    EventValidationError,
    disable_events,
    enable_events,
    events_enabled,
    get_events,
    load_events,
    set_events,
    validate_events,
    write_events,
)
from repro.obs.flightrec import (
    FLIGHTREC_SCHEMA,
    FlightRecValidationError,
    FlightRecorder,
    disable_flightrec,
    enable_flightrec,
    flightrec_enabled,
    get_flightrec,
    install_crash_hooks,
    load_flightrec,
    set_flightrec,
    summarize_flightrec,
    uninstall_crash_hooks,
    validate_flightrec,
)
from repro.obs.live import (
    SLO_POINT_FIELDS,
    TELEMETRY_SCHEMA,
    DeltaWriter,
    MetricsServer,
    PromFileWriter,
    TelemetryBus,
    delta_line,
    disable_telemetry,
    enable_telemetry,
    get_bus,
    set_bus,
    telemetry_enabled,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    prometheus_text,
    reset_metrics,
    set_metrics,
    write_prometheus,
)
from repro.obs.slo import LatencyDigest, SLOEngine
from repro.obs.tracer import (
    TRACE_SCHEMA,
    NullSpan,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace,
    set_tracer,
    tracing_enabled,
    validate_trace,
    write_trace,
)
from repro.obs.summarize import (
    aggregate_by_name,
    child_coverage,
    critical_path,
    format_summary,
    interval_spans,
    span_children,
    summarize_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "set_metrics",
    "prometheus_text",
    "write_prometheus",
    "EVENTS_SCHEMA",
    "TERMINAL_OUTCOMES",
    "EventLog",
    "EventValidationError",
    "disable_events",
    "enable_events",
    "events_enabled",
    "get_events",
    "load_events",
    "set_events",
    "validate_events",
    "write_events",
    "LatencyDigest",
    "SLOEngine",
    "diff_files",
    "diff_journals",
    "format_diff",
    "format_event_summary",
    "format_timeline",
    "incidents",
    "kind_counts",
    "slo_series",
    "summarize_events_file",
    "tier_spans",
    "timeline_file",
    "TELEMETRY_SCHEMA",
    "SLO_POINT_FIELDS",
    "delta_line",
    "TelemetryBus",
    "DeltaWriter",
    "PromFileWriter",
    "MetricsServer",
    "get_bus",
    "set_bus",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry_enabled",
    "FLIGHTREC_SCHEMA",
    "FlightRecValidationError",
    "FlightRecorder",
    "get_flightrec",
    "set_flightrec",
    "enable_flightrec",
    "disable_flightrec",
    "flightrec_enabled",
    "install_crash_hooks",
    "uninstall_crash_hooks",
    "load_flightrec",
    "validate_flightrec",
    "summarize_flightrec",
    "ANOMALY_EVENT",
    "DetectorConfig",
    "EwmaZScoreDetector",
    "CusumDetector",
    "detect_series",
    "SeriesSpec",
    "DEFAULT_SERIES",
    "AnomalyMonitor",
    "DashState",
    "render_dash",
    "DashRenderer",
    "TRACE_SCHEMA",
    "NullSpan",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "load_trace",
    "set_tracer",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
    "aggregate_by_name",
    "child_coverage",
    "critical_path",
    "format_summary",
    "interval_spans",
    "span_children",
    "summarize_file",
]
