"""``repro.obs`` — zero-dependency observability for the control loop.

Three layers, all off (or free) by default so tier-1 runtime and bitwise
experiment outputs are unchanged:

- :mod:`repro.obs.tracer` — nested span tracing across the controller's
  per-interval loop, the QP solver phases, the DES event loop, and the
  load balancer's warning path; exports schema-tagged JSONL
  (``spotweb-trace/1``).  Opt in with ``--trace`` / ``SPOTWEB_TRACE``.
- :mod:`repro.obs.metrics` — an always-on (but feedback-free) registry of
  counters/gauges/histograms with a deterministic snapshot API.
- :mod:`repro.obs.summarize` — the ``python -m repro trace summarize``
  analyzer: top spans, critical path, child coverage, and an ASCII
  per-interval timeline.
- :mod:`repro.obs.events` — the sim-time domain-event journal
  (``spotweb-events/1``): causally linked revocation-warning lifecycles,
  load-balancer and controller decisions, SLO state.  Opt in with
  ``--events`` / ``SPOTWEB_EVENTS``.
- :mod:`repro.obs.slo` — streaming fixed-bin latency digest plus the
  per-interval SLO-compliance / multi-window burn-rate engine feeding
  ``slo.interval`` / ``slo.alert`` events.
- :mod:`repro.obs.eventreport` — the ``python -m repro events`` analyzer:
  incident report, ASCII timeline, and journal diff.
"""

from repro.obs.eventreport import (
    diff_files,
    diff_journals,
    format_diff,
    format_event_summary,
    format_timeline,
    incidents,
    kind_counts,
    slo_series,
    summarize_events_file,
    tier_spans,
    timeline_file,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    TERMINAL_OUTCOMES,
    EventLog,
    EventValidationError,
    disable_events,
    enable_events,
    events_enabled,
    get_events,
    load_events,
    set_events,
    validate_events,
    write_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    prometheus_text,
    reset_metrics,
    set_metrics,
)
from repro.obs.slo import LatencyDigest, SLOEngine
from repro.obs.tracer import (
    TRACE_SCHEMA,
    NullSpan,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace,
    set_tracer,
    tracing_enabled,
    validate_trace,
    write_trace,
)
from repro.obs.summarize import (
    aggregate_by_name,
    child_coverage,
    critical_path,
    format_summary,
    interval_spans,
    span_children,
    summarize_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "set_metrics",
    "prometheus_text",
    "EVENTS_SCHEMA",
    "TERMINAL_OUTCOMES",
    "EventLog",
    "EventValidationError",
    "disable_events",
    "enable_events",
    "events_enabled",
    "get_events",
    "load_events",
    "set_events",
    "validate_events",
    "write_events",
    "LatencyDigest",
    "SLOEngine",
    "diff_files",
    "diff_journals",
    "format_diff",
    "format_event_summary",
    "format_timeline",
    "incidents",
    "kind_counts",
    "slo_series",
    "summarize_events_file",
    "tier_spans",
    "timeline_file",
    "TRACE_SCHEMA",
    "NullSpan",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "load_trace",
    "set_tracer",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
    "aggregate_by_name",
    "child_coverage",
    "critical_path",
    "format_summary",
    "interval_spans",
    "span_children",
    "summarize_file",
]
