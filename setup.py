"""Setup shim: lets ``pip install -e . --no-use-pep517`` work on environments
without the ``wheel`` package (offline machines)."""

from setuptools import setup

setup()
