"""Unit and property tests for portfolio data types."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Allocation, PortfolioPlan, allocation_to_counts


class TestAllocation:
    def test_weights_normalize(self, small_markets):
        a = Allocation(small_markets, [0.5, 0.5, 0.0, 0.0, 0.0, 0.0])
        w = a.weights()
        assert w.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(w[:2], [0.5, 0.5])

    def test_zero_allocation_weights(self, small_markets):
        a = Allocation(small_markets, np.zeros(6))
        assert np.all(a.weights() == 0.0)

    def test_active_markets(self, small_markets):
        a = Allocation(small_markets, [0.7, 0.0, 0.3, 0.0, 0.0, 0.0])
        active = a.active_markets()
        assert [m.name for m in active] == [
            small_markets[0].name,
            small_markets[2].name,
        ]

    def test_total(self, small_markets):
        a = Allocation(small_markets, [0.6, 0.6, 0.0, 0.0, 0.0, 0.0])
        assert a.total == pytest.approx(1.2)

    def test_length_mismatch(self, small_markets):
        with pytest.raises(ValueError):
            Allocation(small_markets, [0.5, 0.5])

    def test_negative_rejected(self, small_markets):
        with pytest.raises(ValueError):
            Allocation(small_markets, [-0.5, 0, 0, 0, 0, 0])

    def test_rounded_capacity_covers_plan(self, small_markets):
        a = Allocation(small_markets, np.full(6, 0.2))
        assert a.capacity_rps(1000.0) >= 0.2 * 6 * 1000.0 - 1e-6


class TestAllocationToCounts:
    def test_ceil_covers_demand(self):
        counts = allocation_to_counts(
            np.array([1.0]), 250.0, np.array([100.0])
        )
        assert counts[0] == 3

    def test_exact_boundary(self):
        counts = allocation_to_counts(np.array([1.0]), 200.0, np.array([100.0]))
        assert counts[0] == 2

    def test_zero_fraction_zero_count(self):
        counts = allocation_to_counts(
            np.array([0.0, 1.0]), 100.0, np.array([10.0, 10.0])
        )
        assert counts[0] == 0 and counts[1] == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            allocation_to_counts(np.ones(2), 10.0, np.ones(3))
        with pytest.raises(ValueError):
            allocation_to_counts(np.ones(1), -1.0, np.ones(1))
        with pytest.raises(ValueError):
            allocation_to_counts(np.ones(1), 1.0, np.zeros(1))


class TestPortfolioPlan:
    def test_first_and_indexing(self, small_markets):
        fr = np.tile(np.linspace(0.1, 0.6, 6), (3, 1))
        plan = PortfolioPlan(small_markets, fr, np.array([100.0, 120.0, 140.0]))
        assert plan.horizon == 3
        np.testing.assert_array_equal(plan.first.fractions, fr[0])
        np.testing.assert_array_equal(plan.allocation(2).fractions, fr[2])

    def test_churn(self, small_markets):
        fr = np.zeros((2, 6))
        fr[1, 0] = 0.5
        plan = PortfolioPlan(small_markets, fr, np.array([1.0, 1.0]))
        assert plan.churn() == pytest.approx(0.5)
        single = PortfolioPlan(small_markets, fr[:1], np.array([1.0]))
        assert single.churn() == 0.0

    def test_validation(self, small_markets):
        with pytest.raises(ValueError):
            PortfolioPlan(small_markets, np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValueError):
            PortfolioPlan(small_markets, np.ones((2, 6)), np.ones(3))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    workload=st.floats(0.0, 1e6),
)
def test_counts_always_cover_planned_capacity(seed, workload):
    """Deployed capacity (counts x r) never falls below the fractional plan."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 10))
    fractions = rng.uniform(0.0, 1.0, size=n)
    capacities = rng.uniform(10.0, 2000.0, size=n)
    counts = allocation_to_counts(fractions, workload, capacities)
    assert np.all(counts >= 0)
    deployed = counts @ capacities
    planned = fractions.sum() * workload
    assert deployed >= planned - 1e-6 * max(planned, 1.0) - 1e-3
