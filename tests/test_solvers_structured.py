"""Tests for the structure-exploiting MPO solve path.

The contract: the block-tridiagonal/banded path is an exact drop-in for the
dense path — same optima (to solver tolerance), same iteration behaviour —
just cheaper linear algebra.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CostModel, MPOOptimizer
from repro.core.mpo import STRUCTURED_MIN_VARS
from repro.solvers import (
    ADMMSolver,
    BlockTridiagFactor,
    MPOStructure,
    QPProblem,
    StructuredADMMSolver,
    solve_qp_reference,
)

TIGHT = dict(eps_abs=1e-10, eps_rel=1e-10)


def random_structure(rng, N, H, churn):
    M = rng.normal(size=(N, N))
    M = M @ M.T / N + 0.1 * np.eye(N)
    return MPOStructure(N, H, risk=2.0 * 5.0 * M, churn=2.0 * churn)


def mpo_bounds(N, H):
    """Always-feasible MPO-shaped bounds: box rows then sum rows."""
    lower = np.concatenate([np.zeros(N * H), np.full(H, 1.0)])
    upper = np.concatenate([np.full(N * H, 1.5), np.full(H, 1.4)])
    return lower, upper


class TestBlockTridiagFactor:
    @pytest.mark.parametrize("N,H", [(1, 1), (1, 5), (3, 1), (4, 3), (8, 6)])
    def test_matches_dense_solve(self, N, H):
        rng = np.random.default_rng(N * 100 + H)
        blocks = np.empty((H, N, N))
        for tau in range(H):
            Q = rng.normal(size=(N, N))
            blocks[tau] = Q @ Q.T + N * np.eye(N)
        off = 0.3 * rng.normal(size=(max(H - 1, 0), N))
        K = np.zeros((N * H, N * H))
        for tau in range(H):
            blk = slice(tau * N, (tau + 1) * N)
            K[blk, blk] = blocks[tau]
            if tau > 0:
                prev = slice((tau - 1) * N, tau * N)
                K[blk, prev] = np.diag(off[tau - 1])
                K[prev, blk] = np.diag(off[tau - 1])
        rhs = rng.normal(size=N * H)
        x = BlockTridiagFactor(blocks, off).solve(rhs)
        np.testing.assert_allclose(K @ x, rhs, atol=1e-8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BlockTridiagFactor(np.eye(3), np.zeros((0, 3)))
        with pytest.raises(ValueError):
            BlockTridiagFactor(np.ones((2, 3, 4)), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            BlockTridiagFactor(
                np.tile(np.eye(3), (2, 1, 1)), np.zeros((1, 2))
            )


class TestMPOStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            MPOStructure(0, 2, risk=np.eye(1), churn=0.0)
        with pytest.raises(ValueError):
            MPOStructure(2, 2, risk=np.eye(3), churn=0.0)
        with pytest.raises(ValueError):
            MPOStructure(2, 2, risk=np.array([[1.0, 2.0], [0.0, 1.0]]), churn=0.0)
        with pytest.raises(ValueError):
            MPOStructure(2, 2, risk=np.eye(2), churn=-1.0)

    def test_dense_equivalents_shape_and_symmetry(self):
        rng = np.random.default_rng(0)
        s = random_structure(rng, 4, 3, churn=0.5)
        P = s.dense_hessian()
        assert P.shape == (12, 12)
        np.testing.assert_allclose(P, P.T)
        A = s.dense_constraints()
        assert A.shape == (12 + 3, 12)
        # One box row per variable plus one sum row per period.
        np.testing.assert_allclose(A[:12], np.eye(12))
        assert A[12:].sum() == 12


class TestStructuredMatchesDenseAndReference:
    """The ISSUE's property: objective within 1e-6, allocation within 1e-5."""

    @settings(max_examples=20, deadline=None)
    @given(
        N=st.integers(min_value=1, max_value=8),
        H=st.integers(min_value=1, max_value=6),
        churn=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_three_way_agreement(self, N, H, churn, seed):
        rng = np.random.default_rng(seed)
        structure = random_structure(rng, N, H, churn)
        q = rng.normal(size=N * H)
        lower, upper = mpo_bounds(N, H)

        res_s = StructuredADMMSolver(structure, **TIGHT).solve(q, lower, upper)
        res_d = ADMMSolver(
            structure.dense_hessian(), structure.dense_constraints(), **TIGHT
        ).solve(q, lower, upper)
        ref = solve_qp_reference(
            QPProblem(
                structure.dense_hessian(),
                q,
                structure.dense_constraints(),
                lower,
                upper,
            )
        )
        assert res_s.status.ok and res_d.status.ok
        assert abs(res_s.objective - res_d.objective) < 1e-6
        np.testing.assert_allclose(res_s.x, res_d.x, atol=1e-5)
        # trust-constr's interior point is only ~1e-4 accurate when bounds
        # are strongly active, so the cross-check is asymmetric: the ADMM
        # optimum must be at least as good (it solves the same convex
        # program) and must sit within the reference's own accuracy.
        scale = max(1.0, abs(ref.objective))
        assert res_s.objective <= ref.objective + 1e-6 * scale
        assert res_s.objective >= ref.objective - 1e-3 * scale
        np.testing.assert_allclose(res_s.x, ref.x, atol=1e-3)

    def test_agreement_without_scaling(self):
        """The unscaled paths must also coincide (isolates Ruiz parity)."""
        rng = np.random.default_rng(5)
        structure = random_structure(rng, 5, 4, churn=0.4)
        q = rng.normal(size=20)
        lower, upper = mpo_bounds(5, 4)
        res_s = StructuredADMMSolver(structure, scale=False, **TIGHT).solve(
            q, lower, upper
        )
        res_d = ADMMSolver(
            structure.dense_hessian(),
            structure.dense_constraints(),
            scale=False,
            **TIGHT,
        ).solve(q, lower, upper)
        assert abs(res_s.objective - res_d.objective) < 1e-8
        np.testing.assert_allclose(res_s.x, res_d.x, atol=1e-7)

    def test_rho_retune_path_still_exact(self):
        """A badly scaled objective forces adaptive-rho refactorization."""
        rng = np.random.default_rng(11)
        structure = random_structure(rng, 6, 4, churn=0.2)
        q = 1e4 * rng.normal(size=24)
        lower, upper = mpo_bounds(6, 4)
        solver = StructuredADMMSolver(structure, scale=False, **TIGHT)
        res = solver.solve(q, lower, upper)
        assert solver._rho != pytest.approx(0.1)  # retune actually fired
        ref = solve_qp_reference(
            QPProblem(
                structure.dense_hessian(),
                q,
                structure.dense_constraints(),
                lower,
                upper,
            )
        )
        assert abs(res.objective - ref.objective) < 1e-4 * abs(ref.objective)
        np.testing.assert_allclose(res.x, ref.x, atol=1e-5)


class TestOptimizerBackends:
    def inputs(self, dataset, H, target=1000.0):
        return (
            np.full(H, target),
            np.tile(dataset.prices[0], (H, 1)),
            np.tile(dataset.failure_probs[0], (H, 1)),
            dataset.event_covariance(),
        )

    def test_structured_matches_admm_backend(self, small_markets, small_dataset):
        H = 3
        kwargs = dict(horizon=H, cost_model=CostModel(churn_penalty=0.4))
        args = self.inputs(small_dataset, H)
        res_s = MPOOptimizer(
            small_markets, backend="structured", **kwargs
        ).optimize(*args)
        res_d = MPOOptimizer(small_markets, backend="admm", **kwargs).optimize(
            *args
        )
        assert res_s.solver.objective == pytest.approx(
            res_d.solver.objective, rel=1e-5, abs=1e-7
        )
        np.testing.assert_allclose(
            res_s.plan.fractions, res_d.plan.fractions, atol=1e-4
        )

    def test_auto_backend_resolution(self, small_markets, catalog):
        small = MPOOptimizer(small_markets, horizon=2)  # 12 vars
        assert small.resolved_backend == "admm"
        H = -(-STRUCTURED_MIN_VARS // len(small_markets))
        big = MPOOptimizer(small_markets, horizon=H)
        assert big.resolved_backend == "structured"
        forced = MPOOptimizer(small_markets, horizon=2, backend="structured")
        assert forced.resolved_backend == "structured"

    def test_warm_start_matches_cold(self, small_markets, small_dataset):
        H = 3
        kwargs = dict(
            horizon=H,
            cost_model=CostModel(churn_penalty=0.3),
            backend="structured",
        )
        warm_opt = MPOOptimizer(small_markets, **kwargs)
        warm_opt.optimize(*self.inputs(small_dataset, H, target=900.0))
        warm = warm_opt.optimize(*self.inputs(small_dataset, H, target=1200.0))

        cold = MPOOptimizer(small_markets, **kwargs).optimize(
            *self.inputs(small_dataset, H, target=1200.0)
        )
        assert warm.solver.objective == pytest.approx(
            cold.solver.objective, rel=1e-5, abs=1e-7
        )
        np.testing.assert_allclose(
            warm.plan.fractions, cold.plan.fractions, atol=1e-4
        )

    def test_horizon_shift_warm_start_vector(self, small_markets, small_dataset):
        H = 3
        opt = MPOOptimizer(small_markets, horizon=H, backend="structured")
        res = opt.optimize(*self.inputs(small_dataset, H))
        plan = res.plan.fractions
        seed_vec = opt._warm_start_vector(np.zeros(len(small_markets)))
        expected = np.concatenate([plan[1:].ravel(), plan[-1]])
        np.testing.assert_allclose(seed_vec, expected)
