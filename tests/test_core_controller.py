"""Unit tests for the SpotWeb controller loop."""

import numpy as np
import pytest

from repro.core import AllocationConstraints, CostModel, SpotWebController
from repro.core.policy import SpotWebPolicy
from repro.predictors import (
    ReactiveFailurePredictor,
    ReactivePricePredictor,
    SplinePredictor,
)


def make_controller(markets, **kwargs):
    n = len(markets)
    defaults = dict(horizon=3)
    defaults.update(kwargs)
    return SpotWebController(
        markets,
        SplinePredictor(24),
        ReactivePricePredictor(n),
        ReactiveFailurePredictor(n),
        **defaults,
    )


class TestStep:
    def test_decision_covers_target(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets)
        d = ctrl.step(
            800.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        assert d.target_rps >= 800.0 * 0.9
        assert d.provisioned_rps >= d.target_rps * ctrl.optimizer.constraints.a_total_min - 1e-6
        assert d.weights.sum() == pytest.approx(1.0, abs=1e-6)

    def test_counts_match_allocation(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets)
        d = ctrl.step(500.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        np.testing.assert_array_equal(
            d.counts, d.allocation.counts(d.target_rps)
        )

    def test_current_fractions_updated(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets)
        assert np.all(ctrl.current_fractions == 0.0)
        d = ctrl.step(500.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        np.testing.assert_array_equal(
            ctrl.current_fractions, d.allocation.fractions
        )

    def test_shortfall_learned_across_steps(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets)
        ctrl.step(100.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        # Demand doubles: the previous target under-predicted.
        ctrl.step(
            1000.0, small_dataset.prices[1], small_dataset.failure_probs[1]
        )
        assert ctrl.shortfall.expected_shortfall_rps > 0.0

    def test_input_validation(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets)
        with pytest.raises(ValueError):
            ctrl.step(-1.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        with pytest.raises(ValueError):
            ctrl.step(1.0, small_dataset.prices[0][:2], small_dataset.failure_probs[0])

    def test_constructor_validation(self, small_markets):
        with pytest.raises(ValueError):
            make_controller(small_markets, covariance_refresh=0)


class TestCovarianceRefresh:
    def test_refresh_cadence(self, small_markets, small_dataset):
        ctrl = make_controller(small_markets, covariance_refresh=4)
        for t in range(3):
            ctrl.step(
                500.0, small_dataset.prices[t], small_dataset.failure_probs[t]
            )
        cov_before = ctrl._covariance
        ctrl.step(500.0, small_dataset.prices[3], small_dataset.failure_probs[3])
        # Step counter hit the refresh boundary -> recomputed matrix object.
        ctrl.step(500.0, small_dataset.prices[4], small_dataset.failure_probs[4])
        assert ctrl._covariance is not cov_before


class TestPolicyAdapter:
    def test_policy_returns_counts(self, small_markets, small_dataset):
        policy = SpotWebPolicy(make_controller(small_markets))
        counts = policy.decide(
            0, 700.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        assert counts.shape == (len(small_markets),)
        assert counts.dtype.kind in "iu"
        assert policy.last_decision is not None


class TestLongRun:
    def test_tracks_diurnal_workload(self, small_markets, small_dataset, wiki_week):
        """Capacity follows demand over a week without violations at the
        fluid level (padding >= demand most of the time)."""
        ctrl = make_controller(
            small_markets, cost_model=CostModel(churn_penalty=0.2)
        )
        covered = 0
        for t in range(len(wiki_week)):
            d = ctrl.step(
                wiki_week.rates[t],
                small_dataset.prices[t],
                small_dataset.failure_probs[t],
            )
            nxt = wiki_week.rates[min(t + 1, len(wiki_week) - 1)]
            covered += d.provisioned_rps >= nxt
        assert covered / len(wiki_week) > 0.9
