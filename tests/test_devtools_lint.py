"""Unit tests for every spotlint rule: one positive and one negative each,
plus suppression comments, module-name scoping, and the CLI contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ENGINE_RULES,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from repro.devtools.rules import RULES, module_name_for

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


# ---------------------------------------------------------------- rule table
RULE_CASES = [
    ("SW001", "sw001_bad.py", 2, "sw001_good.py"),
    ("SW002", "repro/simulator/sw002_bad.py", 2, "repro/simulator/sw002_good.py"),
    ("SW003", "sw003_bad.py", 3, "sw003_good.py"),
    ("SW004", "sw004_bad.py", 2, "sw004_good.py"),
    ("SW005", "sw005_bad.py", 2, "sw005_good.py"),
    ("SW006", "sw006_bad.py", 2, "sw006_good.py"),
    ("SW007", "sw007_bad.py", 2, "sw007_good.py"),
    ("SW008", "sw008_bad.py", 1, "sw008_good.py"),
    ("SW011", "sw011_bad.py", 3, "sw011_good.py"),
    ("SW012", "sw012_bad.py", 3, "sw012_good.py"),
]


def test_every_registered_rule_has_a_case():
    assert {case[0] for case in RULE_CASES} == set(RULES)


@pytest.mark.parametrize("rule,bad,count,good", RULE_CASES, ids=[c[0] for c in RULE_CASES])
def test_rule_positive(rule, bad, count, good):
    findings = lint_file(FIXTURES / bad, select={rule})
    assert len(findings) == count
    assert all(f.rule == rule for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule,bad,count,good", RULE_CASES, ids=[c[0] for c in RULE_CASES])
def test_rule_negative(rule, bad, count, good):
    assert lint_file(FIXTURES / good, select={rule}) == []


# ------------------------------------------------------------ rule specifics
def test_sw002_out_of_scope_module_is_clean():
    # Same wall-clock calls, but the module does not resolve under
    # repro.simulator / repro.core — the DES-ownership rule must not fire.
    assert lint_file(FIXTURES / "sw002_scope.py", select={"SW002"}) == []


def test_sw007_missing_all_is_one_finding():
    findings = lint_file(FIXTURES / "sw007_missing.py", select={"SW007"})
    assert len(findings) == 1
    assert "no `__all__`" in findings[0].message


def test_sw007_entry_scripts_exempt(tmp_path):
    script = tmp_path / "__main__.py"
    script.write_text("import sys\nsys.exit(0)\n")
    assert lint_file(script, select={"SW007"}) == []


def test_sw007_package_init_may_export_submodules(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('__all__ = ["mod"]\n')
    (pkg / "mod.py").write_text("__all__: list[str] = []\n")
    assert lint_file(pkg / "__init__.py", select={"SW007"}) == []


def test_sw007_pep562_dynamic_exports_allowed(tmp_path):
    mod = tmp_path / "lazy.py"
    mod.write_text(
        '__all__ = ["lazy_thing"]\n\n\n'
        "def __getattr__(name):\n"
        "    raise AttributeError(name)\n"
    )
    assert lint_file(mod, select={"SW007"}) == []


def test_module_name_derivation():
    assert module_name_for(FIXTURES / "repro" / "simulator" / "sw002_bad.py") == (
        "repro.simulator.sw002_bad"
    )
    assert module_name_for(FIXTURES / "sw001_bad.py") == "sw001_bad"


def test_syntax_error_becomes_sw000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = lint_file(bad)
    assert [f.rule for f in findings] == ["SW000"]


def test_sw011_points_at_the_dtype_value(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import numpy as np\n"
        "__all__ = []\n"
        "x = np.zeros(3, dtype=int)\n"
    )
    findings = lint_file(mod, select={"SW011"})
    assert len(findings) == 1
    assert findings[0].line == 3
    assert "np.int64" in findings[0].message


def test_sw011_ignores_non_numpy_calls(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "__all__ = []\n\n\n"
        "def make(factory):\n"
        "    return factory(3, dtype=int)\n"
    )
    assert lint_file(mod, select={"SW011"}) == []


def test_sw011_is_suppressible(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import numpy as np\n"
        "__all__ = []\n"
        "x = np.zeros(3, dtype=int)  # spotlint: disable=SW011\n"
    )
    assert lint_file(mod, select={"SW011"}) == []


def test_sw012_flags_attribute_and_walrus_targets(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import time\n"
        "__all__ = []\n\n\n"
        "class T:\n"
        "    def mark(self):\n"
        "        self.epoch = time.perf_counter()\n"
        "        if (now := time.monotonic()) > 0:\n"
        "            return now\n"
    )
    findings = lint_file(mod, select={"SW012"})
    assert [(f.line, f.rule) for f in findings] == [(7, "SW012"), (8, "SW012")]
    assert "`epoch`" in findings[0].message


def test_sw012_accepts_suffixed_attribute_targets(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "import time\n"
        "__all__ = []\n\n\n"
        "class T:\n"
        "    def mark(self):\n"
        "        self.epoch_s = time.perf_counter()\n"
        "        self.tick_ns: int = time.monotonic_ns()\n"
    )
    assert lint_file(mod, select={"SW012"}) == []


def test_sw012_ignores_unresolved_and_shadowed_time(tmp_path):
    # A local callable named `time` must not resolve to the stdlib module.
    mod = tmp_path / "mod.py"
    mod.write_text(
        "__all__ = []\n\n\n"
        "def run(time):\n"
        "    t0 = time.time()\n"
        "    return t0\n"
    )
    assert lint_file(mod, select={"SW012"}) == []


# ------------------------------------------------------------- suppressions
def test_line_suppression_silences_the_rule():
    assert lint_file(FIXTURES / "suppress_line.py", select={"SW006"}) == []


def test_file_suppression_silences_everywhere():
    assert lint_file(FIXTURES / "suppress_file.py", select={"SW006"}) == []


def test_wrong_rule_suppression_does_not_silence():
    findings = lint_file(FIXTURES / "suppress_wrong.py", select={"SW006"})
    assert len(findings) == 1


def test_disable_all_silences_everything_on_line():
    assert lint_file(FIXTURES / "suppress_all.py", select={"SW006"}) == []


def test_lint_source_respects_ignore():
    src = (FIXTURES / "sw006_bad.py").read_text()
    findings = lint_source(src, FIXTURES / "sw006_bad.py", ignore={"SW006"})
    assert all(f.rule != "SW006" for f in findings)


# --------------------------------------------------------------------- CLI
def test_cli_exits_nonzero_with_findings(capsys):
    code = main([str(FIXTURES / "sw006_bad.py"), "--select", "SW006"])
    out = capsys.readouterr().out
    assert code == 1
    assert "SW006" in out
    # file:line:col format, clickable in editors.
    assert "sw006_bad.py:" in out


def test_cli_exits_zero_on_clean_input(capsys):
    code = main([str(FIXTURES / "sw006_good.py"), "--select", "SW006"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_rejects_unknown_rule_ids(capsys):
    code = main([str(FIXTURES / "sw006_bad.py"), "--select", "SW999"])
    assert code == 2
    assert "SW999" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_lint_paths_walks_directories():
    findings = lint_paths([FIXTURES], select={"SW006"})
    files = {Path(f.path).name for f in findings}
    assert "sw006_bad.py" in files
    assert "suppress_wrong.py" in files
    assert "suppress_file.py" not in files


def test_cli_format_json(capsys):
    code = main(
        [str(FIXTURES / "sw006_bad.py"), "--select", "SW006", "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "spotweb-findings/1"
    assert payload["tool"] == "spotlint"
    assert payload["count"] == len(payload["findings"]) > 0


def test_cli_list_rules_includes_engine_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ENGINE_RULES:
        assert rule_id in out


# --------------------------------------------------- file-stream discipline
def test_iter_python_files_dedups_overlapping_args():
    once = list(iter_python_files([FIXTURES]))
    twice = list(iter_python_files([FIXTURES, FIXTURES]))
    assert twice == once
    single = FIXTURES / "sw006_bad.py"
    assert list(iter_python_files([single, single])) == [single]


def test_lint_paths_order_is_arg_order_independent():
    a = FIXTURES / "sw006_bad.py"
    b = FIXTURES / "sw005_bad.py"
    forward = lint_paths([a, b])
    backward = lint_paths([b, a])
    assert [f.format() for f in forward] == [f.format() for f in backward]
    assert forward == sorted(
        forward, key=lambda f: (f.path, f.line, f.col, f.rule)
    )


# --------------------------------------------- suppression edge cases + SW009
def test_malformed_empty_disable_list_is_ignored(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=\n")
    findings = lint_file(mod, select={"SW008", "SW009"})
    assert [f.rule for f in findings] == ["SW008"]


def test_trailing_comma_in_disable_list_still_works(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=SW008,\n")
    assert lint_file(mod, select={"SW008", "SW009"}) == []


def test_disable_file_on_last_line_applies(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True\n# spotlint: disable-file=SW008")
    assert lint_file(mod, select={"SW008", "SW009"}) == []


def test_unknown_rule_in_suppression_warns_sw009(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=SW404\n")
    findings = lint_file(mod, select={"SW008", "SW009"})
    assert {f.rule for f in findings} == {"SW008", "SW009"}
    sw009 = next(f for f in findings if f.rule == "SW009")
    assert "SW404" in sw009.message


def test_sw009_is_itself_suppressible(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=SW404,SW008,SW009\n")
    assert lint_file(mod, select={"SW008", "SW009"}) == []


def test_disable_all_does_not_trigger_sw009(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=all\n")
    assert lint_file(mod, select={"SW008", "SW009"}) == []


def test_sw009_not_reported_when_unselected(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("assert True  # spotlint: disable=SW404\n")
    assert [f.rule for f in lint_file(mod, select={"SW008"})] == ["SW008"]
    findings = lint_file(mod, select={"SW008", "SW009"}, ignore={"SW009"})
    assert [f.rule for f in findings] == ["SW008"]
