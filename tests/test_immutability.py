"""Regression tests: "frozen" snapshot/result dataclasses are genuinely
immutable — attribute assignment AND element-level array mutation raise."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import MPOOptimizer
from repro.monitoring import MonitoringHub, MonitoringSnapshot
from repro.solvers import SolverResult, SolverStatus


def make_snapshot():
    return MonitoringSnapshot(
        timestamp=0.0,
        prices=np.array([1.0, 2.0]),
        per_request_prices=np.array([0.01, 0.005]),
        failure_probs=np.array([0.05, 0.1]),
        observed_rps=100.0,
    )


def test_snapshot_attribute_assignment_raises():
    snap = make_snapshot()
    with pytest.raises(dataclasses.FrozenInstanceError):
        snap.observed_rps = 0.0


def test_snapshot_array_mutation_raises():
    snap = make_snapshot()
    for field in ("prices", "per_request_prices", "failure_probs"):
        with pytest.raises(ValueError):
            getattr(snap, field)[0] = 42.0


def test_hub_snapshots_are_readonly(catalog):
    markets = catalog.spot_markets(3)
    hub = MonitoringHub(markets)
    hub.ingest_prices(np.array([0.1, 0.2, 0.3]))
    hub.ingest_failure_probs(np.array([0.01, 0.02, 0.03]))
    snap = hub.snapshot(0.0)
    with pytest.raises(ValueError):
        snap.prices[0] = 1e9
    # The cleaned feed is the audited $/hour-per-req/s conversion.
    caps = np.array([m.capacity_rps for m in markets])
    np.testing.assert_allclose(snap.per_request_prices, snap.prices / caps)


def test_solver_result_is_frozen():
    result = SolverResult(
        x=np.array([1.0, 2.0]),
        y=np.array([0.0]),
        objective=1.0,
        status=SolverStatus.OPTIMAL,
        iterations=3,
    )
    with pytest.raises(dataclasses.FrozenInstanceError):
        result.objective = 0.0
    with pytest.raises(ValueError):
        result.x[0] = 7.0
    with pytest.raises(ValueError):
        result.y[0] = 7.0


def test_mpo_result_is_frozen(small_markets):
    n = len(small_markets)
    opt = MPOOptimizer(small_markets, horizon=2)
    res = opt.optimize(
        np.full(2, 500.0),
        np.full((2, n), 0.1),
        np.full((2, n), 0.05),
        np.eye(n) * 1e-4,
    )
    with pytest.raises(dataclasses.FrozenInstanceError):
        res.sla_cost = 0.0
    with pytest.raises(ValueError):
        res.solver.x[0] = 1.0
