"""Positive and violating cases for every invariant in the packs."""

import pytest

from repro.scenarios import (
    InvariantPack,
    Violation,
    compare_engines,
    evaluate_pack,
    scenario_outcome,
    unresolved_warnings,
    weighted_compliance,
)


def _rec(kind, *, rid=None, cause=None, **attrs):
    return {
        "seq": 0,
        "t": 0.0,
        "interval": None,
        "kind": kind,
        "id": rid,
        "cause": cause,
        "attrs": attrs,
    }


def _journal(
    *,
    compliance=0.99,
    cost=1.0,
    stranded=0,
    ledger=0.0,
    warnings=2,
    resolve=True,
    unserved=0.0,
):
    records = []
    for i in range(warnings):
        records.append(_rec("warning.issued", rid=f"w{i}"))
        if resolve:
            records.append(
                _rec("warning.resolved", cause=f"w{i}", outcome="migrated")
            )
    records.append(
        _rec("slo.interval", requests=1000.0, compliance=compliance)
    )
    records.append(
        _rec(
            "scenario.outcome",
            cost=cost,
            stranded=stranded,
            ledger_error=ledger,
            unserved_fraction=unserved,
        )
    )
    return records


PACK = InvariantPack(
    slo_floor=0.9,
    cost_ceiling=10.0,
    max_stranded=0,
    min_revocations=1,
    max_unserved_fraction=0.1,
)


def _invariants(violations):
    return sorted(v.invariant for v in violations)


class TestEvaluatePack:
    def test_healthy_journal_passes(self):
        assert evaluate_pack("s", _journal(), PACK) == []

    def test_slo_floor_violation(self):
        bad = evaluate_pack("s", _journal(compliance=0.5), PACK)
        assert _invariants(bad) == ["slo_floor"]
        assert bad[0].observed == pytest.approx(0.5)
        assert bad[0].bound == pytest.approx(0.9)

    def test_cost_ceiling_violation(self):
        bad = evaluate_pack("s", _journal(cost=11.0), PACK)
        assert _invariants(bad) == ["cost_ceiling"]

    def test_stranded_violation(self):
        bad = evaluate_pack("s", _journal(stranded=3), PACK)
        assert _invariants(bad) == ["stranded_sessions"]

    def test_unresolved_warning_violation(self):
        bad = evaluate_pack("s", _journal(resolve=False), PACK)
        assert _invariants(bad) == ["warning_resolution"]
        assert "w0" in bad[0].message

    def test_conservation_violation(self):
        bad = evaluate_pack("s", _journal(ledger=0.5), PACK)
        assert _invariants(bad) == ["conservation"]

    def test_stress_witness_revocations(self):
        bad = evaluate_pack("s", _journal(warnings=0), PACK)
        assert _invariants(bad) == ["stress_witness"]

    def test_unserved_ceiling_violation(self):
        bad = evaluate_pack("s", _journal(unserved=0.25), PACK)
        assert _invariants(bad) == ["unserved_ceiling"]

    def test_unserved_floor_witness(self):
        pack = InvariantPack(
            max_stranded=None,
            conservation_tol=None,
            min_unserved_fraction=0.01,
        )
        ok = evaluate_pack("s", _journal(unserved=0.05), pack)
        assert ok == []
        bad = evaluate_pack("s", _journal(unserved=0.0), pack)
        assert _invariants(bad) == ["stress_witness"]

    def test_missing_outcome_is_violation(self):
        records = [_rec("slo.interval", requests=10.0, compliance=1.0)]
        bad = evaluate_pack("s", records, PACK)
        assert "outcome" in _invariants(bad)

    def test_disabled_bounds_do_not_fire(self):
        pack = InvariantPack(
            slo_floor=None,
            cost_ceiling=None,
            max_stranded=None,
            require_resolution=False,
            conservation_tol=None,
        )
        journal = _journal(
            compliance=0.0, cost=1e9, stranded=9, ledger=1.0, resolve=False
        )
        assert evaluate_pack("s", journal, pack) == []

    def test_multiple_violations_all_reported(self):
        bad = evaluate_pack(
            "s", _journal(compliance=0.1, cost=99.0, stranded=2), PACK
        )
        assert _invariants(bad) == [
            "cost_ceiling", "slo_floor", "stranded_sessions",
        ]

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            InvariantPack(slo_floor=1.5)
        with pytest.raises(ValueError):
            InvariantPack(cost_ceiling=0.0)
        with pytest.raises(ValueError):
            InvariantPack(min_revocations=-1)
        with pytest.raises(ValueError):
            InvariantPack(min_anomalies=-1)
        with pytest.raises(ValueError):
            InvariantPack(min_anomalies=2, max_anomalies=1)


class TestDetectionInvariants:
    def _with_anomalies(self, n):
        journal = _journal()
        for i in range(n):
            journal.insert(
                -1,
                _rec(
                    "telemetry.anomaly",
                    series="slo.p99",
                    detector="cusum",
                    value=4.0,
                    score=6.0 + i,
                ),
            )
        return journal

    def test_detection_witness_requires_anomaly(self):
        pack = InvariantPack(min_revocations=0, min_anomalies=1)
        bad = evaluate_pack("s", self._with_anomalies(0), pack)
        assert _invariants(bad) == ["detection_witness"]
        assert bad[0].observed == 0.0 and bad[0].bound == 1.0
        assert evaluate_pack("s", self._with_anomalies(1), pack) == []

    def test_detection_quiet_bounds_false_alarms(self):
        pack = InvariantPack(min_revocations=0, max_anomalies=2)
        assert evaluate_pack("s", self._with_anomalies(2), pack) == []
        bad = evaluate_pack("s", self._with_anomalies(3), pack)
        assert _invariants(bad) == ["detection_quiet"]
        assert "crying wolf" in bad[0].message

    def test_unbounded_pack_ignores_anomaly_count(self):
        # Default pack: neither witness nor quiet bound set.
        assert evaluate_pack(
            "s", self._with_anomalies(50), InvariantPack(min_revocations=0)
        ) == []


class TestHelpers:
    def test_weighted_compliance_request_weighted(self):
        records = [
            _rec("slo.interval", requests=100.0, compliance=1.0),
            _rec("slo.interval", requests=300.0, compliance=0.5),
        ]
        assert weighted_compliance(records) == pytest.approx(0.625)

    def test_weighted_compliance_none_without_series(self):
        assert weighted_compliance([_rec("scenario.outcome")]) is None

    def test_empty_intervals_cannot_mask(self):
        records = [_rec("slo.interval", requests=0.0, compliance=0.0)]
        assert weighted_compliance(records) == pytest.approx(1.0)

    def test_scenario_outcome_takes_last(self):
        records = [
            _rec("scenario.outcome", cost=1.0),
            _rec("scenario.outcome", cost=2.0),
        ]
        assert scenario_outcome(records)["cost"] == pytest.approx(2.0)

    def test_unresolved_warnings(self):
        records = [
            _rec("warning.issued", rid="a"),
            _rec("warning.issued", rid="b"),
            _rec("warning.resolved", cause="a", outcome="migrated"),
        ]
        assert unresolved_warnings(records) == ["b"]


class TestCompareEngines:
    def test_within_tolerance(self):
        assert compare_engines(
            "s", {"request": 0.98, "hybrid": 0.96}, tolerance=0.05
        ) == []

    def test_spread_violation(self):
        bad = compare_engines(
            "s", {"request": 0.99, "hybrid": 0.80}, tolerance=0.05
        )
        assert len(bad) == 1
        assert bad[0].invariant == "engine_agreement"
        assert bad[0].observed == pytest.approx(0.19)

    def test_single_engine_never_fires(self):
        assert compare_engines("s", {"request": 0.1}, tolerance=0.05) == []

    def test_violation_str_names_invariant(self):
        v = Violation("scn", "slo_floor", "too low")
        assert str(v) == "scn: [slo_floor] too low"
