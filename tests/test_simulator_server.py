"""Unit tests for the multi-worker FIFO server model."""

import numpy as np
import pytest

from repro.simulator import LatencyRecorder, ServerPhase, SimServer, Simulator


def make_server(sim=None, recorder=None, **kwargs):
    sim = sim or Simulator()
    recorder = recorder or LatencyRecorder()
    defaults = dict(
        server_id=0,
        capacity_rps=100.0,
        service_time=0.1,
        boot_seconds=0.0,
        warmup_seconds=0.0,
        cold_multiplier=1.0,
        seed=1,
    )
    defaults.update(kwargs)
    return sim, recorder, SimServer(sim, recorder, **defaults)


class TestLifecycle:
    def test_boots_then_accepts(self):
        sim = Simulator()
        rec = LatencyRecorder()
        server = SimServer(
            sim, rec, server_id=0, capacity_rps=100.0, boot_seconds=10.0
        )
        assert server.phase is ServerPhase.BOOTING
        assert not server.submit()
        sim.run_until(10.0)
        assert server.phase is ServerPhase.RUNNING
        assert server.submit()

    def test_drain_blocks_new_but_allows_migrated(self):
        sim, rec, server = make_server()
        server.drain()
        assert server.phase is ServerPhase.DRAINING
        assert not server.submit()
        assert server.submit(migrated=True)

    def test_kill_fails_in_flight(self):
        sim, rec, server = make_server()
        for _ in range(5):
            assert server.submit()
        lost = server.kill()
        assert lost == 5
        assert rec.failed == 5
        assert server.phase is ServerPhase.DEAD
        assert not server.submit()
        # Pending completion events must not record served latencies.
        sim.run_until(10.0)
        assert rec.served == 0

    def test_workers_sized_from_capacity(self):
        _, _, server = make_server(capacity_rps=200.0, service_time=0.05)
        assert server.workers == 10


class TestQueueing:
    def test_latency_grows_with_load(self):
        sim, rec, server = make_server(capacity_rps=50.0)
        # Burst of 200 requests at t=0 into a 5-worker pool: queueing delay.
        for _ in range(200):
            server.submit()
        sim.run()
        assert rec.served == 200
        assert rec.percentile(90) > rec.percentile(10)
        assert rec.mean() > 0.1

    def test_admission_bound(self):
        sim, rec, server = make_server(
            capacity_rps=10.0, queue_limit_seconds=0.5
        )
        accepted = sum(server.submit() for _ in range(500))
        assert accepted < 500
        assert server.expected_wait() <= 0.6 + 0.5

    def test_stable_load_low_latency(self):
        sim, rec, server = make_server(capacity_rps=100.0, seed=3)
        rng = np.random.default_rng(0)
        t = 0.0
        # 50 rps Poisson arrivals for 20 s at 50% utilization.
        while t < 20.0:
            t += rng.exponential(1 / 50.0)
            sim.schedule_at(t, server.submit)
        sim.run()
        assert rec.served > 900
        assert rec.percentile(50) < 0.3


class TestWarmup:
    def test_cold_cache_inflates_service(self):
        sim1, rec1, cold = make_server(
            warmup_seconds=60.0, cold_multiplier=3.0, seed=5
        )
        for _ in range(50):
            cold.submit()
        sim1.run()
        sim2, rec2, warm = make_server(
            warmup_seconds=0.0, cold_multiplier=1.0, seed=5
        )
        for _ in range(50):
            warm.submit()
        sim2.run()
        assert rec1.mean() > rec2.mean()

    def test_warmup_decays(self):
        sim, rec, server = make_server(
            warmup_seconds=10.0, cold_multiplier=4.0, seed=6
        )
        # Probe the multiplier indirectly through the mean sampled service.
        samples_cold = [server._current_service_time() for _ in range(2000)]
        sim.run_until(20.0)  # past warmup
        samples_warm = [server._current_service_time() for _ in range(2000)]
        assert np.mean(samples_cold) > 2.5 * np.mean(samples_warm)


class TestValidation:
    def test_bad_params(self):
        sim = Simulator()
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            SimServer(sim, rec, server_id=0, capacity_rps=0.0)
        with pytest.raises(ValueError):
            SimServer(
                sim, rec, server_id=0, capacity_rps=10.0, cold_multiplier=0.5
            )

    def test_utilization_range(self):
        sim, rec, server = make_server()
        assert server.utilization() == 0.0
        for _ in range(50):
            server.submit()
        assert 0.0 <= server.utilization() <= 1.0
