"""Unit tests for the threshold autoscaler."""

import pytest

from repro.baselines import ThresholdAutoscaler


class TestThresholdAutoscaler:
    def test_first_observation_sets_target(self):
        asc = ThresholdAutoscaler(
            desired_utilization=0.5, scale_in_threshold=0.3
        )
        assert asc(0, 100.0) == pytest.approx(200.0)

    def test_holds_inside_band(self):
        asc = ThresholdAutoscaler(
            desired_utilization=0.7,
            scale_out_threshold=0.9,
            scale_in_threshold=0.4,
        )
        asc(0, 70.0)  # target = 100
        target = asc(1, 75.0)  # util 0.75: inside band
        assert target == pytest.approx(100.0)

    def test_scales_out_immediately(self):
        asc = ThresholdAutoscaler(desired_utilization=0.7)
        asc(0, 70.0)  # target 100
        target = asc(1, 95.0)  # util 0.95 > 0.85
        assert target == pytest.approx(95.0 / 0.7)

    def test_scale_in_waits_for_cooldown(self):
        asc = ThresholdAutoscaler(
            desired_utilization=0.7, scale_in_cooldown=2
        )
        asc(0, 70.0)  # target 100, change at t=0
        t1 = asc(1, 20.0)  # util 0.2 < 0.5, but cooldown not elapsed
        t2 = asc(2, 20.0)
        t3 = asc(3, 20.0)  # cooldown of 2 elapsed -> shrink
        assert t1 == pytest.approx(100.0)
        assert t2 == pytest.approx(100.0)
        assert t3 == pytest.approx(20.0 / 0.7)

    def test_zero_demand(self):
        asc = ThresholdAutoscaler()
        assert asc(0, 0.0) == 0.0

    def test_works_as_target_fn(self, small_markets, small_dataset):
        from repro.baselines import ConstantPortfolioPolicy

        policy = ConstantPortfolioPolicy(
            small_markets, target_fn=ThresholdAutoscaler()
        )
        counts = policy.decide(
            0, 500.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        caps = [m.capacity_rps for m in small_markets]
        assert counts @ __import__("numpy").array(caps) >= 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdAutoscaler(desired_utilization=1.5)
        with pytest.raises(ValueError):
            ThresholdAutoscaler(scale_in_threshold=0.9)
        with pytest.raises(ValueError):
            ThresholdAutoscaler(scale_out_threshold=0.5)
        with pytest.raises(ValueError):
            ThresholdAutoscaler(scale_in_cooldown=-1)
