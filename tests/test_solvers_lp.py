"""Unit tests for the LP front-end."""

import numpy as np
import pytest

from repro.solvers import SolverStatus, solve_lp


class TestHighsPath:
    def test_simple_lp(self):
        # min -x - y s.t. x + y <= 1, x, y >= 0 -> optimum -1 on the edge.
        c = np.array([-1.0, -1.0])
        A = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        l = np.array([-np.inf, 0.0, 0.0])
        u = np.array([1.0, np.inf, np.inf])
        res = solve_lp(c, A, l, u)
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(-1.0, abs=1e-8)

    def test_equality_rows(self):
        # x + y == 2, minimize x -> x as small as allowed by x >= 0.
        c = np.array([1.0, 0.0])
        A = np.array([[1.0, 1.0], [1.0, 0.0]])
        res = solve_lp(c, A, np.array([2.0, 0.0]), np.array([2.0, np.inf]))
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [0.0, 2.0], atol=1e-8)

    def test_infeasible(self):
        A = np.array([[1.0], [1.0]])
        res = solve_lp(np.array([1.0]), A, np.array([2.0, -np.inf]), np.array([np.inf, 1.0]))
        assert res.status is SolverStatus.PRIMAL_INFEASIBLE

    def test_unbounded(self):
        res = solve_lp(
            np.array([-1.0]), np.array([[1.0]]), np.array([0.0]), np.array([np.inf])
        )
        assert res.status in (
            SolverStatus.DUAL_INFEASIBLE,
            SolverStatus.MAX_ITERATIONS,
        )


class TestADMMPath:
    def test_matches_highs(self):
        rng = np.random.default_rng(0)
        n, m = 5, 8
        A = rng.normal(size=(m, n))
        x0 = rng.normal(size=n)
        l = A @ x0 - rng.uniform(0.1, 1.0, size=m)
        u = A @ x0 + rng.uniform(0.1, 1.0, size=m)
        c = rng.normal(size=n)
        r1 = solve_lp(c, A, l, u, method="highs")
        r2 = solve_lp(c, A, l, u, method="admm")
        assert r1.status is SolverStatus.OPTIMAL
        assert r2.status is SolverStatus.OPTIMAL
        assert r2.objective == pytest.approx(r1.objective, abs=1e-3)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown LP method"):
            solve_lp(np.ones(1), np.eye(1), np.zeros(1), np.ones(1), method="simplex")
