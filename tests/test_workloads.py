"""Unit and property tests for workload traces, generators and spikes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    SpikeSpec,
    WorkloadTrace,
    constant_workload,
    inject_spikes,
    step_workload,
    vod_like,
    wikipedia_like,
)


class TestWorkloadTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadTrace(np.array([]))
        with pytest.raises(ValueError):
            WorkloadTrace(np.array([-1.0]))
        with pytest.raises(ValueError):
            WorkloadTrace(np.array([1.0]), interval_seconds=0)

    def test_window(self):
        trace = WorkloadTrace(np.arange(10, dtype=np.float64) + 1)
        sub = trace.window(2, 5)
        np.testing.assert_array_equal(sub.rates, [3.0, 4.0, 5.0])
        with pytest.raises(ValueError):
            trace.window(5, 2)

    def test_resample(self):
        trace = WorkloadTrace(np.array([1.0, 3.0, 5.0, 7.0]), 3600.0)
        coarse = trace.resample(2)
        np.testing.assert_array_equal(coarse.rates, [2.0, 6.0])
        assert coarse.interval_seconds == 7200.0

    def test_scaled(self):
        trace = WorkloadTrace(np.array([1.0, 2.0, 4.0]))
        scaled = trace.scaled(100.0)
        assert scaled.rates.max() == pytest.approx(100.0)
        np.testing.assert_allclose(scaled.rates, [25.0, 50.0, 100.0])

    def test_save_load(self, tmp_path):
        trace = wikipedia_like(1, seed=0)
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        np.testing.assert_array_equal(loaded.rates, trace.rates)
        assert loaded.name == trace.name

    def test_stats(self):
        trace = WorkloadTrace(np.array([1.0, 3.0]))
        s = trace.stats()
        assert s["mean_rps"] == 2.0
        assert s["peak_to_mean"] == 1.5


class TestGenerators:
    def test_lengths(self):
        assert len(wikipedia_like(3, seed=0)) == 3 * 7 * 24
        assert len(vod_like(2, seed=0)) == 2 * 7 * 24

    def test_deterministic(self):
        a = wikipedia_like(1, seed=5)
        b = wikipedia_like(1, seed=5)
        np.testing.assert_array_equal(a.rates, b.rates)

    def test_wikipedia_is_smooth_and_diurnal(self):
        trace = wikipedia_like(3, seed=0)
        s = trace.stats()
        assert s["cv"] < 0.4  # smooth
        # Strong hour-of-day structure.
        days = trace.rates[: 21 * 24].reshape(21, 24)
        profile_var = days.mean(axis=0).var()
        assert profile_var / days.var() > 0.6

    def test_vod_is_spikier_than_wikipedia(self):
        wiki = wikipedia_like(3, seed=1)
        vod = vod_like(3, seed=1)
        assert vod.stats()["peak_to_mean"] > 2 * wiki.stats()["peak_to_mean"]
        assert vod.stats()["cv"] > 2 * wiki.stats()["cv"]

    def test_constant_and_step(self):
        c = constant_workload(5, 100.0)
        assert np.all(c.rates == 100.0)
        s = step_workload(4, 25.0, 110.0, 2)
        np.testing.assert_array_equal(s.rates, [25.0, 25.0, 110.0, 110.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wikipedia_like(0)
        with pytest.raises(ValueError):
            step_workload(4, 1.0, 2.0, 9)


class TestSpikes:
    def test_spike_raises_peak(self):
        base = constant_workload(48, 100.0)
        spiked = inject_spikes(base, [SpikeSpec(start=10, magnitude=2.0)])
        assert spiked.rates[11] == pytest.approx(200.0)
        assert spiked.rates[:10].max() == 100.0

    def test_decay_tail(self):
        base = constant_workload(48, 100.0)
        spiked = inject_spikes(
            base, [SpikeSpec(start=5, magnitude=3.0, decay=0.5)]
        )
        tail = spiked.rates[7:12] - 100.0
        assert np.all(np.diff(tail) <= 0)

    def test_spike_beyond_end_ignored(self):
        base = constant_workload(10, 100.0)
        spiked = inject_spikes(base, [SpikeSpec(start=50, magnitude=2.0)])
        np.testing.assert_array_equal(spiked.rates, base.rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeSpec(start=-1, magnitude=2.0)
        with pytest.raises(ValueError):
            SpikeSpec(start=0, magnitude=0.5)
        with pytest.raises(ValueError):
            SpikeSpec(start=0, magnitude=2.0, decay=1.5)


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(st.floats(0.0, 1e6), min_size=2, max_size=100),
    factor=st.integers(1, 5),
)
def test_resample_preserves_total_volume(rates, factor):
    """Mean-aggregation keeps the request volume of the kept prefix."""
    trace = WorkloadTrace(np.asarray(rates))
    if len(rates) // factor == 0:
        return
    coarse = trace.resample(factor)
    kept = len(coarse) * factor
    vol_orig = trace.rates[:kept].sum() * trace.interval_seconds
    vol_coarse = coarse.rates.sum() * coarse.interval_seconds
    assert vol_coarse == pytest.approx(vol_orig, rel=1e-9, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), magnitude=st.floats(1.0, 5.0))
def test_spikes_never_reduce_load(seed, magnitude):
    rng = np.random.default_rng(seed)
    base = WorkloadTrace(rng.uniform(10, 100, size=48))
    start = int(rng.integers(0, 48))
    spiked = inject_spikes(base, [SpikeSpec(start=start, magnitude=magnitude)])
    assert np.all(spiked.rates >= base.rates - 1e-9)
