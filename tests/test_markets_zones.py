"""Unit tests for availability-zone market expansion."""

import numpy as np
import pytest

from repro.markets.zones import ZoneMarket, expand_zones, generate_zone_dataset


class TestExpandZones:
    def test_cross_product_size(self, catalog):
        markets = expand_zones(catalog, zones=("a", "b", "c"))
        assert len(markets) == 3 * len(catalog)

    def test_type_truncation(self, catalog):
        markets = expand_zones(catalog, zones=("a", "b"), types=10)
        assert len(markets) == 20

    def test_names_carry_zone(self, catalog):
        markets = expand_zones(catalog, zones=("a",), types=1)
        assert markets[0].name.endswith(":a:spot")
        assert markets[0].capacity_rps == markets[0].market.capacity_rps
        assert markets[0].revocable

    def test_duplicate_zone_rejected(self, catalog):
        with pytest.raises(ValueError):
            expand_zones(catalog, zones=("a", "a"))
        with pytest.raises(ValueError):
            expand_zones(catalog, zones=())


class TestZoneDataset:
    @pytest.fixture(scope="class")
    def zone_setup(self, catalog):
        markets = expand_zones(catalog, zones=("a", "b", "c"), types=4)
        dataset = generate_zone_dataset(
            markets, 24 * 21, seed=0, cross_zone_correlation=0.9
        )
        return markets, dataset

    def test_shape(self, zone_setup):
        markets, dataset = zone_setup
        assert dataset.prices.shape == (24 * 21, 12)

    def test_same_type_across_zones_correlated(self, zone_setup):
        markets, dataset = zone_setup
        # Columns 0..2 are the same type in zones a, b, c.
        assert markets[0].instance.name == markets[1].instance.name
        r = np.corrcoef(
            np.log(dataset.prices[:, 0]), np.log(dataset.prices[:, 1])
        )[0, 1]
        assert r > 0.15

    def test_zones_still_diverge(self, zone_setup):
        markets, dataset = zone_setup
        # Prices are not identical across zones (zone-local shocks).
        assert not np.allclose(dataset.prices[:, 0], dataset.prices[:, 1])

    def test_hundreds_of_markets_universe(self, catalog):
        markets = expand_zones(catalog, zones=("a", "b", "c"))
        assert len(markets) == 120  # the paper's "hundreds" scale

    def test_validation(self, catalog):
        markets = expand_zones(catalog, zones=("a",), types=2)
        with pytest.raises(ValueError):
            generate_zone_dataset(markets, 0)
        with pytest.raises(ValueError):
            generate_zone_dataset(markets, 5, cross_zone_correlation=1.5)


class TestZoneMarketsInOptimizer:
    def test_optimizer_runs_on_zone_universe(self, catalog):
        from repro.core import MPOOptimizer

        zone_markets = expand_zones(catalog, zones=("a", "b"), types=5)
        dataset = generate_zone_dataset(zone_markets, 10, seed=1)
        opt = MPOOptimizer(dataset.markets, horizon=2)
        res = opt.optimize(
            np.array([5000.0, 5000.0]),
            dataset.prices[:2],
            dataset.failure_probs[:2],
            dataset.event_covariance(),
        )
        assert res.solver.status.ok
        assert res.plan.fractions.shape == (2, 10)
