"""Unit tests for latency/SLO accounting."""

import numpy as np
import pytest

from repro.simulator import LatencyRecorder


class TestRecorder:
    def test_counts(self):
        rec = LatencyRecorder()
        rec.record_served(1.0, 0.1)
        rec.record_served(2.0, 0.2)
        rec.record_dropped(3.0)
        rec.record_failed(4.0)
        assert rec.served == 2
        assert rec.total == 4
        assert rec.drop_rate() == pytest.approx(0.5)

    def test_percentiles(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record_served(float(i), i / 100.0)
        assert rec.percentile(50) == pytest.approx(0.495, abs=0.02)
        assert rec.percentile(99) > rec.percentile(50)
        assert rec.mean() == pytest.approx(0.495, abs=0.01)

    def test_empty_percentile_nan(self):
        rec = LatencyRecorder()
        assert np.isnan(rec.percentile(50))
        assert np.isnan(rec.mean())
        assert rec.drop_rate() == 0.0
        assert rec.slo_violation_rate() == 0.0

    def test_slo_violations_include_unserved(self):
        rec = LatencyRecorder(slo_threshold=1.0)
        rec.record_served(0.0, 0.5)   # ok
        rec.record_served(0.0, 2.0)   # late
        rec.record_dropped(0.0)       # violation
        assert rec.slo_violation_rate() == pytest.approx(2 / 3)

    def test_window(self):
        rec = LatencyRecorder()
        rec.record_served(10.0, 0.1)
        rec.record_served(70.0, 0.2)
        rec.record_served(130.0, 0.3)
        window = rec.window(60.0, 120.0)
        np.testing.assert_allclose(window, [0.2])

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record_served(0.0, -0.1)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record_served(0.0, 0.1)
        s = rec.summary()
        assert set(s) >= {"served", "dropped", "mean_s", "p90_s", "slo_violation_rate"}
