"""Unit tests for latency/SLO accounting."""

import numpy as np
import pytest

from repro.simulator import LatencyRecorder


class TestRecorder:
    def test_counts(self):
        rec = LatencyRecorder()
        rec.record_served(1.0, 0.1)
        rec.record_served(2.0, 0.2)
        rec.record_dropped(3.0)
        rec.record_failed(4.0)
        assert rec.served == 2
        assert rec.total == 4
        assert rec.drop_rate() == pytest.approx(0.5)

    def test_percentiles(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record_served(float(i), i / 100.0)
        assert rec.percentile(50) == pytest.approx(0.495, abs=0.02)
        assert rec.percentile(99) > rec.percentile(50)
        assert rec.mean() == pytest.approx(0.495, abs=0.01)

    def test_empty_percentile_nan(self):
        rec = LatencyRecorder()
        assert np.isnan(rec.percentile(50))
        assert np.isnan(rec.mean())
        assert rec.drop_rate() == 0.0
        assert rec.slo_violation_rate() == 0.0

    def test_slo_violations_include_unserved(self):
        rec = LatencyRecorder(slo_threshold=1.0)
        rec.record_served(0.0, 0.5)   # ok
        rec.record_served(0.0, 2.0)   # late
        rec.record_dropped(0.0)       # violation
        assert rec.slo_violation_rate() == pytest.approx(2 / 3)

    def test_window(self):
        rec = LatencyRecorder(keep_raw=True)
        rec.record_served(10.0, 0.1)
        rec.record_served(70.0, 0.2)
        rec.record_served(130.0, 0.3)
        window = rec.window(60.0, 120.0)
        np.testing.assert_allclose(window, [0.2])

    def test_window_needs_raw(self):
        rec = LatencyRecorder()
        rec.record_served(10.0, 0.1)
        with pytest.raises(RuntimeError, match="keep_raw"):
            rec.window(0.0, 60.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record_served(0.0, -0.1)

    def test_summary_keys(self):
        rec = LatencyRecorder()
        rec.record_served(0.0, 0.1)
        s = rec.summary()
        assert set(s) >= {"served", "dropped", "mean_s", "p90_s", "slo_violation_rate"}

    def test_streaming_default_bounds_memory(self):
        """The default recorder must not grow per-request state."""
        rec = LatencyRecorder()
        for i in range(50_000):
            rec.record_served(float(i), (i % 100) / 50.0)
        assert rec.latencies == []
        assert rec.timestamps == []
        assert len(rec.digest.counts) == rec.digest.num_bins + 1
        assert rec.served == 50_000

    def test_streaming_percentile_matches_raw_within_bin(self):
        rng = np.random.default_rng(7)
        samples = rng.gamma(2.0, 0.2, size=5_000)
        stream = LatencyRecorder()
        raw = LatencyRecorder(keep_raw=True)
        for i, s in enumerate(samples):
            stream.record_served(float(i), float(s))
            raw.record_served(float(i), float(s))
        for p in (50, 95, 99):
            assert stream.percentile(p) == pytest.approx(
                raw.percentile(p), abs=stream.digest.bin_width
            )
        assert stream.slo_violation_rate() == raw.slo_violation_rate()

    def test_keep_raw_percentile_is_exact(self):
        rec = LatencyRecorder(keep_raw=True)
        for i in range(100):
            rec.record_served(float(i), i / 100.0)
        assert rec.percentile(50) == np.percentile(
            np.asarray(rec.latencies), 50
        )
