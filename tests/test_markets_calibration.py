"""Unit tests for price-process calibration."""

import numpy as np
import pytest

from repro.markets.calibration import fit_price_process
from repro.markets.price_process import SpotPriceProcess


class TestFitPriceProcess:
    def test_roundtrip_recovers_discount(self):
        """Fit on a generated series: the calm discount comes back close."""
        rng = np.random.default_rng(0)
        truth = SpotPriceProcess(
            ondemand_price=1.0,
            base_discount=0.25,
            reversion=0.2,
            volatility=0.05,
            p_enter_pressure=0.01,
            p_exit_pressure=0.2,
        )
        series = truth.sample(24 * 60, rng)
        fit = fit_price_process(series, 1.0)
        assert fit.process.base_discount == pytest.approx(0.25, abs=0.08)
        # Mean reversion direction captured: high persistence -> low reversion.
        assert 0.01 <= fit.process.reversion <= 0.6

    def test_fitted_process_generates_similar_scale(self):
        rng = np.random.default_rng(1)
        truth = SpotPriceProcess(ondemand_price=2.0, base_discount=0.3)
        series = truth.sample(24 * 30, rng)
        fit = fit_price_process(series, 2.0)
        regen = fit.process.sample(24 * 30, np.random.default_rng(2))
        assert np.median(regen) == pytest.approx(np.median(series), rel=0.5)

    def test_pressure_regime_detected(self):
        rng = np.random.default_rng(3)
        stormy = SpotPriceProcess(
            ondemand_price=1.0,
            base_discount=0.2,
            p_enter_pressure=0.05,
            p_exit_pressure=0.1,
            pressure_discount=0.9,
        )
        series = stormy.sample(24 * 60, rng)
        fit = fit_price_process(series, 1.0)
        assert fit.pressure_fraction > 0.02
        assert fit.process.pressure_discount > fit.process.base_discount

    def test_constant_series(self):
        fit = fit_price_process(np.full(100, 0.25), 1.0)
        assert fit.process.base_discount == pytest.approx(0.25)
        # Degenerate dynamics: tiny volatility, bounded parameters.
        assert fit.process.volatility <= 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_price_process(np.ones(5), 1.0)
        with pytest.raises(ValueError):
            fit_price_process(np.zeros(50), 1.0)
        with pytest.raises(ValueError):
            fit_price_process(np.ones(50), 0.0)
        with pytest.raises(ValueError):
            fit_price_process(np.ones(50), 1.0, pressure_quantile=0.4)
