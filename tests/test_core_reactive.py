"""Unit tests for the reactive fallback provisioner (Sec. 6.2)."""

import numpy as np
import pytest

from repro.core import ReactiveFallback
from repro.markets import PurchaseOption, default_catalog


@pytest.fixture
def mixed_markets(catalog):
    spot = catalog.spot_markets(4)
    od = [catalog.market(m.instance.name, PurchaseOption.ON_DEMAND) for m in spot]
    return spot + od


class TestTriggering:
    def test_clean_interval_no_boost(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets)
        fb.update(demand_rps=1000.0, served_capacity_rps=1100.0)
        assert fb.boost_rps == 0.0
        assert fb.activations == 0

    def test_shortfall_arms_boost(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets, boost_factor=1.5)
        fb.update(demand_rps=1000.0, served_capacity_rps=800.0)
        assert fb.boost_rps == pytest.approx(1.5 * 200.0)
        assert fb.activations == 1

    def test_boost_decays_after_recovery(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets, decay=0.5)
        fb.update(1000.0, 800.0)
        fb.update(1000.0, 1200.0)
        assert fb.boost_rps == pytest.approx(0.5 * 1.5 * 200.0)
        for _ in range(60):
            fb.update(1000.0, 1200.0)
        assert fb.boost_rps == 0.0

    def test_small_shortfall_below_trigger_ignored(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets, trigger_fraction=0.05)
        fb.update(1000.0, 990.0)  # 1% shortfall < 5% trigger
        assert fb.boost_rps == 0.0


class TestTopUp:
    def test_prefers_ondemand_markets(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets)
        fb.update(1000.0, 500.0)
        counts = fb.topup_counts(np.ones(8))
        for i, m in enumerate(mixed_markets):
            if counts[i] > 0:
                assert not m.revocable

    def test_topup_covers_boost(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets, boost_factor=1.0)
        fb.update(1000.0, 600.0)
        counts = fb.topup_counts(np.ones(8))
        caps = np.array([m.capacity_rps for m in mixed_markets])
        assert counts @ caps >= 400.0

    def test_spot_only_universe_falls_back(self, small_markets):
        fb = ReactiveFallback(small_markets)
        fb.update(1000.0, 500.0)
        counts = fb.topup_counts(np.ones(6))
        assert counts.sum() > 0

    def test_no_boost_no_counts(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets)
        counts = fb.topup_counts(np.ones(8))
        assert counts.sum() == 0

    def test_spread_over_two_markets(self, mixed_markets):
        fb = ReactiveFallback(mixed_markets)
        fb.update(100_000.0, 10_000.0)
        counts = fb.topup_counts(np.ones(8))
        assert (counts > 0).sum() == 2


class TestValidation:
    def test_params(self, small_markets):
        with pytest.raises(ValueError):
            ReactiveFallback([])
        with pytest.raises(ValueError):
            ReactiveFallback(small_markets, boost_factor=0.0)
        with pytest.raises(ValueError):
            ReactiveFallback(small_markets, decay=1.0)
        with pytest.raises(ValueError):
            ReactiveFallback(small_markets, trigger_fraction=-0.1)

    def test_update_validation(self, small_markets):
        fb = ReactiveFallback(small_markets)
        with pytest.raises(ValueError):
            fb.update(-1.0, 0.0)

    def test_topup_price_length(self, small_markets):
        fb = ReactiveFallback(small_markets)
        fb.update(100.0, 0.0)
        with pytest.raises(ValueError):
            fb.topup_counts(np.ones(2))
