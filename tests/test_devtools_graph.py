"""Tests for spotgraph: per-rule fixtures (positive + negative), the
transitive taint path, suppressions, caching, baselines, and the CLI."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.graph.baseline import (
    fingerprint,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.devtools.graph.cli import GRAPH_RULES, analyze_project, main
from repro.devtools.graph.facts import extract_module_facts, load_project
from repro.devtools.graph.layers import LAYER_ALLOWED, render_layer_map

FIXTURES = Path(__file__).parent / "fixtures" / "graph"
SRC = Path(__file__).parents[1] / "src"


def graph_findings(tree, select=None):
    project = load_project([FIXTURES / tree])
    findings = analyze_project(project)
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


# ---------------------------------------------------------------- rule table
GRAPH_RULE_CASES = [
    ("SW101", "layer_bad", 1, "layer_clean"),
    ("SW102", "layer_bad", 1, "layer_clean"),
    ("SW103", "layer_bad", 1, "layer_clean"),
    ("SW110", "taint_bad", 2, "taint_clean"),
    ("SW111", "taint_bad", 1, "taint_clean"),
    ("SW112", "taint_bad", 1, "taint_clean"),
    ("SW120", "purity_bad", 1, "purity_clean"),
    ("SW121", "purity_bad", 1, "purity_clean"),
    ("SW122", "purity_bad", 1, "purity_clean"),
    ("SW123", "purity_bad", 1, "purity_clean"),
]


def test_every_graph_rule_has_a_case():
    assert {case[0] for case in GRAPH_RULE_CASES} == set(GRAPH_RULES)


@pytest.mark.parametrize(
    "rule,bad,count,good", GRAPH_RULE_CASES, ids=[c[0] for c in GRAPH_RULE_CASES]
)
def test_graph_rule_positive(rule, bad, count, good):
    findings = graph_findings(bad, select={rule})
    assert len(findings) == count
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize(
    "rule,bad,count,good", GRAPH_RULE_CASES, ids=[c[0] for c in GRAPH_RULE_CASES]
)
def test_graph_rule_negative(rule, bad, count, good):
    assert graph_findings(good, select={rule}) == []


# ----------------------------------------------------------------- layering
def test_sw101_message_names_both_layers():
    (finding,) = graph_findings("layer_bad", select={"SW101"})
    assert "`repro.solvers.bad` (layer `solvers`)" in finding.message
    assert "repro.simulator.engine" in finding.message


def test_sw102_reports_the_full_cycle():
    (finding,) = graph_findings("layer_bad", select={"SW102"})
    assert (
        "repro.core.a -> repro.core.b -> repro.core.a" in finding.message
    )


def test_type_checking_imports_are_exempt():
    # predictors/ok.py imports repro.simulator under TYPE_CHECKING — an
    # upward edge that would be SW101 if it were a runtime import.
    source = (
        FIXTURES / "layer_clean" / "repro" / "predictors" / "ok.py"
    ).read_text()
    assert "from repro.simulator.engine import run" in source
    assert graph_findings("layer_clean", select={"SW101"}) == []


def test_layer_map_covers_real_src_packages():
    declared = set(LAYER_ALLOWED)
    actual = {
        p.name for p in (SRC / "repro").iterdir() if (p / "__init__.py").exists()
    }
    assert actual <= declared


def test_render_layer_map_lists_every_group():
    text = render_layer_map()
    for segment in LAYER_ALLOWED:
        assert segment in text


# -------------------------------------------------------------------- taint
def test_sw110_reports_the_transitive_path():
    findings = graph_findings("taint_bad", select={"SW110"})
    chains = [f.message for f in findings]
    assert any(
        "repro.core.engine.step -> repro.obs.util.stamp -> time.time" in m
        for m in chains
    )


def test_sw110_message_has_no_line_numbers():
    # Line numbers would churn baseline fingerprints on unrelated edits.
    for finding in graph_findings("taint_bad", select={"SW110"}):
        assert ":%d" % finding.line not in finding.message


def test_allow_nondeterminism_def_annotation_is_a_barrier():
    # taint_clean's stamp() reads time.time() but is annotated; neither it
    # nor its deterministic-scope caller may be reported.
    assert graph_findings("taint_clean", select={"SW110"}) == []


def test_sw110_direct_source_reports_length_one_chain():
    findings = graph_findings("taint_bad", select={"SW110"})
    assert any(
        "repro.core.engine.now -> time.time" in f.message for f in findings
    )


def test_unseeded_rng_is_sw111_only_not_sw110():
    # `draw` builds an unseeded default_rng() directly; SW111 covers that
    # call, so no duplicate length-1 SW110 chain may be emitted for it.
    sw110 = graph_findings("taint_bad", select={"SW110"})
    assert not any("draw" in f.message for f in sw110)
    (sw111,) = graph_findings("taint_bad", select={"SW111"})
    assert "repro.core.engine.draw" in sw111.message


@pytest.mark.parametrize(
    "call", ["default_rng()", "default_rng(None)", "default_rng(seed=None)"]
)
def test_none_seed_counts_as_unseeded(call):
    facts = extract_module_facts(
        "from numpy.random import default_rng\n\n"
        f"def f():\n    return {call}\n",
        Path("m.py"),
    )
    (fn,) = facts.functions
    (rng,) = fn.rng_calls
    assert rng.seeded is False


def test_expression_seed_counts_as_seeded():
    facts = extract_module_facts(
        "from numpy.random import default_rng\n\n"
        "def f(seed):\n    return default_rng(seed)\n",
        Path("m.py"),
    )
    (rng,) = facts.functions[0].rng_calls
    assert rng.seeded is True


# ------------------------------------------------------------------- purity
def test_sw120_names_the_global_and_the_worker():
    (finding,) = graph_findings("purity_bad", select={"SW120"})
    assert "_CACHE" in finding.message
    assert "repro.experiments.run._cell" in finding.message


def test_sw123_fires_on_lambda():
    (finding,) = graph_findings("purity_bad", select={"SW123"})
    assert "lambda" in finding.message


def test_unwritten_mutable_global_read_is_allowed():
    # purity_clean's worker reads _TABLE, which nothing mutates.
    assert graph_findings("purity_clean", select={"SW120"}) == []


# ------------------------------------------------------------- suppressions
def test_spotgraph_line_suppression():
    findings = graph_findings("suppress", select={"SW112"})
    assert len(findings) == 1
    assert "reported" in findings[0].message


def test_unknown_suppression_rule_becomes_sw009():
    findings = graph_findings("suppress", select={"SW009"})
    mentioned = {f.message.split("`")[1] for f in findings}
    assert mentioned == {"SW999", "SW777"}


# ------------------------------------------------------------------ caching
def _copy_tree(tmp_path, tree):
    dest = tmp_path / tree
    shutil.copytree(FIXTURES / tree, dest)
    return dest


def test_cache_roundtrip_and_invalidation(tmp_path):
    dest = _copy_tree(tmp_path, "taint_bad")
    cache = tmp_path / "cache.json"

    stats: dict = {}
    load_project([dest], cache_path=cache, stats=stats)
    n_files = stats["extracted"]
    assert n_files == 5 and stats["cached"] == 0

    stats = {}
    project = load_project([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files, "extracted": 0}
    # Cached facts must produce identical findings.
    assert [f.rule for f in analyze_project(project) if f.rule == "SW110"]

    target = dest / "repro" / "core" / "engine.py"
    target.write_text(target.read_text() + "\n# touched\n")
    stats = {}
    load_project([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files - 1, "extracted": 1}


def test_cache_schema_mismatch_forces_reextraction(tmp_path):
    dest = _copy_tree(tmp_path, "taint_bad")
    cache = tmp_path / "cache.json"
    cache.write_text(json.dumps({"schema": "something/9", "files": {}}))
    stats: dict = {}
    load_project([dest], cache_path=cache, stats=stats)
    assert stats["cached"] == 0 and stats["extracted"] == 5


def test_syntax_error_becomes_sw000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    project = load_project([tmp_path])
    findings = analyze_project(project)
    assert [f.rule for f in findings] == ["SW000"]


def test_extract_module_facts_records_imports_and_functions():
    path = FIXTURES / "taint_bad" / "repro" / "core" / "engine.py"
    facts = extract_module_facts(path.read_text(), path)
    assert facts.module == "repro.core.engine"
    assert {fn.qualname for fn in facts.functions} == {
        "step",
        "draw",
        "now",
        "keys",
    }
    assert any(e.target == "repro.obs.util" for e in facts.imports)


# ----------------------------------------------------------------- baseline
def test_baseline_roundtrip_accepts_everything(tmp_path):
    findings = graph_findings("taint_bad")
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    accepted = load_baseline(baseline_file)
    new, baselined = split_findings(findings, accepted)
    assert new == [] and len(baselined) == len(findings)


def test_fingerprint_is_line_independent():
    findings = graph_findings("taint_bad", select={"SW110"})
    f = findings[0]
    moved = type(f)(f.rule, f.path, f.line + 40, f.col, f.message)
    assert fingerprint(moved) == fingerprint(f)


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_load_baseline_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text(json.dumps({"schema": "other/1", "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def test_committed_repo_baseline_is_empty():
    committed = Path(__file__).parents[1] / "spotgraph-baseline.json"
    data = json.loads(committed.read_text())
    assert data["schema"] == "spotgraph-baseline/1"
    assert data["findings"] == []
    assert data["justification"]


# ---------------------------------------------------------------------- CLI
def _cli(tmp_path, *argv):
    baseline = tmp_path / "empty-baseline.json"
    return main([*argv, "--no-cache", "--baseline", str(baseline)])


def test_cli_exits_nonzero_with_findings(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES / "layer_bad"), "--select", "SW101")
    out = capsys.readouterr().out
    assert code == 1
    assert "SW101" in out and "bad.py:" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES / "layer_clean"))
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_rejects_unknown_rule_ids(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES / "layer_bad"), "--select", "SW999")
    assert code == 2
    assert "SW999" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    code = _cli(
        tmp_path,
        str(FIXTURES / "taint_bad"),
        "--select",
        "SW110",
        "--format",
        "json",
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "spotweb-findings/1"
    assert payload["tool"] == "spotgraph"
    assert payload["count"] == 2
    assert payload["baselined"] == 0


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tree = str(FIXTURES / "purity_bad")
    assert main([tree, "--no-cache", "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()
    code = main([tree, "--no-cache", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_cli_update_baseline_rejects_filters(tmp_path, capsys):
    # A filtered --update-baseline would overwrite the baseline with only
    # the selected subset, silently un-accepting all other findings.
    code = _cli(
        tmp_path,
        str(FIXTURES / "taint_bad"),
        "--select",
        "SW110",
        "--update-baseline",
    )
    assert code == 2
    assert "--update-baseline" in capsys.readouterr().err


def test_cli_layers_diagram(capsys):
    assert main(["--layers", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "foundation" in out and "observed package dependencies" in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in GRAPH_RULES:
        assert rule_id in out
    assert "SW009" in out


# ----------------------------------------------------------- the real tree
def test_real_src_is_clean_with_empty_baseline():
    # The acceptance gate: spotgraph over the actual repo source exits with
    # zero findings, the intentional seams being annotated in place.
    project = load_project([SRC])
    assert analyze_project(project) == []
