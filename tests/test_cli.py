"""Unit tests for the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table1_costs",
            "fig3",
            "fig4a",
            "fig4bcd",
            "fig5",
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "lookahead",
            "gcloud",
        }


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6b" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "r5d.24xlarge" in out
        assert "1.92e+03" in out  # the paper's calibrated 1920 req/s capacity

    def test_advisor(self, capsys):
        assert main(["advisor", "--markets", "4"]) == 0
        out = capsys.readouterr().out
        assert "interruption" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "SpotWeb" in out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--weeks", "1"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--markets",
                "4",
                "--weeks",
                "1",
                "--policies",
                "qu",
                "ondemand",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "qu" in out and "ondemand" in out
        assert "savings" in out

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policies", "tributary"])


class TestRunCommand:
    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        from repro.obs import (
            disable_events,
            disable_tracing,
            get_events,
            get_tracer,
            reset_metrics,
        )

        yield
        disable_tracing()
        get_tracer().clear()
        disable_events()
        get_events().clear()
        reset_metrics()

    def test_run_without_trace_matches_experiment(self, capsys, monkeypatch):
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        monkeypatch.delenv("SPOTWEB_EVENTS", raising=False)
        assert main(["run", "fig6a", "--hours", "6"]) == 0
        run_out = capsys.readouterr().out
        assert "spotweb_H2" in run_out
        assert "wrote" not in run_out  # no trace file without opt-in
        assert "metrics:" not in run_out

    def test_run_with_trace_writes_valid_jsonl(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.obs import load_trace

        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig6a",
                    "--hours",
                    "6",
                    "--trace",
                    "--trace-out",
                    str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "metrics:" in text
        assert "controller.steps" in text
        records = load_trace(out)  # validates the schema
        names = {r["name"] for r in records}
        assert "experiment.fig6a" in names
        assert "controller.step" in names
        assert "qp.iterate" in names

    def test_run_honors_spotweb_trace_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("SPOTWEB_TRACE", "1")
        out = tmp_path / "trace.jsonl"
        assert (
            main(["run", "fig6a", "--hours", "4", "--trace-out", str(out)]) == 0
        )
        assert out.exists()

    def test_quick_shrinks_workload(self, monkeypatch):
        seen = {}
        from repro import cli

        def fake_runner(args):
            seen["weeks"] = args.weeks
            seen["hours"] = args.hours
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "fig6a", ("desc", fake_runner))
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        monkeypatch.delenv("SPOTWEB_EVENTS", raising=False)
        assert main(["run", "fig6a", "--quick"]) == 0
        assert seen == {"weeks": 1, "hours": 24}

    def test_run_with_events_writes_valid_journal(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.obs import load_events

        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        monkeypatch.delenv("SPOTWEB_EVENTS", raising=False)
        out = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig6a",
                    "--hours",
                    "6",
                    "--events",
                    "--events-out",
                    str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "wrote" in text and "events" in text
        assert "metrics:" in text
        records = load_events(out)  # full schema + causal validation
        kinds = {r["kind"] for r in records}
        assert "controller.plan" in kinds
        assert "interval.plan" in kinds

    def test_run_honors_spotweb_events_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        monkeypatch.setenv("SPOTWEB_EVENTS", "1")
        out = tmp_path / "events.jsonl"
        assert (
            main(["run", "fig6a", "--hours", "4", "--events-out", str(out)])
            == 0
        )
        assert out.exists()

    def test_run_prom_out(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        monkeypatch.delenv("SPOTWEB_EVENTS", raising=False)
        out = tmp_path / "metrics.prom"
        assert (
            main(["run", "fig6a", "--hours", "4", "--prom-out", str(out)]) == 0
        )
        text = out.read_text()
        assert "# TYPE spotweb_controller_steps_total counter" in text
        assert "# HELP spotweb_controller_steps_total" in text
        # Registry-typed export: histograms render as summaries even
        # though their snapshot value is a dict either way.
        assert "# TYPE spotweb_controller_solve_ms summary" in text


class TestTraceCommand:
    def _write_trace(self, tmp_path):
        from repro.obs import Tracer, write_trace

        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("controller.step"):
                with tracer.span("controller.solve"):
                    pass
        return write_trace(tracer.records(), tmp_path / "t.jsonl")

    def test_validate(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["trace", "validate", str(path)]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_validate_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "nope"}\n')
        with pytest.raises(ValueError):
            main(["trace", "validate", str(path)])

    def test_summarize(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "top spans" in out

    def test_validate_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"schema": "spotweb-trace/1", "kind": "header"}\n{broken\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            main(["trace", "validate", str(path)])


class TestEventsCommand:
    def _write_journal(self, tmp_path, name="events.jsonl", mutate=None):
        from repro.obs import EventLog, write_events

        log = EventLog(enabled=True)
        wid = log.open_warning(1, t=10.0, capacity_rps=50.0)
        with log.causal(wid):
            log.emit("server.drain", t=11.0, backend=1)
            log.emit("session.migrate", t=11.0, backend=1, migrated=5)
        log.resolve_warning(wid, t=20.0)
        records = log.records()
        if mutate is not None:
            records = mutate(records)
        return write_events(records, tmp_path / name)

    def test_validate(self, capsys, tmp_path):
        path = self._write_journal(tmp_path)
        assert main(["events", "validate", str(path)]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_validate_rejects_unresolved_warning(self, tmp_path):
        path = self._write_journal(
            tmp_path,
            mutate=lambda recs: [
                r for r in recs if r["kind"] != "warning.resolved"
            ],
        )
        with pytest.raises(ValueError, match="never resolved"):
            main(["events", "validate", str(path)])

    def test_summarize(self, capsys, tmp_path):
        path = self._write_journal(tmp_path)
        assert main(["events", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incident report" in out
        assert "outcomes: migrated=1" in out

    def test_timeline(self, capsys, tmp_path):
        path = self._write_journal(tmp_path)
        assert main(["events", "timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incident timeline" in out
        assert "w0 warning.issued" in out

    def test_diff_identical(self, capsys, tmp_path):
        a = self._write_journal(tmp_path, "a.jsonl")
        b = self._write_journal(tmp_path, "b.jsonl")
        assert main(["events", "diff", str(a), str(b)]) == 0
        assert "zero divergence" in capsys.readouterr().out

    def test_diff_divergent_exits_nonzero(self, tmp_path):
        def mutate(recs):
            recs[1] = dict(recs[1], attrs=dict(recs[1]["attrs"], backend=9))
            return recs

        a = self._write_journal(tmp_path, "a.jsonl")
        b = self._write_journal(tmp_path, "b.jsonl", mutate=mutate)
        with pytest.raises(SystemExit, match="divergent"):
            main(["events", "diff", str(a), str(b)])

    def test_diff_requires_two_files(self, tmp_path):
        a = self._write_journal(tmp_path)
        with pytest.raises(SystemExit, match="two journal files"):
            main(["events", "diff", str(a)])


class TestBenchCompare:
    def test_compare_gate(self, capsys, tmp_path, monkeypatch):
        """bench --compare fails only when a warm median regresses."""
        import json

        from repro import bench, cli

        def fake_mpo(**kwargs):
            return {
                "schema": bench.SCHEMA_MPO,
                "cells": [
                    {
                        "markets": 12,
                        "horizon": 4,
                        "backend": "admm",
                        "resolved_backend": "admm",
                        "variables": 48,
                        "cold_ms": 1.0,
                        "warm_median_ms": 10.0,
                        "warm_max_ms": 12.0,
                        "final_objective": 1.0,
                    }
                ],
                "speedups": [],
                "config": {},
            }

        def fake_sim(**kwargs):
            return {"schema": bench.SCHEMA_SIM, "cells": [], "config": {}}

        monkeypatch.setattr(bench, "bench_mpo", fake_mpo)
        monkeypatch.setattr(bench, "bench_sim", fake_sim)
        baseline = dict(fake_mpo())
        baseline["cells"] = [dict(baseline["cells"][0], warm_median_ms=8.0)]
        base_path = tmp_path / "BENCH_mpo.json"
        base_path.write_text(json.dumps(baseline))

        argv = [
            "bench",
            "--quick",
            "--out-dir",
            str(tmp_path / "out"),
            "--compare",
            str(base_path),
        ]
        assert main(argv) == 0  # 10.0 vs 8.0 is within 2.5x
        assert "no warm-latency regressions" in capsys.readouterr().out

        with pytest.raises(SystemExit, match="regressed"):
            main(argv + ["--regress-factor", "1.2"])
