"""Unit tests for the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table1_costs",
            "fig3",
            "fig4a",
            "fig4bcd",
            "fig5",
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "lookahead",
            "gcloud",
        }


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6b" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "r5d.24xlarge" in out
        assert "1.92e+03" in out  # the paper's calibrated 1920 req/s capacity

    def test_advisor(self, capsys):
        assert main(["advisor", "--markets", "4"]) == 0
        out = capsys.readouterr().out
        assert "interruption" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "SpotWeb" in out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--weeks", "1"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--markets",
                "4",
                "--weeks",
                "1",
                "--policies",
                "qu",
                "ondemand",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "qu" in out and "ondemand" in out
        assert "savings" in out

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policies", "tributary"])
