"""Unit tests for the CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table1_costs",
            "fig3",
            "fig4a",
            "fig4bcd",
            "fig5",
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "lookahead",
            "gcloud",
        }


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6b" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "r5d.24xlarge" in out
        assert "1.92e+03" in out  # the paper's calibrated 1920 req/s capacity

    def test_advisor(self, capsys):
        assert main(["advisor", "--markets", "4"]) == 0
        out = capsys.readouterr().out
        assert "interruption" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "SpotWeb" in out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--weeks", "1"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out

    def test_simulate(self, capsys):
        assert main(
            [
                "simulate",
                "--markets",
                "4",
                "--weeks",
                "1",
                "--policies",
                "qu",
                "ondemand",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "qu" in out and "ondemand" in out
        assert "savings" in out

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policies", "tributary"])


class TestRunCommand:
    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        from repro.obs import disable_tracing, get_tracer, reset_metrics

        yield
        disable_tracing()
        get_tracer().clear()
        reset_metrics()

    def test_run_without_trace_matches_experiment(self, capsys, monkeypatch):
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        assert main(["run", "fig6a", "--hours", "6"]) == 0
        run_out = capsys.readouterr().out
        assert "spotweb_H2" in run_out
        assert "wrote" not in run_out  # no trace file without opt-in
        assert "metrics:" not in run_out

    def test_run_with_trace_writes_valid_jsonl(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.obs import load_trace

        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        out = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "run",
                    "fig6a",
                    "--hours",
                    "6",
                    "--trace",
                    "--trace-out",
                    str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "metrics:" in text
        assert "controller.steps" in text
        records = load_trace(out)  # validates the schema
        names = {r["name"] for r in records}
        assert "experiment.fig6a" in names
        assert "controller.step" in names
        assert "qp.iterate" in names

    def test_run_honors_spotweb_trace_env(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("SPOTWEB_TRACE", "1")
        out = tmp_path / "trace.jsonl"
        assert (
            main(["run", "fig6a", "--hours", "4", "--trace-out", str(out)]) == 0
        )
        assert out.exists()

    def test_quick_shrinks_workload(self, monkeypatch):
        seen = {}
        from repro import cli

        def fake_runner(args):
            seen["weeks"] = args.weeks
            seen["hours"] = args.hours
            return "ok"

        monkeypatch.setitem(cli.EXPERIMENTS, "fig6a", ("desc", fake_runner))
        monkeypatch.delenv("SPOTWEB_TRACE", raising=False)
        assert main(["run", "fig6a", "--quick"]) == 0
        assert seen == {"weeks": 1, "hours": 24}


class TestTraceCommand:
    def _write_trace(self, tmp_path):
        from repro.obs import Tracer, write_trace

        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("controller.step"):
                with tracer.span("controller.solve"):
                    pass
        return write_trace(tracer.records(), tmp_path / "t.jsonl")

    def test_validate(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["trace", "validate", str(path)]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_validate_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "nope"}\n')
        with pytest.raises(ValueError):
            main(["trace", "validate", str(path)])

    def test_summarize(self, capsys, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "top spans" in out


class TestBenchCompare:
    def test_compare_gate(self, capsys, tmp_path, monkeypatch):
        """bench --compare fails only when a warm median regresses."""
        import json

        from repro import bench, cli

        def fake_mpo(**kwargs):
            return {
                "schema": bench.SCHEMA_MPO,
                "cells": [
                    {
                        "markets": 12,
                        "horizon": 4,
                        "backend": "admm",
                        "resolved_backend": "admm",
                        "variables": 48,
                        "cold_ms": 1.0,
                        "warm_median_ms": 10.0,
                        "warm_max_ms": 12.0,
                        "final_objective": 1.0,
                    }
                ],
                "speedups": [],
                "config": {},
            }

        def fake_sim(**kwargs):
            return {"schema": bench.SCHEMA_SIM, "cells": [], "config": {}}

        monkeypatch.setattr(bench, "bench_mpo", fake_mpo)
        monkeypatch.setattr(bench, "bench_sim", fake_sim)
        baseline = dict(fake_mpo())
        baseline["cells"] = [dict(baseline["cells"][0], warm_median_ms=8.0)]
        base_path = tmp_path / "BENCH_mpo.json"
        base_path.write_text(json.dumps(baseline))

        argv = [
            "bench",
            "--quick",
            "--out-dir",
            str(tmp_path / "out"),
            "--compare",
            str(base_path),
        ]
        assert main(argv) == 0  # 10.0 vs 8.0 is within 2.5x
        assert "no warm-latency regressions" in capsys.readouterr().out

        with pytest.raises(SystemExit, match="regressed"):
            main(argv + ["--regress-factor", "1.2"])
