"""Tests for repro.obs tracing: nesting, timing, no-op overhead, JSONL IO."""

import time

import numpy as np
import pytest

from repro.obs import (
    TRACE_SCHEMA,
    NullSpan,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    load_trace,
    set_tracer,
    tracing_enabled,
    validate_trace,
    write_trace,
)


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


@pytest.fixture
def global_tracer():
    """Install a fresh enabled global tracer; restore the old one after."""
    old = set_tracer(Tracer(enabled=True))
    yield get_tracer()
    set_tracer(old)


class TestSpanNesting:
    def test_parent_child_links(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
        assert root.parent is None and root.depth == 0
        assert child.parent == root.id and child.depth == 1
        assert grand.parent == child.id and grand.depth == 2

    def test_siblings_share_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent == root.id and b.parent == root.id
        assert a.depth == b.depth == 1
        assert a.id != b.id

    def test_sequential_roots(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.parent is None and second.parent is None
        assert tracer.open_spans == 0

    def test_timing_nested_within_parent(self, tracer):
        with tracer.span("root") as root:
            time.sleep(0.002)
            with tracer.span("child") as child:
                time.sleep(0.002)
            time.sleep(0.002)
        assert child.start >= root.start
        assert child.dur > 0
        assert root.dur >= child.dur
        assert child.start + child.dur <= root.start + root.dur + 1e-6

    def test_tag_merges_attrs(self, tracer):
        with tracer.span("s", a=1) as sp:
            sp.tag(b=2).tag(a=3)
        assert sp.attrs == {"a": 3, "b": 2}

    def test_exception_still_finishes_spans(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        assert tracer.open_spans == 0
        names = [r["name"] for r in tracer.records()]
        assert sorted(names) == ["child", "root"]

    def test_dangling_child_popped_by_parent_exit(self, tracer):
        root = tracer.span("root")
        root.__enter__()
        tracer.span("dangling").__enter__()  # never exited directly
        root.__exit__(None, None, None)
        assert tracer.open_spans == 0
        assert len(tracer.records()) == 2

    def test_records_are_schema_valid_and_start_ordered(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        records = tracer.records()
        validate_trace(records)
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)

    def test_clear_resets_ids_and_epoch(self, tracer):
        with tracer.span("one"):
            pass
        tracer.clear()
        assert tracer.records() == []
        with tracer.span("two") as sp:
            pass
        assert sp.id == 0


class TestDisabledTracer:
    def test_span_is_shared_null(self):
        t = Tracer(enabled=False)
        a, b = t.span("a"), t.span("b", attr=1)
        assert isinstance(a, NullSpan)
        assert a is b  # shared instance: the disabled path allocates nothing

    def test_null_span_api(self):
        t = Tracer(enabled=False)
        with t.span("x") as sp:
            assert sp.tag(iterations=3) is sp
        assert t.records() == []

    def test_global_toggle(self, global_tracer):
        assert tracing_enabled()
        disable_tracing()
        assert not tracing_enabled()
        assert isinstance(get_tracer().span("x"), NullSpan)
        enable_tracing()
        assert tracing_enabled()


class TestNoopOverhead:
    def test_disabled_overhead_below_one_percent_of_solve(self, global_tracer):
        """Disabled tracing must cost <1% of a 48-market x H=6 solve.

        Direct A/B wall-clock comparison of two solves is noise-dominated,
        so instead: count the spans an enabled solve emits, measure the
        disabled per-call cost over many calls, and bound their product.
        """
        from repro.core import CostModel, MPOOptimizer
        from repro.experiments.fig7b_scalability import _replicated_markets
        from repro.markets import generate_market_dataset

        markets = _replicated_markets(48)
        dataset = generate_market_dataset(markets, intervals=3, seed=0)
        covariance = dataset.event_covariance()
        optimizer = MPOOptimizer(
            markets, horizon=6, cost_model=CostModel(churn_penalty=0.2)
        )
        inputs = (
            np.full(6, 10_000.0),
            np.tile(dataset.prices[0], (6, 1)),
            np.tile(dataset.failure_probs[0], (6, 1)),
            covariance,
        )
        optimizer.optimize(*inputs)  # warm up (cold factorization)

        tracer = get_tracer()
        tracer.clear()
        t0_s = time.perf_counter()
        optimizer.optimize(*inputs)
        solve_seconds = time.perf_counter() - t0_s
        spans_per_solve = len(tracer.records())
        assert spans_per_solve > 0

        disable_tracing()
        calls = 200_000
        t0_s = time.perf_counter()
        for _ in range(calls):
            tracer.span("noop")
        per_call = (time.perf_counter() - t0_s) / calls

        overhead = spans_per_solve * per_call
        assert overhead < 0.01 * solve_seconds, (
            f"{spans_per_solve} spans x {per_call * 1e9:.0f} ns "
            f"= {1000 * overhead:.4f} ms vs solve {1000 * solve_seconds:.2f} ms"
        )


class TestTraceIO:
    def test_round_trip(self, tracer, tmp_path):
        with tracer.span("root", kind="test"):
            with tracer.span("child", n=48):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        loaded = load_trace(path)
        assert loaded == tracer.records()

    def test_header_line_carries_schema(self, tracer, tmp_path):
        import json

        with tracer.span("root"):
            pass
        path = tracer.write(tmp_path / "t.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"schema": TRACE_SCHEMA, "kind": "header"}

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "spotweb-trace/99", "kind": "header"}\n')
        with pytest.raises(ValueError, match="unknown trace schema"):
            load_trace(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="JSONL"):
            load_trace(path)


def _record(**overrides):
    base = {
        "id": 0,
        "parent": None,
        "name": "root",
        "depth": 0,
        "start": 0.0,
        "dur": 1.0,
        "attrs": {},
    }
    base.update(overrides)
    return base


class TestValidateTrace:
    def test_accepts_valid_nested(self):
        validate_trace(
            [
                _record(),
                _record(id=1, parent=0, name="child", depth=1, start=0.1,
                        dur=0.5),
            ]
        )

    def test_rejects_missing_field(self):
        rec = _record()
        del rec["name"]
        with pytest.raises(ValueError, match="missing field"):
            validate_trace([rec])

    def test_rejects_mistyped_field(self):
        with pytest.raises(ValueError, match="has type"):
            validate_trace([_record(id="zero")])

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ValueError, match="has type"):
            validate_trace([_record(id=True)])

    def test_rejects_duplicate_id(self):
        with pytest.raises(ValueError, match="duplicate span id"):
            validate_trace([_record(), _record()])

    def test_rejects_unknown_parent(self):
        with pytest.raises(ValueError, match="unknown parent"):
            validate_trace([_record(id=1, parent=42, depth=1)])

    def test_rejects_depth_mismatch(self):
        with pytest.raises(ValueError, match="depth"):
            validate_trace([_record(), _record(id=1, parent=0, depth=5)])

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="negative duration"):
            validate_trace([_record(dur=-0.5)])

    def test_rejects_child_starting_before_parent(self):
        with pytest.raises(ValueError, match="starts before"):
            validate_trace(
                [
                    _record(start=1.0),
                    _record(id=1, parent=0, depth=1, start=0.0),
                ]
            )

    def test_write_trace_accepts_plain_records(self, tmp_path):
        path = write_trace([_record()], tmp_path / "t.jsonl")
        assert load_trace(path) == [_record()]
