"""Unit tests for price and failure predictors."""

import numpy as np
import pytest

from repro.predictors import (
    AR1PricePredictor,
    EWMAFailurePredictor,
    EWMAPricePredictor,
    OracleFailurePredictor,
    OraclePricePredictor,
    ReactiveFailurePredictor,
    ReactivePricePredictor,
)


class TestReactivePrice:
    def test_persistence(self):
        p = ReactivePricePredictor(3)
        p.observe([1.0, 2.0, 3.0])
        out = p.predict(2)
        np.testing.assert_array_equal(out, [[1, 2, 3], [1, 2, 3]])

    def test_validation(self):
        p = ReactivePricePredictor(2)
        with pytest.raises(ValueError):
            p.observe([1.0])
        with pytest.raises(ValueError):
            p.predict(0)
        with pytest.raises(ValueError):
            ReactivePricePredictor(0)


class TestEWMAPrice:
    def test_smooths(self):
        p = EWMAPricePredictor(1, alpha=0.5)
        p.observe([1.0])
        p.observe([3.0])
        assert p.predict(1)[0, 0] == pytest.approx(2.0)

    def test_cold_start(self):
        assert EWMAPricePredictor(2).predict(1).shape == (1, 2)


class TestAR1Price:
    def test_mean_reversion_direction(self):
        """A price below its long-run mean must be forecast to rise."""
        rng = np.random.default_rng(0)
        p = AR1PricePredictor(1, window=200)
        # AR(1) path around mean 1.0 ending at a dip.
        x = 1.0
        for _ in range(150):
            x = 1.0 + 0.8 * (x - 1.0) + 0.05 * rng.standard_normal()
            p.observe([x])
        p.observe([0.5])  # sharp dip
        forecast = p.predict(5)[:, 0]
        assert forecast[0] > 0.5
        assert np.all(np.diff(forecast) > 0)  # relaxing towards the mean

    def test_short_history_persists(self):
        p = AR1PricePredictor(2)
        p.observe([1.0, 2.0])
        np.testing.assert_array_equal(p.predict(2), [[1, 2], [1, 2]])

    def test_cold_start(self):
        np.testing.assert_array_equal(AR1PricePredictor(2).predict(1), [[0, 0]])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            AR1PricePredictor(1, window=2)


class TestOraclePrice:
    def test_exact(self):
        prices = np.arange(12, dtype=np.float64).reshape(4, 3)
        p = OraclePricePredictor(prices)
        np.testing.assert_array_equal(p.predict(2), prices[:2])
        p.observe(prices[0])
        np.testing.assert_array_equal(p.predict(2), prices[1:3])

    def test_clamps(self):
        p = OraclePricePredictor(np.ones((2, 2)))
        p.observe(None)
        p.observe(None)
        assert p.predict(3).shape == (3, 2)


class TestFailurePredictors:
    def test_reactive(self):
        p = ReactiveFailurePredictor(2)
        p.observe([0.1, 0.2])
        np.testing.assert_array_equal(p.predict(3), np.tile([0.1, 0.2], (3, 1)))

    def test_reactive_validates_probs(self):
        p = ReactiveFailurePredictor(2)
        with pytest.raises(ValueError):
            p.observe([0.5, 1.5])

    def test_ewma(self):
        p = EWMAFailurePredictor(1, alpha=0.5)
        p.observe([0.0])
        p.observe([0.2])
        assert p.predict(1)[0, 0] == pytest.approx(0.1)

    def test_oracle(self):
        probs = np.array([[0.1], [0.3], [0.5]])
        p = OracleFailurePredictor(probs)
        p.observe(probs[0])
        np.testing.assert_array_equal(p.predict(2), [[0.3], [0.5]])

    def test_observe_many(self):
        p = ReactiveFailurePredictor(2)
        p.observe_many(np.array([[0.1, 0.1], [0.2, 0.3]]))
        np.testing.assert_array_equal(p.predict(1), [[0.2, 0.3]])
