"""Unit and property tests for the revocation models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.markets import (
    CorrelatedRevocationSampler,
    PurchaseOption,
    RevocationModel,
    default_catalog,
    event_covariance,
    failure_covariance,
    generate_price_matrix,
)


@pytest.fixture(scope="module")
def markets():
    return default_catalog().spot_markets(8)


@pytest.fixture(scope="module")
def prices(markets):
    return generate_price_matrix(markets, 24 * 7, seed=0)


class TestRevocationModel:
    def test_probabilities_in_range(self, markets, prices):
        model = RevocationModel(markets, seed=0)
        f = model.probabilities(prices)
        assert f.shape == prices.shape
        assert np.all((f >= 0) & (f <= 0.95))

    def test_ondemand_markets_never_fail(self):
        catalog = default_catalog()
        mixed = [
            catalog.market("m4.large", PurchaseOption.ON_DEMAND),
            catalog.market("m4.large", PurchaseOption.SPOT),
        ]
        prices = generate_price_matrix(mixed, 48, seed=1)
        f = RevocationModel(mixed, seed=1).probabilities(prices)
        assert np.all(f[:, 0] == 0.0)
        assert np.all(f[:, 1] > 0.0)

    def test_price_pressure_raises_failure_probability(self, markets):
        model = RevocationModel(markets, seed=2, price_sensitivity=2.0)
        ondemand = np.array([m.instance.ondemand_price for m in markets])
        cheap = np.tile(0.1 * ondemand, (50, 1))
        pricey = np.tile(0.9 * ondemand, (50, 1))
        assert (
            model.probabilities(pricey).mean()
            > model.probabilities(cheap).mean()
        )

    def test_deterministic_given_seed(self, markets, prices):
        f1 = RevocationModel(markets, seed=3).probabilities(prices)
        f2 = RevocationModel(markets, seed=3).probabilities(prices)
        np.testing.assert_array_equal(f1, f2)

    def test_width_mismatch_rejected(self, markets):
        model = RevocationModel(markets)
        with pytest.raises(ValueError):
            model.probabilities(np.ones((5, 3)))


class TestCovariances:
    def test_failure_covariance_positive_definite(self, markets, prices):
        f = RevocationModel(markets, seed=0).probabilities(prices)
        M = failure_covariance(f)
        assert np.all(np.linalg.eigvalsh(M) > 0)

    def test_event_covariance_diag_is_bernoulli_variance(self):
        probs = np.tile([0.1, 0.3], (50, 1))
        M = event_covariance(probs)
        assert M[0, 0] == pytest.approx(0.1 * 0.9, rel=0.01)
        assert M[1, 1] == pytest.approx(0.3 * 0.7, rel=0.01)

    def test_event_covariance_couples_comoving_markets(self):
        rng = np.random.default_rng(0)
        base = 0.1 + 0.05 * rng.normal(size=200)
        probs = np.clip(np.column_stack([base, base, rng.uniform(0.05, 0.15, 200)]), 0, 1)
        M = event_covariance(probs)
        assert M[0, 1] > 5 * abs(M[0, 2])

    def test_single_row_fallback(self):
        M = failure_covariance(np.array([[0.1, 0.2]]))
        assert M.shape == (2, 2)
        assert np.all(np.linalg.eigvalsh(M) > 0)

    def test_event_covariance_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            event_covariance(np.array([[0.5, 1.5]]))


class TestCorrelatedRevocationSampler:
    def test_marginals_match(self):
        n = 4
        corr = np.eye(n)
        sampler = CorrelatedRevocationSampler(corr, seed=0)
        p = np.array([0.05, 0.2, 0.5, 0.0])
        draws = np.stack([sampler.sample(p) for _ in range(4000)])
        rates = draws.mean(axis=0)
        # Binomial 4-sigma band.
        for i in range(n):
            sigma = np.sqrt(max(p[i] * (1 - p[i]), 1e-9) / 4000)
            assert abs(rates[i] - p[i]) < 4 * sigma + 1e-9

    def test_exact_zero_and_one(self):
        sampler = CorrelatedRevocationSampler(np.eye(2), seed=1)
        draws = np.stack(
            [sampler.sample(np.array([0.0, 1.0])) for _ in range(100)]
        )
        assert not draws[:, 0].any()
        assert draws[:, 1].all()

    def test_positive_correlation_increases_joint_failures(self):
        p = np.array([0.2, 0.2])
        ind = CorrelatedRevocationSampler(np.eye(2), seed=2)
        corr = CorrelatedRevocationSampler(
            np.array([[1.0, 0.9], [0.9, 1.0]]), seed=2
        )
        joint_ind = np.mean(
            [ind.sample(p).all() for _ in range(5000)]
        )
        joint_corr = np.mean(
            [corr.sample(p).all() for _ in range(5000)]
        )
        assert joint_corr > joint_ind * 1.5

    def test_non_psd_correlation_repaired(self):
        bad = np.array([[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]])
        sampler = CorrelatedRevocationSampler(bad, seed=3)
        # Must not raise and must produce valid draws.
        out = sampler.sample(np.array([0.1, 0.1, 0.1]))
        assert out.shape == (3,)

    def test_sample_path_shape(self):
        sampler = CorrelatedRevocationSampler(np.eye(3), seed=4)
        path = sampler.sample_path(np.full((10, 3), 0.1))
        assert path.shape == (10, 3)
        assert path.dtype == bool

    def test_validation(self):
        sampler = CorrelatedRevocationSampler(np.eye(2), seed=5)
        with pytest.raises(ValueError):
            sampler.sample(np.array([0.1]))
        with pytest.raises(ValueError):
            sampler.sample(np.array([0.1, 1.2]))
        with pytest.raises(ValueError):
            CorrelatedRevocationSampler(np.ones((2, 3)))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 8),
    rows=st.integers(2, 40),
)
def test_event_covariance_always_psd(seed, n, rows):
    rng = np.random.default_rng(seed)
    probs = rng.uniform(0.0, 0.5, size=(rows, n))
    M = event_covariance(probs)
    w = np.linalg.eigvalsh(M)
    assert np.all(w > 0)
    np.testing.assert_allclose(M, M.T, atol=1e-12)
