"""Tests for the shared shape/dtype spec grammar (``repro.devtools.specs``).

The grammar has two consumers — the runtime contracts and the static
spotshape checker — so parse/format behavior is pinned down here once.
"""

from __future__ import annotations

import pytest

from repro.devtools.specs import (
    DTYPE_CODES,
    ShapeSpec,
    format_spec,
    parse_alternative,
    parse_spec,
)


# ------------------------------------------------------------------ parsing
def test_parse_symbols_literals_and_wildcards():
    spec = parse_alternative("(H, N, 3, *)")
    assert spec.dims == ("H", "N", 3, "*")
    assert spec.dtype is None
    assert spec.rank == 4


def test_parse_scalar_and_vector():
    assert parse_alternative("()").dims == ()
    assert parse_alternative("(N,)").dims == ("N",)


def test_parse_dtype_suffixes():
    for code, canonical in DTYPE_CODES.items():
        spec = parse_alternative(f"(N,) {code}")
        assert spec.dtype == code
        assert canonical  # every code maps to a canonical NumPy name
    assert DTYPE_CODES["f8"] == "float64"
    assert DTYPE_CODES["i8"] == "int64"


def test_parse_alternatives_split_on_pipe():
    alts = parse_spec("()|(H,)|(H,N) f4")
    assert [a.dims for a in alts] == [(), ("H",), ("H", "N")]
    assert [a.dtype for a in alts] == [None, None, "f4"]


@pytest.mark.parametrize(
    "bad",
    [
        "N,",  # not parenthesized
        "(N,) f16",  # unknown dtype suffix
        "(N,) float64",  # canonical names are not suffixes
        "(N-1,)",  # expressions are not dims
    ],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_alternative(bad)


# --------------------------------------------------------------- formatting
@pytest.mark.parametrize(
    "text",
    ["()", "(N,)", "(H,N)", "(2,*)", "(N,) f8", "()|(H,)", "(T,N) i8|(N,) f4"],
)
def test_format_roundtrips_canonical_text(text):
    assert format_spec(parse_spec(text)) == text


def test_format_accepts_a_single_alternative():
    assert format_spec(ShapeSpec(dims=("N",), dtype="f8")) == "(N,) f8"


def test_roundtrip_is_identity_on_parsed_form():
    for text in ["(H, N ) f8", "( ) | (N,)"]:
        parsed = parse_spec(text)
        assert parse_spec(format_spec(parsed)) == parsed
