"""Tests for the shared spec grammars (``repro.devtools.specs``).

Each grammar has two consumers — the runtime contracts and a static
checker (spotshape for shapes, spotunits for units of measure) — so
parse/format behavior is pinned down here once.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.devtools.specs import (
    DIMENSIONLESS,
    DTYPE_CODES,
    UNIT_ALIASES,
    UNIT_TOKENS,
    ShapeSpec,
    UnitSpec,
    format_spec,
    format_unit,
    parse_alternative,
    parse_spec,
    parse_unit,
)


# ------------------------------------------------------------------ parsing
def test_parse_symbols_literals_and_wildcards():
    spec = parse_alternative("(H, N, 3, *)")
    assert spec.dims == ("H", "N", 3, "*")
    assert spec.dtype is None
    assert spec.rank == 4


def test_parse_scalar_and_vector():
    assert parse_alternative("()").dims == ()
    assert parse_alternative("(N,)").dims == ("N",)


def test_parse_dtype_suffixes():
    for code, canonical in DTYPE_CODES.items():
        spec = parse_alternative(f"(N,) {code}")
        assert spec.dtype == code
        assert canonical  # every code maps to a canonical NumPy name
    assert DTYPE_CODES["f8"] == "float64"
    assert DTYPE_CODES["i8"] == "int64"


def test_parse_alternatives_split_on_pipe():
    alts = parse_spec("()|(H,)|(H,N) f4")
    assert [a.dims for a in alts] == [(), ("H",), ("H", "N")]
    assert [a.dtype for a in alts] == [None, None, "f4"]


@pytest.mark.parametrize(
    "bad",
    [
        "N,",  # not parenthesized
        "(N,) f16",  # unknown dtype suffix
        "(N,) float64",  # canonical names are not suffixes
        "(N-1,)",  # expressions are not dims
    ],
)
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_alternative(bad)


# --------------------------------------------------------------- formatting
@pytest.mark.parametrize(
    "text",
    ["()", "(N,)", "(H,N)", "(2,*)", "(N,) f8", "()|(H,)", "(T,N) i8|(N,) f4"],
)
def test_format_roundtrips_canonical_text(text):
    assert format_spec(parse_spec(text)) == text


def test_format_accepts_a_single_alternative():
    assert format_spec(ShapeSpec(dims=("N",), dtype="f8")) == "(N,) f8"


def test_roundtrip_is_identity_on_parsed_form():
    for text in ["(H, N ) f8", "( ) | (N,)"]:
        parsed = parse_spec(text)
        assert parse_spec(format_spec(parsed)) == parsed


# ------------------------------------------------------------ units: parsing
def test_unit_spellings_canonicalize_to_one_form():
    assert parse_unit("usd/(server*hr)") == parse_unit("usd/hr/server")
    assert parse_unit("usd/(server*hr)") == parse_unit("usd*hr^-1*server^-1")
    assert parse_unit("rps") == parse_unit("req/s")
    assert parse_unit("1") == DIMENSIONLESS
    assert parse_unit("s/s") == DIMENSIONLESS
    assert parse_unit("1/s") == parse_unit("s^-1")


def test_unit_exponents_including_fractional():
    assert parse_unit("s^2") == UnitSpec(factors=(("s", Fraction(2)),))
    assert parse_unit("s^(1/2)") == UnitSpec(factors=(("s", Fraction(1, 2)),))
    assert parse_unit("(req/s)^2") == parse_unit("req^2/s^2")
    assert parse_unit("s^(-1)") == parse_unit("1/s")


def test_unit_dimensions_and_scales_are_exact():
    assert parse_unit("hr").dimensions() == {"sim_time": Fraction(1)}
    assert parse_unit("hr").scale() == Fraction(3600)
    assert parse_unit("ms").scale() == Fraction(1, 1000)
    # usd/(rps*hr) expands rps to req/s; the s and hr exponents cancel
    # dimensionally (both sim_time) but their scales do not.
    per_req = parse_unit("usd/(rps*hr)")
    assert per_req.dimensions() == {
        "dollar": Fraction(1),
        "request": Fraction(-1),
    }
    assert per_req.scale() == Fraction(1, 3600)
    for token, (dim, scale) in UNIT_TOKENS.items():
        spec = parse_unit(token)
        assert spec.dimensions() == {dim: Fraction(1)}
        assert spec.scale() == scale


def test_unit_equivalence_requires_dims_and_scale():
    assert parse_unit("rps").equivalent(parse_unit("req/s"))
    assert parse_unit("kreq/s").equivalent(parse_unit("req/ms"))  # both 1000x
    assert not parse_unit("s").equivalent(parse_unit("hr"))
    assert not parse_unit("s").equivalent(parse_unit("wall_s"))
    for alias, expansion in UNIT_ALIASES.items():
        assert parse_unit(alias) == parse_unit(expansion)


@pytest.mark.parametrize(
    "bad",
    [
        "",  # empty
        "  ",  # blank
        "furlongs",  # unknown token
        "s^0",  # zero exponent
        "s^(1/0)",  # zero denominator
        "s//hr",  # dangling operator
        "s hr",  # missing operator
        "s^x",  # non-integer exponent
        "(s",  # unbalanced parens
        "$",  # bad character
    ],
)
def test_parse_unit_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_unit(bad)


# --------------------------------------------------------- units: formatting
@pytest.mark.parametrize(
    "text",
    [
        "1",
        "s",
        "req/s",
        "usd/(server*hr)",
        "usd/hr/server",
        "s^2",
        "s^(1/2)",
        "1/s",
        "rps",
        "ms*req",
        "wall_s",
        "s/interval",
        "usd/(rps*hr)",
    ],
)
def test_format_unit_roundtrips(text):
    # The guarantee the summaries/cache layer relies on: formatting then
    # re-parsing is the identity on the parsed form.
    parsed = parse_unit(text)
    assert parse_unit(format_unit(parsed)) == parsed


def test_format_unit_orders_factors_canonically():
    # Positives in token-declaration order, then negatives as divisions.
    assert format_unit(parse_unit("req/hr/s*usd")) == "req*usd/s/hr"
    assert format_unit(parse_unit("1/s")) == "1/s"
    assert format_unit(DIMENSIONLESS) == "1"
