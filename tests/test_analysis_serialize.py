"""Unit tests for report serialization."""

import numpy as np
import pytest

from repro.analysis.serialize import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.simulator.runner import SimulationReport


@pytest.fixture
def report():
    rng = np.random.default_rng(0)
    return SimulationReport(
        name="demo",
        provisioning_cost=123.4,
        sla_penalty_cost=5.6,
        unserved_requests=1000.0,
        total_requests=1e6,
        revocation_events=7,
        decision_seconds=0.42,
        interval_costs=rng.uniform(0, 10, 24),
        counts=rng.integers(0, 5, size=(24, 3)),
        capacity_rps=rng.uniform(100, 200, 24),
        demand_rps=rng.uniform(50, 150, 24),
    )


class TestRoundTrip:
    def test_dict_round_trip(self, report):
        restored = report_from_dict(report_to_dict(report))
        assert restored.name == report.name
        assert restored.total_cost == pytest.approx(report.total_cost)
        np.testing.assert_array_equal(restored.counts, report.counts)
        np.testing.assert_allclose(restored.demand_rps, report.demand_rps)

    def test_file_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        restored = load_report(path)
        assert restored.savings_vs(report) == pytest.approx(0.0)
        assert restored.unserved_fraction == pytest.approx(
            report.unserved_fraction
        )

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing report fields"):
            report_from_dict({"name": "x"})

    def test_real_sim_report_serializes(self, small_dataset, wiki_week, tmp_path):
        from repro.baselines import ExoSphereLoopPolicy
        from repro.simulator import CostSimulator

        sim = CostSimulator(small_dataset, wiki_week, seed=0)
        rep = sim.run(ExoSphereLoopPolicy(small_dataset.markets), name="exo")
        path = tmp_path / "exo.json"
        save_report(rep, path)
        assert load_report(path).total_cost == pytest.approx(rep.total_cost)
