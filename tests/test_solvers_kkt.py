"""Unit tests for KKT residual computation."""

import numpy as np
import pytest

from repro.solvers import QPProblem, check_kkt
from repro.solvers.kkt import kkt_residuals


@pytest.fixture
def box_problem():
    # min (x - 2)^2 s.t. 0 <= x <= 1: optimum x = 1, y = gradient = -2(2-1)=2.
    return QPProblem(2 * np.eye(1), [-4.0], [[1.0]], [0.0], [1.0])


class TestKKTResiduals:
    def test_true_optimum_passes(self, box_problem):
        # At x=1: P x + q + A'y = 2 - 4 + y = 0 -> y = 2 (active upper bound).
        res = kkt_residuals(box_problem, np.array([1.0]), np.array([2.0]))
        assert res.max() < 1e-9
        assert check_kkt(box_problem, [1.0], [2.0])

    def test_infeasible_point_flagged(self, box_problem):
        res = kkt_residuals(box_problem, np.array([1.5]), np.array([0.0]))
        assert res.primal == pytest.approx(0.5)

    def test_nonstationary_point_flagged(self, box_problem):
        res = kkt_residuals(box_problem, np.array([0.5]), np.array([0.0]))
        assert res.dual == pytest.approx(3.0)  # |2*0.5 - 4|

    def test_complementarity_violation_flagged(self, box_problem):
        # x = 0.5 is interior; any nonzero multiplier violates complementarity.
        res = kkt_residuals(box_problem, np.array([0.5]), np.array([1.0]))
        assert res.complementarity > 0.1

    def test_wrong_sign_multiplier_flagged(self, box_problem):
        # Negative multiplier at the upper bound pairs with the lower gap.
        res = kkt_residuals(box_problem, np.array([1.0]), np.array([-2.0]))
        assert res.max() > 0.1

    def test_infinite_bounds_handled(self):
        prob = QPProblem(2 * np.eye(1), [-4.0], [[1.0]], [-np.inf], [np.inf])
        res = kkt_residuals(prob, np.array([2.0]), np.array([0.0]))
        assert res.max() < 1e-9
