"""Unit tests for the transient cloud provider model."""

import pytest

from repro.markets import TransientCloud, VMState, default_catalog
from repro.markets.catalog import PurchaseOption


@pytest.fixture
def cloud():
    return TransientCloud(warning_seconds=120.0, startup_seconds=60.0)


@pytest.fixture
def market(catalog):
    return catalog.market("m5.xlarge")


class TestLeases:
    def test_request_creates_starting_vms(self, cloud, market):
        vms = cloud.request(market, 3, now=0.0)
        assert len(vms) == 3
        assert all(vm.state is VMState.STARTING for vm in vms)
        assert all(vm.ready_time == 60.0 for vm in vms)

    def test_vms_serve_after_startup(self, cloud, market):
        cloud.request(market, 2, now=0.0)
        assert cloud.serving_capacity(30.0) == 0.0
        cloud.advance(61.0)
        assert cloud.serving_capacity(61.0) == 2 * market.capacity_rps

    def test_custom_startup(self, cloud, market):
        (vm,) = cloud.request(market, 1, now=0.0, startup_seconds=5.0)
        assert vm.ready_time == 5.0

    def test_negative_count_rejected(self, cloud, market):
        with pytest.raises(ValueError):
            cloud.request(market, -1, now=0.0)

    def test_user_termination_bills_and_stops(self, cloud, market):
        (vm,) = cloud.request(market, 1, now=0.0)
        cloud.advance(100.0)
        cloud.terminate(vm, 3600.0)
        assert vm.state is VMState.TERMINATED
        assert vm.accrued_cost == pytest.approx(market.instance.ondemand_price)
        # Idempotent.
        cloud.terminate(vm, 7200.0)
        assert vm.accrued_cost == pytest.approx(market.instance.ondemand_price)


class TestRevocations:
    def test_warning_then_termination(self, cloud, market):
        vms = cloud.request(market, 2, now=0.0)
        cloud.advance(100.0)
        warned = []
        cloud.on_warning(lambda vm, t: warned.append((vm.vm_id, t)))
        cloud.revoke_market(market, 200.0)
        assert len(warned) == 2
        assert all(t == 200.0 for _, t in warned)
        assert all(vm.state is VMState.WARNED for vm in vms)
        # Warned VMs still serve until the deadline.
        assert cloud.serving_capacity(250.0) == 2 * market.capacity_rps
        dead = cloud.advance(320.0)
        assert len(dead) == 2
        assert cloud.serving_capacity(321.0) == 0.0

    def test_revoking_ondemand_rejected(self, cloud, catalog):
        od = catalog.market("m5.xlarge", PurchaseOption.ON_DEMAND)
        with pytest.raises(ValueError):
            cloud.revoke_market(od, 0.0)
        cloud2 = TransientCloud()
        (vm,) = cloud2.request(od, 1, now=0.0)
        with pytest.raises(ValueError):
            cloud2.revoke_vm(vm, 10.0)

    def test_termination_callback(self, cloud, market):
        (vm,) = cloud.request(market, 1, now=0.0)
        cloud.advance(100.0)
        deaths = []
        cloud.on_termination(lambda v, t: deaths.append((v.vm_id, t)))
        cloud.revoke_vm(vm, 200.0)
        cloud.advance(400.0)
        assert deaths == [(vm.vm_id, 320.0)]

    def test_billing_stops_at_warning_deadline(self, cloud, market):
        (vm,) = cloud.request(market, 1, now=0.0)
        cloud.revoke_market(market, 0.0)
        cloud.advance(7200.0)
        # Billed only for the 120 s warning window.
        expected = market.instance.ondemand_price * (120.0 / 3600.0)
        assert vm.accrued_cost == pytest.approx(expected)

    def test_warning_during_boot(self, cloud, market):
        """A VM warned while still booting dies without ever serving."""
        (vm,) = cloud.request(market, 1, now=0.0)
        cloud.revoke_market(market, 10.0)
        cloud.advance(200.0)
        assert vm.state is VMState.TERMINATED


class TestBilling:
    def test_spot_price_function_used(self, catalog):
        market = catalog.market("m5.xlarge")
        cloud = TransientCloud(price_fn=lambda m, t: 0.05)
        (vm,) = cloud.request(market, 1, now=0.0)
        cloud.accrue(7200.0)
        assert vm.accrued_cost == pytest.approx(0.10)
        assert cloud.total_cost() == pytest.approx(0.10)

    def test_live_vm_lookup(self, cloud, market, catalog):
        other = catalog.market("c5.large")
        cloud.request(market, 2, now=0.0)
        cloud.request(other, 1, now=0.0)
        assert len(cloud.live_vms()) == 3
        assert len(cloud.live_vms(market)) == 2
