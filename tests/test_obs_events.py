"""Tests for the spotweb-events/1 journal: emission, causality, IO."""

import json

import numpy as np
import pytest

from repro.obs import (
    EVENTS_SCHEMA,
    EventLog,
    EventValidationError,
    disable_events,
    enable_events,
    events_enabled,
    get_events,
    load_events,
    set_events,
    validate_events,
    write_events,
)


@pytest.fixture
def log():
    return EventLog(enabled=True)


@pytest.fixture
def global_log():
    """Install a fresh enabled global event log; restore the old after."""
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


class TestEmission:
    def test_disabled_is_noop(self):
        log = EventLog(enabled=False)
        log.emit("server.drain", backend=1)
        wid = log.open_warning(1, t=0.0)
        assert wid is None
        log.resolve_warning(wid, t=1.0)
        assert log.records() == []

    def test_seq_strictly_increasing(self, log):
        for i in range(5):
            log.emit("lb.reweight", t=float(i))
        seqs = [r["seq"] for r in log.records()]
        assert seqs == sorted(set(seqs))

    def test_clock_and_interval_defaults(self, log):
        log.set_interval(3, 42.0)
        log.emit("interval.plan", demand_rps=1.0)
        rec = log.records()[-1]
        assert rec["t"] == 42.0
        assert rec["interval"] == 3

    def test_attrs_coerced_to_json_native(self, log):
        log.emit(
            "market.revocations",
            t=0.0,
            count=np.int64(2),
            markets=[np.int64(0), np.int64(3)],
            share=np.float64(0.5),
        )
        rec = log.records()[-1]
        json.dumps(rec)  # must not raise
        assert rec["attrs"]["count"] == 2
        assert rec["attrs"]["markets"] == [0, 3]

    def test_causal_scope_sets_default_cause(self, log):
        wid = log.open_warning(7, t=0.0)
        with log.causal(wid):
            assert log.current_cause() == wid
            log.emit("replacement.request", t=0.0, backend=7)
        log.emit("lb.reweight", t=1.0)
        recs = log.records()
        assert recs[1]["cause"] == wid
        assert recs[2]["cause"] is None


class TestWarningLifecycle:
    def test_outcome_failed_when_requests_lost(self, log):
        wid = log.open_warning(1, t=0.0)
        log.resolve_warning(wid, t=5.0, lost=12)
        rec = log.records()[-1]
        assert rec["kind"] == "warning.resolved"
        assert rec["attrs"]["outcome"] == "failed"
        assert rec["cause"] == wid

    def test_outcome_migrated_when_sessions_moved(self, log):
        wid = log.open_warning(1, t=0.0)
        log.emit("session.migrate", t=1.0, cause=wid, migrated=30)
        log.resolve_warning(wid, t=5.0, lost=0)
        rec = log.records()[-1]
        assert rec["attrs"]["outcome"] == "migrated"
        assert rec["attrs"]["migrated"] == 30

    def test_outcome_completed_otherwise(self, log):
        wid = log.open_warning(1, t=0.0)
        log.resolve_warning(wid, t=5.0)
        assert log.records()[-1]["attrs"]["outcome"] == "completed"

    def test_resolution_is_idempotent(self, log):
        wid = log.open_warning(1, t=0.0)
        log.resolve_warning(wid, t=5.0)
        log.resolve_warning(wid, t=6.0)
        kinds = [r["kind"] for r in log.records()]
        assert kinds.count("warning.resolved") == 1

    def test_warning_for_backend_lookup(self, log):
        wid = log.open_warning("vm-3", t=0.0)
        assert log.warning_for("vm-3") == wid
        assert log.warning_for("vm-4") is None
        log.resolve_warning(wid, t=1.0)
        assert log.warning_for("vm-3") is None

    def test_last_open_warning(self, log):
        w0 = log.open_warning(0, t=0.0)
        w1 = log.open_warning(1, t=0.0)
        assert log.last_open_warning() == w1
        log.resolve_warning(w1, t=1.0)
        assert log.last_open_warning() is None
        assert log.open_warning_count() == 1
        log.resolve_warning(w0, t=1.0)
        assert log.open_warning_count() == 0


class TestAdopt:
    def test_adopt_prefixes_ids_and_causes(self, log):
        cell = EventLog(enabled=True)
        wid = cell.open_warning(1, t=0.0)
        cell.resolve_warning(wid, t=1.0)
        log.adopt(cell.records(), cell=4)
        recs = log.records()
        assert recs[0]["id"] == "c4.w0"
        assert recs[1]["cause"] == "c4.w0"
        assert recs[0]["attrs"]["cell"] == 4
        validate_events(recs)

    def test_adopt_resequences(self, log):
        log.emit("lb.reweight", t=0.0)
        cell = EventLog(enabled=True)
        cell.emit("lb.reweight", t=0.0)
        log.adopt(cell.records(), cell=0)
        assert [r["seq"] for r in log.records()] == [0, 1]


class TestGlobals:
    def test_enable_clears_previous_journal(self, global_log):
        global_log.emit("lb.reweight", t=0.0)
        log = enable_events()
        assert log.records() == []
        assert events_enabled()
        disable_events()
        assert not events_enabled()

    def test_env_opt_in(self, monkeypatch):
        from repro.obs.events import _enabled_from_env

        monkeypatch.delenv("SPOTWEB_EVENTS", raising=False)
        assert not _enabled_from_env()
        monkeypatch.setenv("SPOTWEB_EVENTS", "0")
        assert not _enabled_from_env()
        monkeypatch.setenv("SPOTWEB_EVENTS", "1")
        assert _enabled_from_env()


class TestIO:
    def test_round_trip(self, log, tmp_path):
        wid = log.open_warning(1, t=0.0, capacity_rps=80.0)
        with log.causal(wid):
            log.emit("server.drain", t=1.0, backend=1)
        log.resolve_warning(wid, t=5.0)
        path = tmp_path / "events.jsonl"
        write_events(log.records(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == EVENTS_SCHEMA
        assert load_events(path) == log.records()

    def test_write_is_deterministic(self, log, tmp_path):
        log.emit("lb.reweight", t=0.0, backends=3, total_weight=1.5)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_events(log.records(), a)
        write_events(log.records(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_malformed_json_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema": EVENTS_SCHEMA, "kind": "header"})
            + "\n{not json\n"
        )
        with pytest.raises(EventValidationError, match="line 2"):
            load_events(path)

    def test_missing_field_reports_line_and_field(self, log, tmp_path):
        log.emit("lb.reweight", t=0.0)
        records = log.records()
        del records[0]["kind"]
        path = tmp_path / "bad.jsonl"
        write_events(records, path)
        with pytest.raises(EventValidationError, match="kind") as err:
            load_events(path)
        assert "line 2" in str(err.value)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "spotweb-trace/1", "kind": "header"}\n')
        with pytest.raises(EventValidationError, match="schema"):
            load_events(path)


class TestValidation:
    def test_valid_journal_passes(self, log):
        wid = log.open_warning(1, t=0.0)
        log.resolve_warning(wid, t=1.0)
        validate_events(log.records())

    def test_unknown_cause_rejected(self, log):
        log.emit("server.drain", t=0.0, cause="w9", backend=1)
        with pytest.raises(EventValidationError, match="cause"):
            validate_events(log.records())

    def test_duplicate_id_rejected(self, log):
        log.emit("warning.issued", t=0.0, event_id="w0")
        log.emit("warning.issued", t=0.0, event_id="w0")
        with pytest.raises(EventValidationError, match="id"):
            validate_events(log.records())

    def test_non_monotone_seq_rejected(self, log):
        log.emit("lb.reweight", t=0.0)
        log.emit("lb.reweight", t=1.0)
        records = log.records()
        records[1]["seq"] = 0
        with pytest.raises(EventValidationError, match="seq"):
            validate_events(records)

    def test_unresolved_warning_rejected(self, log):
        log.open_warning(1, t=0.0)
        with pytest.raises(EventValidationError, match="never resolved"):
            validate_events(log.records())
        validate_events(log.records(), require_resolution=False)

    def test_non_terminal_outcome_rejected(self, log):
        wid = log.open_warning(1, t=0.0)
        log.resolve_warning(wid, t=1.0, outcome="vanished")
        with pytest.raises(EventValidationError, match="outcome"):
            validate_events(log.records())
