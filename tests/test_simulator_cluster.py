"""Integration-style tests for the request-level cluster simulation."""

import numpy as np
import pytest

from repro.loadbalancer import TransiencyAwareLoadBalancer
from repro.simulator import ClusterConfig, ClusterSimulation


def quick_config(**kw):
    defaults = dict(seed=0, boot_seconds=5.0, warmup_seconds=5.0)
    defaults.update(kw)
    return ClusterConfig(**defaults)


class TestSteadyState:
    def test_low_utilization_serves_everything(self):
        cluster = ClusterSimulation(quick_config())
        cluster.add_server(100.0, boot_seconds=0.0)
        rec = cluster.run(30.0, rate=40.0)
        assert rec.drop_rate() < 0.01
        assert rec.mean() < 0.5
        assert rec.served > 30 * 40 * 0.8

    def test_overload_drops(self):
        cluster = ClusterSimulation(quick_config())
        cluster.add_server(20.0, boot_seconds=0.0)
        rec = cluster.run(30.0, rate=100.0)
        assert rec.drop_rate() > 0.3

    def test_time_varying_rate(self):
        cluster = ClusterSimulation(quick_config())
        cluster.add_server(200.0, boot_seconds=0.0)
        rec = cluster.run(20.0, rate=lambda t: 10.0 if t < 10 else 100.0)
        early = rec.window(0.0, 10.0)
        late = rec.window(10.0, 20.0)
        assert late.size > 3 * early.size


class TestRevocation:
    def test_revocation_kills_after_warning(self):
        cfg = quick_config(warning_seconds=5.0)
        cluster = ClusterSimulation(cfg)
        s = cluster.add_server(100.0, boot_seconds=0.0)
        cluster.schedule_revocation(s.server_id, 10.0)
        cluster.run(30.0, rate=10.0)
        assert not s.alive
        # Capacity timeline recorded the death.
        times = [t for t, _ in cluster.capacity_timeline]
        assert any(abs(t - 15.0) < 1e-6 for t in times)

    def test_transiency_lb_reprovision_hook(self):
        cfg = quick_config(warning_seconds=20.0, boot_seconds=5.0)
        cluster_ref = {}

        def reprovision(capacity, _now):
            cluster_ref["c"].add_server(capacity)

        factory = lambda rec: TransiencyAwareLoadBalancer(  # noqa: E731
            rec, reprovision=reprovision
        )
        cluster = ClusterSimulation(cfg, factory)
        cluster_ref["c"] = cluster
        a = cluster.add_server(50.0, boot_seconds=0.0)
        cluster.add_server(50.0, boot_seconds=0.0)
        cluster.schedule_revocation(a.server_id, 5.0)
        rec = cluster.run(60.0, rate=80.0)
        # A replacement was started (3 servers total seen).
        assert len(cluster.servers) == 3
        assert rec.drop_rate() < 0.2


class TestSessions:
    def test_sessions_created_and_reused(self):
        cfg = quick_config(new_session_probability=0.5)
        cluster = ClusterSimulation(cfg)
        cluster.add_server(100.0, boot_seconds=0.0)
        cluster.run(10.0, rate=50.0)
        assert cluster._next_session > 10
        assert len(cluster.balancer.sessions) > 0


class TestValidation:
    def test_bad_duration(self):
        cluster = ClusterSimulation(quick_config())
        with pytest.raises(ValueError):
            cluster.run(0.0, rate=10.0)

    def test_bad_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(service_time=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(new_session_probability=2.0)
