"""Tests for the `repro top` dashboard state folding and rendering."""

import io

from repro.obs import DashRenderer, DashState, render_dash


def events_delta(seq, t, interval, events):
    return {
        "type": "events",
        "seq": seq,
        "t": t,
        "interval": interval,
        "events": events,
    }


def event(kind, t, interval=0, **attrs):
    return {
        "kind": kind,
        "t": t,
        "interval": interval,
        "id": None,
        "cause": None,
        "attrs": attrs,
    }


def sample_frame(state):
    """Fold one representative frame of deltas into ``state``."""
    state(
        events_delta(
            0,
            60.0,
            0,
            [
                event(
                    "interval.plan",
                    60.0,
                    demand_rps=1200.0,
                    capacity_rps=1500.0,
                    servers=5,
                    shortfall_rps=0.0,
                    revoked=2,
                    cost=0.25,
                ),
                event(
                    "telemetry.fleet",
                    60.0,
                    servers=5,
                    by_market={"m0": 3, "m2": 2},
                ),
                event("warning.issued", 55.0),
                event(
                    "telemetry.anomaly",
                    60.0,
                    series="slo.p99",
                    detector="cusum",
                    value=2.0,
                    score=6.5,
                ),
            ],
        )
    )
    state(
        {
            "type": "slo",
            "seq": 1,
            "t": 60.0,
            "interval": 0,
            "points": [
                {
                    "interval": 0,
                    "t": 60.0,
                    "requests": 480,
                    "compliance": 0.97,
                    "burn": 3.0,
                    "p50": 0.1,
                    "p95": 0.5,
                    "p99": 0.9,
                }
            ],
        }
    )
    state({"type": "tick", "seq": 2, "t": 60.0, "interval": 0})


class TestDashState:
    def test_folds_one_frame(self):
        state = DashState()
        sample_frame(state)
        assert state.t == 60.0 and state.interval == 0
        assert state.demand_rps == 1200.0
        assert state.capacity_rps == 1500.0
        assert state.servers == 5
        assert state.by_market == {"m0": 3, "m2": 2}
        assert state.revocations == 2
        assert state.cost_last == 0.25 and state.cost_total == 0.25
        assert state.open_warnings == 1 and state.warnings == 1
        assert list(state.p99) == [0.9]
        assert list(state.burn) == [3.0]
        assert state.requests == 480
        assert len(state.anomalies) == 1

    def test_warning_resolution_and_cost_accumulate(self):
        state = DashState()
        sample_frame(state)
        state(
            events_delta(
                3,
                120.0,
                1,
                [
                    event("warning.resolved", 115.0),
                    event("interval.plan", 120.0, cost=0.30),
                ],
            )
        )
        state({"type": "tick", "seq": 4, "t": 120.0, "interval": 1})
        assert state.open_warnings == 0 and state.warnings == 1
        assert state.cost_last == 0.30
        assert state.cost_total == 0.55
        assert state.t == 120.0 and state.interval == 1

    def test_history_is_bounded(self):
        state = DashState(history=4)
        for i in range(10):
            state(
                {
                    "type": "slo",
                    "seq": i,
                    "t": 30.0 * i,
                    "interval": i,
                    "points": [{"interval": i, "t": 30.0 * i, "p99": float(i)}],
                }
            )
        assert list(state.p99) == [6.0, 7.0, 8.0, 9.0]


class TestRenderDash:
    def test_snapshot_is_deterministic_and_complete(self):
        a, b = DashState(), DashState()
        sample_frame(a)
        sample_frame(b)
        text = render_dash(a)
        assert text == render_dash(b)
        assert "spotweb top  t=60s  interval=0" in text
        assert "m0=3 m2=2" in text
        assert "1 open / 1 total" in text
        assert "recent anomalies: slo.p99/cusum t=60 score=6.5" in text
        # No wall-clock datum in the deterministic snapshot.
        assert "| -" in text

    def test_solve_ms_is_passed_in_not_measured(self):
        state = DashState()
        sample_frame(state)
        assert "12.3 ms" in render_dash(state, solve_ms=12.3)

    def test_empty_state_renders(self):
        text = render_dash(DashState())
        assert "interval=-" in text


class TestDashRenderer:
    def test_repaints_every_nth_tick(self):
        stream = io.StringIO()
        renderer = DashRenderer(stream=stream, every=2, clear=True)
        for i in range(4):
            renderer({"type": "tick", "seq": i, "t": 30.0 * i, "interval": i})
        frames = stream.getvalue().count("spotweb top")
        assert frames == 2
        # Non-TTY stream: no ANSI clear codes in the output.
        assert "\x1b[" not in stream.getvalue()

    def test_folds_non_tick_deltas_without_rendering(self):
        stream = io.StringIO()
        renderer = DashRenderer(stream=stream, every=1)
        sample_frame(renderer.state)
        assert stream.getvalue() == ""
        renderer({"type": "tick", "seq": 9, "t": 90.0, "interval": 1})
        assert "spotweb top" in stream.getvalue()
