"""Unit tests for report formatting and the cost ledger."""

import numpy as np
import pytest

from repro.analysis import CostLedger, format_histogram, format_table
from repro.simulator.runner import SimulationReport


def make_report(name, prov, sla=0.0):
    return SimulationReport(
        name=name,
        provisioning_cost=prov,
        sla_penalty_cost=sla,
        unserved_requests=0.0,
        total_requests=1000.0,
        revocation_events=0,
        decision_seconds=0.1,
        interval_costs=np.zeros(3),
        counts=np.zeros((3, 2), dtype=np.int64),
        capacity_rps=np.zeros(3),
        demand_rps=np.zeros(3),
    )


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in ln for ln in lines[1:] if "-+-" not in ln)

    def test_number_formatting(self):
        out = format_table(["x"], [[123456.789], [0.0001]])
        assert "1.23e+05" in out
        assert "0.0001" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatHistogram:
    def test_bars_scale(self):
        edges = np.array([0.0, 1.0, 2.0])
        out = format_histogram(edges, np.array([10, 5]), width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            format_histogram(np.array([0.0, 1.0]), np.array([1, 2]))


class TestCostLedger:
    def test_add_and_savings(self):
        ledger = CostLedger()
        ledger.add(make_report("a", 100.0))
        ledger.add(make_report("b", 50.0))
        assert ledger.savings("b", "a") == pytest.approx(0.5)
        assert "a" in ledger
        assert ledger["b"].total_cost == 50.0

    def test_duplicate_rejected(self):
        ledger = CostLedger()
        ledger.add(make_report("a", 1.0))
        with pytest.raises(KeyError):
            ledger.add(make_report("a", 2.0))

    def test_rows_with_baseline(self):
        ledger = CostLedger()
        ledger.add(make_report("base", 100.0))
        ledger.add(make_report("new", 80.0))
        rows = ledger.rows(baseline="base")
        assert len(rows) == 2
        headers = CostLedger.headers(baseline=True)
        assert len(headers) == len(rows[0])
        # The savings column of "new" is 20%.
        new_row = [r for r in rows if r[0] == "new"][0]
        assert new_row[-1] == pytest.approx(20.0)
