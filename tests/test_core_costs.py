"""Unit tests for the cost model (Eqs. 3-5)."""

import numpy as np
import pytest

from repro.core import CostModel


@pytest.fixture
def model():
    return CostModel(penalty=0.02, long_running_fraction=0.1, risk_aversion=5.0)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CostModel(penalty=-1.0)
        with pytest.raises(ValueError):
            CostModel(long_running_fraction=1.5)
        with pytest.raises(ValueError):
            CostModel(risk_aversion=-1.0)
        with pytest.raises(ValueError):
            CostModel(churn_penalty=-0.1)


class TestProvisioningCost:
    def test_eq3(self, model):
        # A * lambda * C summed, times hours.
        cost = model.provisioning_cost(
            np.array([0.5, 0.5]), np.array([0.001, 0.002]), 1000.0, 1.0
        )
        assert cost == pytest.approx(0.5 * 1000 * 0.001 + 0.5 * 1000 * 0.002)

    def test_coefficients_consistent(self, model):
        C = np.array([0.001, 0.003])
        coeffs = model.provisioning_coefficients(C, 500.0, 2.0)
        A = np.array([0.4, 0.6])
        assert coeffs @ A == pytest.approx(
            model.provisioning_cost(A, C, 500.0, 2.0)
        )


class TestSLACost:
    def test_no_shortfall_only_drop_term(self, model):
        # lambda == lambda_pred: only the migration-drop term remains.
        cost = model.sla_cost(
            np.array([1.0]), np.array([0.2]), actual_rps=100.0, predicted_rps=100.0
        )
        assert cost == pytest.approx(0.02 * 1.0 * 0.2 * 100.0 * 0.1)

    def test_shortfall_term(self, model):
        cost = model.sla_cost(
            np.array([1.0]), np.array([0.0]), actual_rps=120.0, predicted_rps=100.0
        )
        assert cost == pytest.approx(0.02 * 1.0 * 20.0)

    def test_overprediction_has_no_shortfall_penalty(self, model):
        cost = model.sla_cost(
            np.array([1.0]), np.array([0.0]), actual_rps=80.0, predicted_rps=100.0
        )
        assert cost == 0.0

    def test_zero_L_ignores_failures(self):
        model = CostModel(penalty=0.02, long_running_fraction=0.0)
        cost = model.sla_cost(
            np.array([1.0]), np.array([0.9]), actual_rps=100.0, predicted_rps=100.0
        )
        assert cost == 0.0

    def test_coefficients_include_expected_shortfall(self, model):
        coeffs = model.sla_coefficients(
            np.array([0.1, 0.2]), predicted_rps=100.0, expected_shortfall_rps=10.0
        )
        A = np.array([0.5, 0.5])
        expected = 0.02 * (
            0.5 * (0.1 * 100 * 0.1 + 10.0) + 0.5 * (0.2 * 100 * 0.1 + 10.0)
        )
        assert coeffs @ A == pytest.approx(expected)


class TestRisk:
    def test_eq5(self, model):
        M = np.array([[0.09, 0.03], [0.03, 0.04]])
        A = np.array([0.6, 0.4])
        assert model.risk(A, M) == pytest.approx(5.0 * A @ M @ A)

    def test_diversification_reduces_risk(self, model):
        """Splitting between two uncorrelated equal markets halves A'MA."""
        M = 0.09 * np.eye(2)
        concentrated = model.risk(np.array([1.0, 0.0]), M)
        split = model.risk(np.array([0.5, 0.5]), M)
        assert split == pytest.approx(concentrated / 2)

    def test_correlation_negates_diversification(self, model):
        M_ind = 0.09 * np.eye(2)
        M_corr = np.full((2, 2), 0.09)
        split = np.array([0.5, 0.5])
        assert model.risk(split, M_corr) == pytest.approx(
            model.risk(np.array([1.0, 0.0]), M_ind)
        )


class TestIntervalCost:
    def test_sums_components(self, model):
        A = np.array([0.5, 0.5])
        C = np.array([0.001, 0.002])
        f = np.array([0.1, 0.1])
        M = 0.01 * np.eye(2)
        total = model.interval_cost(A, C, f, M, 110.0, 100.0)
        expected = (
            model.provisioning_cost(A, C, 100.0)
            + model.sla_cost(A, f, 110.0, 100.0)
            + model.risk(A, M)
        )
        assert total == pytest.approx(expected)
