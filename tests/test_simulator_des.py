"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator import Event, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_fifo_tiebreak_at_equal_times(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run_until(2.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run_until(5.0)
        assert times == [2.5]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(4.0)
        assert fired == []
        assert sim.pending == 1
        sim.run_until(6.0)
        assert fired == [1]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run_until(3.0)
        assert fired == ["outer", "inner"]

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert sim.processed == 0

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.run_until(5.0)

    def test_run_drains_everything(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(100.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]
        assert sim.pending == 0

    def test_args_passed(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, lambda a, b: out.append(a + b), 2, 3)
        sim.run()
        assert out == [5]

    def test_event_repr(self):
        e = Event(1.0, 0, lambda: None, ())
        assert "pending" in repr(e)
