"""Tests for spotunits: the units domain, contract summaries, per-rule
fixtures (positive + negative), suppressions, the two-pass cache, the
baseline workflow, the CLI, and the real-tree gate."""

from __future__ import annotations

import json
import shutil
from fractions import Fraction
from pathlib import Path

import pytest

from repro.devtools.baseline import (
    fingerprint,
    load_baseline,
    make_baseline,
    split_findings,
    write_baseline,
)
from repro.devtools.specs import parse_unit
from repro.devtools.units.analyze import (
    ENGINE_RULES,
    UNIT_RULES,
    analyze_module,
    analyze_paths,
)
from repro.devtools.units.cli import BASELINE_SCHEMA, main
from repro.devtools.units.domain import (
    DIMENSIONLESS,
    classify_mismatch,
    describe,
    scale_ratio,
    unit_div,
    unit_mul,
    unit_pow,
)
from repro.devtools.units.summaries import (
    ClassUnits,
    UnitContract,
    UnitModuleSummaries,
    UnitTable,
    extract_unit_summaries,
    unit_summary_digest,
)

FIXTURES = Path(__file__).parent / "fixtures" / "units"
REPO = Path(__file__).resolve().parents[1]


def unit_findings(paths=None, select=None):
    findings = analyze_paths(paths if paths is not None else [FIXTURES])
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


def analyze_one(name, *, with_seam=True):
    """Analyze a single fixture file against the seam's contract table."""
    mods = []
    if with_seam:
        seam = FIXTURES / "contracts_seam.py"
        mods.append(extract_unit_summaries(seam.read_text(), seam))
    path = FIXTURES / name
    mods.append(extract_unit_summaries(path.read_text(), path))
    return analyze_module(path.read_text(), path, UnitTable(mods))


# ------------------------------------------------------------------- domain
def test_unit_algebra_composes_exponents():
    assert unit_mul(parse_unit("req/s"), parse_unit("s")) == parse_unit("req")
    assert unit_div(parse_unit("usd"), parse_unit("hr")) == parse_unit("usd/hr")
    assert unit_div(parse_unit("s"), parse_unit("s")) == DIMENSIONLESS
    assert unit_pow(parse_unit("s"), Fraction(2)) == parse_unit("s^2")
    assert unit_pow(parse_unit("s^2"), Fraction(1, 2)) == parse_unit("s")
    assert unit_pow(parse_unit("hr"), Fraction(0)) == DIMENSIONLESS


def test_classify_mismatch_ladder():
    # Compatible: identical, or equivalent spellings.
    assert classify_mismatch(parse_unit("s"), parse_unit("s")) is None
    assert classify_mismatch(parse_unit("rps"), parse_unit("req/s")) is None
    # Same dimension at different scales: a missing conversion.
    assert classify_mismatch(parse_unit("s"), parse_unit("hr")) == "SW303"
    assert classify_mismatch(parse_unit("ms"), parse_unit("s")) == "SW303"
    # Interval counts meeting plain time: also a conversion problem.
    assert classify_mismatch(parse_unit("interval"), parse_unit("s")) == "SW303"
    assert (
        classify_mismatch(parse_unit("req/interval"), parse_unit("req/s"))
        == "SW303"
    )
    # Wall-clock vs simulated time: the DES's defining bug class.
    assert classify_mismatch(parse_unit("wall_s"), parse_unit("s")) == "SW302"
    # Genuinely different dimensions.
    assert classify_mismatch(parse_unit("req"), parse_unit("usd")) == "SW300"


def test_fraction_dimension_is_soft():
    assert classify_mismatch(parse_unit("frac"), parse_unit("1")) is None
    # ...but it still composes multiplicatively for documentation.
    assert unit_mul(parse_unit("frac"), parse_unit("s")) == parse_unit("frac*s")
    # And a frac meeting a hard dimension is still a real mismatch.
    assert classify_mismatch(parse_unit("frac"), parse_unit("server")) == "SW300"


def test_scale_ratio_renders_exact_fractions():
    assert scale_ratio(parse_unit("hr"), parse_unit("s")) == "3600x"
    assert scale_ratio(parse_unit("ms"), parse_unit("s")) == "1/1000x"
    assert scale_ratio(parse_unit("min"), parse_unit("hr")) == "1/60x"
    assert scale_ratio(parse_unit("s"), parse_unit("s")) == "1x"


def test_describe_uses_canonical_grammar_spelling():
    assert describe(parse_unit("usd/(server*hr)")) == "usd/hr/server"
    assert describe(DIMENSIONLESS) == "1"


# ---------------------------------------------------------------- summaries
def test_extract_unit_summaries_reads_the_seam_contracts():
    seam = FIXTURES / "contracts_seam.py"
    mod = extract_unit_summaries(seam.read_text(), seam)
    assert mod.module == "contracts_seam"
    by_qualname = {c.qualname: c for c in mod.contracts}
    assert set(by_qualname) == {"accrue_cost", "interval_width"}
    accrue = by_qualname["accrue_cost"]
    assert accrue.args == ("price", "servers", "hours")
    assert dict(accrue.params)["price"] == "usd/(server*hr)"
    assert accrue.ret == "usd"
    (tariff,) = mod.classes
    assert tariff.qualname == "Tariff"
    assert dict(tariff.fields)["penalty"] == "usd/(rps*hr)"


def test_summary_roundtrip_and_digest_stability():
    seam = FIXTURES / "contracts_seam.py"
    mod = extract_unit_summaries(seam.read_text(), seam)
    table = UnitTable([mod])
    digest = unit_summary_digest(table)
    assert digest == unit_summary_digest(UnitTable([mod]))
    for contract in mod.contracts:
        assert UnitContract.from_dict(contract.to_dict()) == contract
    for cls in mod.classes:
        assert ClassUnits.from_dict(cls.to_dict()) == cls
    assert UnitModuleSummaries.from_dict(mod.to_dict()) == mod


def test_digest_changes_when_a_contract_changes(tmp_path):
    seam = FIXTURES / "contracts_seam.py"
    original = seam.read_text()
    edited_path = tmp_path / "contracts_seam.py"
    edited_path.write_text(original.replace('ret="usd"', 'ret="usd/hr"'))
    d1 = unit_summary_digest(
        UnitTable([extract_unit_summaries(original, seam)])
    )
    d2 = unit_summary_digest(
        UnitTable(
            [extract_unit_summaries(edited_path.read_text(), edited_path)]
        )
    )
    assert d1 != d2


def test_table_resolves_reexport_chains():
    seam = FIXTURES / "contracts_seam.py"
    mod = extract_unit_summaries(seam.read_text(), seam)
    facade = UnitModuleSummaries(
        path="pkg/__init__.py",
        module="pkg",
        contracts=(),
        export_aliases={"accrue": "contracts_seam.accrue_cost"},
    )
    table = UnitTable([mod, facade])
    contract = table.lookup("pkg.accrue")
    assert contract is not None and contract.qualname == "accrue_cost"
    assert table.lookup("pkg.missing") is None


def test_field_unit_lookup():
    seam = FIXTURES / "contracts_seam.py"
    table = UnitTable([extract_unit_summaries(seam.read_text(), seam)])
    spec = table.field_unit("contracts_seam.Tariff", "penalty")
    assert spec == parse_unit("usd/(rps*hr)")
    assert table.field_unit("contracts_seam.Tariff", "nope") is None
    assert table.field_unit("contracts_seam.Missing", "penalty") is None


# ---------------------------------------------------------------- rule table
UNIT_RULE_CASES = [
    ("SW300", "sw300_bad.py", 3, "sw300_good.py"),
    ("SW301", "sw301_bad.py", 2, "sw301_good.py"),
    ("SW302", "sw302_bad.py", 2, "sw302_good.py"),
    ("SW303", "sw303_bad.py", 3, "sw303_good.py"),
    ("SW304", "sw304_bad.py", 3, "sw304_good.py"),
]


def test_every_unit_rule_has_a_case():
    assert {case[0] for case in UNIT_RULE_CASES} == set(UNIT_RULES)


@pytest.mark.parametrize(
    "rule,bad,count,good", UNIT_RULE_CASES, ids=[c[0] for c in UNIT_RULE_CASES]
)
def test_unit_rule_positive(rule, bad, count, good):
    findings = [f for f in analyze_one(bad) if f.rule == rule]
    assert len(findings) == count


@pytest.mark.parametrize(
    "rule,bad,count,good", UNIT_RULE_CASES, ids=[c[0] for c in UNIT_RULE_CASES]
)
def test_unit_rule_negative(rule, bad, count, good):
    assert [f for f in analyze_one(good) if f.rule == rule] == []


def test_whole_fixture_tree_totals():
    by_rule: dict[str, int] = {}
    for f in unit_findings():
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    assert by_rule == {
        "SW300": 3,
        "SW301": 2,
        "SW302": 2,
        "SW303": 3,
        "SW304": 3,
    }


# -------------------------------------------------------- contract matching
def test_sw301_reproduces_the_sla_cost_bug():
    # The fixture is the pre-fix body of CostModel.sla_cost: the finding
    # that led to the interval_hours fix in repro.core.costs.
    findings = [f for f in analyze_one("sw301_bad.py") if f.rule == "SW301"]
    messages = "\n".join(f.message for f in findings)
    assert "returns `usd/hr` but declares ret unit `usd`" in messages
    assert "passes `price` as `hr`" in messages  # the cross-seam call


def test_sw301_call_check_needs_the_summary_table():
    # Without the seam in the table the accrue_cost call is an unknown
    # function — unknowns pass, only proofs report.  The method's own
    # contract still lives in its own module, so that finding stays.
    findings = analyze_one("sw301_bad.py", with_seam=False)
    assert [f.rule for f in findings] == ["SW301"]
    assert "sla_cost" in findings[0].message


def test_clean_pipeline_through_contracts_is_silent():
    assert analyze_one("clean.py") == []
    assert analyze_one("contracts_seam.py") == []


def test_sw302_names_the_boundary():
    findings = [f for f in analyze_one("sw302_bad.py") if f.rule == "SW302"]
    assert all("sim/wall boundary" in f.message for f in findings)


def test_sw303_reports_the_exact_scale_factor():
    messages = [f.message for f in analyze_one("sw303_bad.py")]
    assert any("1/3600x" in m for m in messages)  # s vs hr
    assert any("1/1000x" in m for m in messages)  # ms vs s


def test_sw304_names_the_replacement_constant():
    messages = [f.message for f in analyze_one("sw304_bad.py")]
    assert any("repro.core.units.SECONDS_PER_HOUR" in m for m in messages)
    assert any("repro.core.units.MS_PER_SECOND" in m for m in messages)
    # The hint is dimension-aware: 1000 on a req count is a kreq
    # conversion, not ms<->s.
    assert any("repro.core.units.REQUESTS_PER_KREQ" in m for m in messages)


def test_violation_inside_pytest_raises_is_expected(tmp_path):
    # A deliberate contract violation under `with pytest.raises(...)` is
    # the test asserting the runtime checker fires — not a bug to report.
    # SW304 is exempt from the exemption: a bare conversion literal is
    # wrong even in a test that expects an error.
    src = (
        "import pytest\n"
        "from contracts_seam import accrue_cost\n"
        "from repro.devtools.contracts import units\n\n\n"
        '@units("hr")\n'
        "def test_rejects_bad_price(hours):\n"
        "    with pytest.raises(Exception):\n"
        "        accrue_cost(hours, 1.0, hours)\n"
        "        elapsed = hours * 3600\n"
    )
    seam = FIXTURES / "contracts_seam.py"
    path = tmp_path / "test_mod.py"
    path.write_text(src)
    table = UnitTable(
        [
            extract_unit_summaries(seam.read_text(), seam),
            extract_unit_summaries(src, path),
        ]
    )
    findings = analyze_module(src, path, table)
    assert [f.rule for f in findings] == ["SW304"]


# ------------------------------------------------------------- suppressions
def test_spotunits_line_suppression():
    assert analyze_one("suppress_line.py", with_seam=False) == []


def test_unknown_suppression_rule_becomes_sw009(tmp_path):
    path = tmp_path / "m.py"
    src = "x = 1  # spotunits: disable=SW998\n"
    path.write_text(src)
    (finding,) = analyze_module(src, path, UnitTable([]))
    assert finding.rule == "SW009" and "SW998" in finding.message


def test_syntax_error_becomes_sw000(tmp_path):
    path = tmp_path / "broken.py"
    src = "def oops(:\n"
    path.write_text(src)
    (finding,) = analyze_module(src, path, UnitTable([]))
    assert finding.rule == "SW000"
    assert "SW000" in ENGINE_RULES and "SW009" in ENGINE_RULES


# ------------------------------------------------------------------ caching
def _copy_tree(tmp_path):
    dest = tmp_path / "units"
    shutil.copytree(FIXTURES, dest)
    return dest


def test_cache_roundtrip_and_file_invalidation(tmp_path):
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"

    stats: dict = {}
    first = analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]
    assert n_files > 0 and stats["cached"] == 0

    stats = {}
    second = analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files, "analyzed": 0}
    assert [(f.rule, f.line, f.message) for f in second] == [
        (f.rule, f.line, f.message) for f in first
    ]

    # Touching one non-contract file re-analyzes exactly that file.
    target = dest / "sw304_bad.py"
    target.write_text(target.read_text() + "\n# touched\n")
    stats = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files - 1, "analyzed": 1}


def test_contract_edit_invalidates_every_dependent(tmp_path):
    # Pass B is keyed by the *global* unit-fact digest: changing a
    # contract in one file must re-analyze all files, not just one.
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"
    stats: dict = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]

    seam = dest / "contracts_seam.py"
    seam.write_text(
        seam.read_text().replace(
            '@units("usd/(server*hr)", "server", "hr", ret="usd")',
            '@units("usd/(server*hr)", "server", "hr", ret="usd/hr")',
        )
    )
    stats = {}
    findings = analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": 0, "analyzed": n_files}
    # The flipped return contract now breaks clean.py's `monthly`, which
    # still declares ret="usd" while accrue_cost hands back usd/hr.
    messages = [f.message for f in findings if f.rule == "SW301"]
    assert any("monthly" in m for m in messages)


def test_cache_schema_mismatch_forces_reanalysis(tmp_path):
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"
    stats: dict = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]
    cache.write_text(json.dumps({"schema": "something/9", "files": {}}))
    stats = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": 0, "analyzed": n_files}


# ----------------------------------------------------------------- baseline
def test_baseline_roundtrip_accepts_everything(tmp_path):
    findings = unit_findings()
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings, schema=BASELINE_SCHEMA)
    accepted = load_baseline(baseline_file, schema=BASELINE_SCHEMA)
    new, baselined = split_findings(findings, accepted)
    assert new == [] and len(baselined) == len(findings)


def test_fingerprint_is_line_independent():
    finding = unit_findings(select={"SW303"})[0]
    moved = type(finding)(
        finding.rule, finding.path, finding.line + 40, finding.col,
        finding.message,
    )
    assert fingerprint(moved) == fingerprint(finding)


def test_bound_baseline_schema_rejects_other_tools(tmp_path):
    # make_baseline binds the schema tag once so the spotunits CLI cannot
    # accidentally read spotshape's baseline file.
    bound = make_baseline(BASELINE_SCHEMA)
    other = tmp_path / "b.json"
    other.write_text(
        json.dumps({"schema": "spotshape-baseline/1", "findings": []})
    )
    with pytest.raises(ValueError):
        bound.load(other)
    bound.write(tmp_path / "ok.json", unit_findings(select={"SW300"}))
    assert len(bound.load(tmp_path / "ok.json")) == 3
    assert bound.load(tmp_path / "missing.json") == set()


# ---------------------------------------------------------------------- CLI
def _cli(tmp_path, *argv):
    baseline = tmp_path / "empty-baseline.json"
    return main([*argv, "--no-cache", "--baseline", str(baseline)])


def test_cli_exits_nonzero_with_findings(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW303")
    out = capsys.readouterr().out
    assert code == 1
    assert "SW303" in out and "sw303_bad.py:" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    clean_dir = tmp_path / "clean"
    clean_dir.mkdir()
    shutil.copy(FIXTURES / "contracts_seam.py", clean_dir)
    shutil.copy(FIXTURES / "clean.py", clean_dir)
    code = _cli(tmp_path, str(clean_dir))
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exclude_skips_the_bad_files(tmp_path, capsys):
    code = _cli(
        tmp_path,
        str(FIXTURES),
        *[
            arg
            for rule, bad, _, _ in UNIT_RULE_CASES
            for arg in ("--exclude", str(FIXTURES / bad))
        ],
    )
    capsys.readouterr()
    assert code == 0


def test_cli_rejects_unknown_rule_ids(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW999")
    assert code == 2
    assert "SW999" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW302", "--format", "json")
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "spotweb-findings/1"
    assert payload["tool"] == "spotunits"
    assert payload["count"] == 2
    assert payload["baselined"] == 0
    assert set(payload["cache"]) == {"cached", "analyzed"}


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tree = str(FIXTURES)
    assert main([tree, "--no-cache", "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()
    code = main([tree, "--no-cache", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_cli_update_baseline_rejects_filters(tmp_path, capsys):
    # A filtered --update-baseline would overwrite the baseline with only
    # the selected subset, silently un-accepting all other findings.
    for flag in ("--select", "--ignore"):
        code = _cli(tmp_path, str(FIXTURES), flag, "SW303", "--update-baseline")
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().err


def test_cli_unreadable_baseline_is_a_usage_error(tmp_path, capsys):
    bad = tmp_path / "corrupt.json"
    bad.write_text("{not json")
    code = main([str(FIXTURES / "clean.py"), "--no-cache",
                 "--baseline", str(bad)])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in UNIT_RULES:
        assert rule_id in out
    assert "SW009" in out


# ----------------------------------------------------------- the real tree
def test_real_tree_is_clean_against_committed_baseline(monkeypatch):
    # The acceptance gate: spotunits over the actual repo (src + tests,
    # fixtures excluded) reports nothing beyond a committed, justified
    # baseline — which currently does not exist, because the tree is
    # fully clean.  Baseline fingerprints hash repo-relative paths, so
    # run from the repo root exactly as CI does.
    monkeypatch.chdir(REPO)
    findings = analyze_paths(["src", "tests"], exclude=["tests/fixtures"])
    accepted = load_baseline("spotunits-baseline.json", schema=BASELINE_SCHEMA)
    new, _ = split_findings(findings, accepted)
    report = "\n".join(f.format() for f in new)
    assert not new, f"spotunits found new violations:\n{report}"
