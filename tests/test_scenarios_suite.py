"""Registry, runner, oracle, and CLI tests for the scenario suite."""

import numpy as np
import pytest

from repro.cli import main
from repro.obs.events import write_events
from repro.scenarios import (
    CappedPolicy,
    PortfolioSpec,
    SCENARIOS,
    check_journals,
    check_runs,
    engines_for,
    format_check_report,
    get_scenario,
    journal_filename,
    load_run,
    run_portfolio,
    run_suite,
    scenario_names,
    write_run,
)

FIXTURES = "tests/fixtures/scenarios"
VIOLATING = [
    f"{FIXTURES}/events_violating_storm_az.jsonl",
    f"{FIXTURES}/events_violating_price_war.jsonl",
]


class TestRegistry:
    def test_at_least_five_families(self):
        assert len(SCENARIOS) >= 5

    def test_expected_families_present(self):
        assert {
            "storm_az",
            "flash_crowd",
            "storm_in_crowd",
            "price_war",
            "capacity_drought",
            "long_drift",
        } <= set(SCENARIOS)

    def test_quick_pack_excludes_long_drift(self):
        quick = scenario_names("quick")
        assert "long_drift" not in quick
        assert "long_drift" in scenario_names("full")
        assert set(quick) < set(scenario_names("full"))

    def test_pack_name_validated(self):
        with pytest.raises(ValueError):
            scenario_names("hourly")

    def test_cluster_scenarios_gate_engine_agreement(self):
        for s in SCENARIOS.values():
            if s.kind == "cluster":
                assert s.engine_agreement_tol is not None

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="storm_az"):
            get_scenario("nope")

    def test_engines_for(self):
        assert engines_for("storm_az", ("request", "hybrid")) == [
            "request",
            "hybrid",
        ]
        assert engines_for("price_war", ("request", "hybrid")) == [
            "interval"
        ]

    def test_journal_filename(self):
        assert (
            journal_filename("storm_az", "hybrid")
            == "events_scenario_storm_az_hybrid.jsonl"
        )


class TestRunnerAndOracle:
    def test_serial_equals_parallel(self):
        serial = run_suite(
            names=["storm_az"], engines=("hybrid",), max_workers=1
        )
        parallel = run_suite(
            names=["storm_az"], engines=("hybrid",), max_workers=2
        )
        assert [r.label for r in serial] == [r.label for r in parallel]
        assert [r.records for r in serial] == [r.records for r in parallel]

    def test_real_run_passes_pack(self):
        runs = run_suite(names=["storm_az"], engines=("hybrid",))
        assert check_runs(runs) == []
        report = format_check_report(runs, [])
        assert "all invariants hold" in report
        assert "storm_az[hybrid]" in report

    def test_journal_round_trip(self, tmp_path):
        run = run_suite(names=["storm_az"], engines=("hybrid",))[0]
        path = write_run(run, tmp_path)
        assert path.name == journal_filename("storm_az", "hybrid")
        loaded = load_run(path)
        assert loaded.scenario == run.scenario
        assert loaded.engine == run.engine
        assert loaded.records == run.records

    def test_violating_fixtures_fail_oracle(self):
        violations = check_journals(VIOLATING)
        scenarios = {v.scenario for v in violations}
        invariants = {v.invariant for v in violations}
        assert any("storm_az" in s for s in scenarios)
        assert any("price_war" in s for s in scenarios)
        assert {"slo_floor", "cost_ceiling"} <= invariants
        report_runs = [load_run(p) for p in VIOLATING]
        report = format_check_report(report_runs, violations)
        assert "FAIL" in report

    def test_load_run_rejects_anonymous_journal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(
            [
                {
                    "seq": 0,
                    "t": 0.0,
                    "interval": None,
                    "kind": "slo.interval",
                    "id": None,
                    "cause": None,
                    "attrs": {"requests": 1.0, "compliance": 1.0},
                }
            ],
            path,
        )
        with pytest.raises(ValueError, match="scenario.begin"):
            load_run(path)

    def test_load_run_rejects_unknown_scenario(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(
            [
                {
                    "seq": 0,
                    "t": 0.0,
                    "interval": None,
                    "kind": "scenario.begin",
                    "id": "scn-1",
                    "cause": None,
                    "attrs": {"scenario": "made_up", "engine": "request"},
                }
            ],
            path,
        )
        with pytest.raises(ValueError, match="made_up"):
            load_run(path)


class TestPortfolioRunner:
    def test_outcome_fields(self):
        spec = PortfolioSpec(
            name="price_war", weeks=1, num_markets=4, mean_rps=500.0
        )
        records = run_portfolio(spec, seed=0)
        assert records[0]["kind"] == "scenario.begin"
        outcome = records[-1]["attrs"]
        assert records[-1]["kind"] == "scenario.outcome"
        assert outcome["cost"] > 0
        assert 0.0 <= outcome["compliance"] <= 1.0
        assert outcome["stranded"] == 0

    def test_deterministic(self):
        spec = PortfolioSpec(
            name="price_war", weeks=1, num_markets=4, mean_rps=500.0
        )
        assert run_portfolio(spec, seed=1) == run_portfolio(spec, seed=1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PortfolioSpec(name="x", weeks=0)
        with pytest.raises(ValueError):
            PortfolioSpec(name="x", workload="batch")
        with pytest.raises(ValueError):
            PortfolioSpec(name="x", num_markets=4, policy_markets=5)


class TestCappedPolicy:
    class _Inner:
        def decide(self, t, observed_rps, prices, failure_probs):
            return np.array([7, 0, 3])

    def test_caps_counts(self):
        policy = CappedPolicy(self._Inner(), 2)
        counts = policy.decide(0, 100.0, np.zeros(3), np.zeros(3))
        assert counts.tolist() == [2, 0, 2]

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            CappedPolicy(self._Inner(), -1)


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "storm_az" in out and "long_drift" in out

    def test_run_and_check_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path)
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--scenario",
                    "storm_az",
                    "--engine",
                    "hybrid",
                    "--out-dir",
                    out_dir,
                    "--check",
                ]
            )
            == 0
        )
        journal = tmp_path / journal_filename("storm_az", "hybrid")
        assert journal.exists()
        capsys.readouterr()
        assert main(["scenarios", "check", "--dir", out_dir]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_check_violating_fixture_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            main(["scenarios", "check", VIOLATING[0]])

    def test_check_without_journals_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scenarios", "check", "--dir", str(tmp_path)])
