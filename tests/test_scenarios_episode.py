"""Tests for cluster episodes, storms, and the stranded-session probe."""

import pytest

from repro.loadbalancer import TransiencyAwareLoadBalancer, VanillaLoadBalancer
from repro.obs.events import EventLog, get_events, set_events
from repro.scenarios import EpisodeSpec, StormSpec, run_episode
from repro.simulator import ClusterConfig, ClusterSimulation
from repro.simulator.metrics import LatencyRecorder


def _mini_spec(**kw):
    defaults = dict(
        name="mini",
        duration=90.0,
        capacities=(30.0, 30.0, 30.0),
        base_rps=40.0,
        storms=(StormSpec(at=30.0, servers=(0,)),),
        warning_seconds=20.0,
        slo_interval_seconds=30.0,
    )
    defaults.update(kw)
    return EpisodeSpec(**defaults)


class TestRunEpisode:
    def test_same_seed_identical_journal(self):
        a = run_episode(_mini_spec(), engine="request", seed=3)
        b = run_episode(_mini_spec(), engine="request", seed=3)
        assert a == b

    def test_different_seed_differs(self):
        a = run_episode(_mini_spec(), engine="request", seed=3)
        b = run_episode(_mini_spec(), engine="request", seed=4)
        assert a != b

    def test_journal_brackets_and_outcome(self):
        records = run_episode(_mini_spec(), engine="request", seed=0)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "scenario.begin"
        assert kinds[-1] == "scenario.outcome"
        outcome = records[-1]["attrs"]
        assert outcome["cost"] > 0
        assert outcome["stranded"] == 0
        assert outcome["ledger_error"] == pytest.approx(0.0, abs=1e-6)

    def test_storm_flows_through_warning_chain(self):
        records = run_episode(_mini_spec(), engine="request", seed=0)
        kinds = [r["kind"] for r in records]
        assert "storm.begin" in kinds
        issued = [r for r in records if r["kind"] == "warning.issued"]
        resolved = {
            r["cause"] for r in records if r["kind"] == "warning.resolved"
        }
        assert len(issued) == 1
        assert {r["id"] for r in issued} <= resolved

    def test_hybrid_engine_balances_ledger(self):
        records = run_episode(_mini_spec(), engine="hybrid", seed=0)
        outcome = records[-1]["attrs"]
        assert outcome["engine"] == "hybrid"
        assert outcome["ledger_error"] < 1e-6

    def test_caller_event_log_restored(self):
        before = get_events()
        run_episode(_mini_spec(), engine="request", seed=0)
        assert get_events() is before

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            run_episode(_mini_spec(), engine="quantum")

    def test_reprovision_cap_zero_disables_replacement(self):
        # Hot fleet: survivors cannot absorb the storm, so the balancer
        # asks for replacements — unless the cap forbids them.
        hot = dict(base_rps=80.0)
        capped = run_episode(
            _mini_spec(reprovision_cap_rps=0.0, **hot),
            engine="request", seed=0,
        )
        free = run_episode(_mini_spec(**hot), engine="request", seed=0)
        launches = lambda recs: sum(  # noqa: E731
            1 for r in recs if r["kind"] == "server.launch"
        )
        assert launches(capped) == 3
        assert launches(free) == 4


class TestEpisodeSpecValidation:
    def test_storm_index_out_of_range(self):
        with pytest.raises(ValueError):
            _mini_spec(storms=(StormSpec(at=1.0, servers=(9,)),))

    def test_empty_storm(self):
        with pytest.raises(ValueError):
            StormSpec(at=1.0, servers=())

    def test_negative_storm_time(self):
        with pytest.raises(ValueError):
            StormSpec(at=-1.0, servers=(0,))

    def test_bad_scalars(self):
        with pytest.raises(ValueError):
            _mini_spec(duration=0.0)
        with pytest.raises(ValueError):
            _mini_spec(capacities=())
        with pytest.raises(ValueError):
            _mini_spec(base_rps=0.0)
        with pytest.raises(ValueError):
            _mini_spec(flash_crowds=-1)


class TestScheduleStorm:
    def _cluster(self):
        cfg = ClusterConfig(seed=0, warning_seconds=5.0)
        return ClusterSimulation(cfg)

    def test_storm_revokes_all_listed(self):
        cluster = self._cluster()
        servers = [cluster.add_server(50.0, boot_seconds=0.0)
                   for _ in range(3)]
        cluster.schedule_storm([0, 1], 5.0)
        cluster.run(20.0, rate=10.0)
        assert not servers[0].alive
        assert not servers[1].alive
        assert servers[2].alive

    def test_storm_emits_marker(self):
        old = set_events(EventLog(enabled=True))
        try:
            cluster = self._cluster()
            for _ in range(2):
                cluster.add_server(50.0, boot_seconds=0.0)
            cluster.schedule_storm([0, 1, 1], 2.0)
            cluster.run(10.0, rate=5.0)
            storms = [
                r for r in get_events().records()
                if r["kind"] == "storm.begin"
            ]
            assert len(storms) == 1
            assert storms[0]["attrs"]["servers"] == 2
            assert storms[0]["attrs"]["capacity_rps"] == pytest.approx(100.0)
        finally:
            set_events(old)

    def test_storm_validation(self):
        cluster = self._cluster()
        cluster.add_server(50.0)
        with pytest.raises(ValueError):
            cluster.schedule_storm([], 1.0)
        with pytest.raises(KeyError):
            cluster.schedule_storm([7], 1.0)


class _FakeBackend:
    def __init__(self, server_id, alive=True):
        self.server_id = server_id
        self.capacity_rps = 10.0
        self.alive = alive
        self.accepting = alive

    def submit(self, session_id=None, *, migrated=False, service_scale=1.0):
        return True

    def expected_wait(self):
        return 0.0


class TestStrandedSessions:
    def test_zero_when_backends_alive(self):
        lb = VanillaLoadBalancer(LatencyRecorder())
        lb.add_backend(_FakeBackend(0))
        lb.sessions.assign(1, 0)
        assert lb.stranded_sessions() == 0

    def test_counts_sessions_on_dead_backend(self):
        lb = VanillaLoadBalancer(LatencyRecorder())
        backend = _FakeBackend(0)
        lb.add_backend(backend)
        lb.sessions.assign(1, 0)
        lb.sessions.assign(2, 0)
        backend.alive = False
        assert lb.stranded_sessions() == 2

    def test_counts_stale_affinity_records(self):
        # remove_backend evicts cleanly; a stale record pointing at a
        # backend the balancer no longer knows must still count.
        lb = TransiencyAwareLoadBalancer(LatencyRecorder())
        lb.add_backend(_FakeBackend(0))
        lb.sessions.assign(5, 0)
        lb.sessions.assign(6, 99)
        assert lb.stranded_sessions() == 1
        lb.remove_backend(0)
        assert lb.stranded_sessions() == 1

    def test_counts_by_backend_skips_empty(self):
        lb = VanillaLoadBalancer(LatencyRecorder())
        lb.add_backend(_FakeBackend(0))
        lb.sessions.assign(1, 0)
        lb.sessions.close(1)
        assert lb.sessions.counts_by_backend() == {}
