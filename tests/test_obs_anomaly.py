"""Tests for the streaming anomaly detectors and the bus monitor."""

import pytest

from repro.obs import (
    ANOMALY_EVENT,
    AnomalyMonitor,
    CusumDetector,
    DetectorConfig,
    EventLog,
    EwmaZScoreDetector,
    MetricsRegistry,
    TelemetryBus,
    detect_series,
    get_events,
    set_events,
    set_metrics,
)


@pytest.fixture
def global_log():
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


class TestDetectorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"z_threshold": 0.0},
            {"cusum_h": -1.0},
            {"cusum_k": -0.1},
            {"min_scale": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestEwmaZScore:
    def test_warmup_returns_none(self):
        det = EwmaZScoreDetector(DetectorConfig(warmup=3))
        assert [det.update(1.0) for _ in range(3)] == [None, None, None]
        assert det.update(1.0) is not None

    def test_spike_fires_then_recovers(self):
        det = EwmaZScoreDetector(DetectorConfig(warmup=4, min_scale=0.01))
        for v in (1.0, 1.1, 0.9, 1.0):
            det.update(v)
        det.update(1.05)
        assert not det.fired
        score = det.update(5.0)  # the flash crowd lands
        assert det.fired and score > 4.0
        # Scored before the state absorbed the outlier: the EWMA mean
        # moved toward 5.0 only *after* the flag.
        assert det._mean < 5.0 - (5.0 - 1.0) * 0.5

    def test_constant_series_needs_min_scale_floor(self):
        # Fluid steady state: exactly constant, zero deviation.  The
        # floor keeps the first wobble finite (and here, sub-threshold).
        det = EwmaZScoreDetector(DetectorConfig(warmup=4, min_scale=0.1))
        for _ in range(10):
            det.update(2.0)
            assert not det.fired
        score = det.update(2.2)
        assert score == pytest.approx(2.0)
        assert not det.fired


class TestCusum:
    def test_sustained_shift_fires_and_realarm(self):
        values = [1.0, 1.0, 1.0, 1.0] + [1.3] * 20
        flags = detect_series(values, DetectorConfig(min_scale=0.1))
        assert flags, "level shift never fired"
        assert flags[0]["detector"] == "cusum"
        # Accumulators reset after a flag, so a persisting shift
        # re-alarms instead of saturating.
        assert len(flags) >= 2

    def test_downward_shift_fires_too(self):
        values = [1.0, 1.0, 1.0, 1.0] + [0.7] * 20
        assert detect_series(values, DetectorConfig(min_scale=0.1))

    def test_steady_series_is_silent(self):
        values = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 1.01, 0.99] * 5
        config = DetectorConfig(min_scale=0.01)
        assert detect_series(values, config) == []
        assert detect_series(values, config, detector="ewma") == []

    def test_baseline_frozen_at_warmup(self):
        det = CusumDetector(DetectorConfig(warmup=4, min_scale=0.1))
        for v in (1.0, 1.0, 1.0, 1.0):
            det.update(v)
        frozen = det._mean
        for _ in range(50):
            det.update(1.3)
        assert det._mean == frozen  # the shift never bent the baseline


class TestDetectSeries:
    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match="unknown detector"):
            detect_series([1.0], detector="magic")

    def test_flags_carry_index_value_score(self):
        values = [1.0] * 4 + [9.0]
        (flag,) = detect_series(
            values, DetectorConfig(min_scale=0.1), detector="ewma"
        )
        assert flag["index"] == 4
        assert flag["value"] == 9.0
        assert flag["score"] >= 4.0

    def test_identical_inputs_identical_flags(self):
        values = [1.0, 1.1, 0.9, 1.0, 1.2, 4.0, 1.0, 3.9, 1.1]
        assert detect_series(values) == detect_series(values)


class TestAnomalyMonitor:
    def _slo_interval(self, log, t, p99, compliance=1.0):
        log.emit(
            "slo.interval",
            t=t,
            interval=int(t // 30),
            requests=100,
            compliance=compliance,
            burn=0.0,
            p50=p99 / 3,
            p95=p99 / 1.5,
            p99=p99,
        )

    def test_flags_spike_and_links_open_warning(self, global_log):
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        monitor = bus.subscribe(AnomalyMonitor())
        for i in range(5):
            self._slo_interval(global_log, 30.0 * (i + 1), 0.2)
            bus.tick(30.0 * (i + 1), i)
        warning = global_log.open_warning(3, t=160.0)
        self._slo_interval(global_log, 180.0, 4.0)
        bus.tick(180.0, 5)
        assert monitor.anomalies, "spike never flagged"
        assert {a["series"] for a in monitor.anomalies} == {"slo.p99"}
        events = [
            r for r in global_log.records() if r["kind"] == ANOMALY_EVENT
        ]
        assert len(events) == len(monitor.anomalies)
        for rec in events:
            assert rec["cause"] == warning
            assert rec["t"] == 180.0
            assert rec["attrs"]["detector"] in ("ewma_z", "cusum")

    def test_monitor_ignores_its_own_events(self, global_log):
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        monitor = bus.subscribe(AnomalyMonitor())
        for i in range(5):
            self._slo_interval(global_log, 30.0 * (i + 1), 0.2)
            bus.tick(30.0 * (i + 1), i)
        self._slo_interval(global_log, 180.0, 4.0)
        bus.tick(180.0, 5)
        flagged = len(monitor.anomalies)
        # The anomaly events drain on the next frame; feeding them back
        # into the monitor must not flag (or even observe) them.
        bus.tick(210.0, 6)
        assert len(monitor.anomalies) == flagged

    def test_steady_run_is_silent(self, global_log):
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        monitor = bus.subscribe(AnomalyMonitor())
        for i in range(20):
            self._slo_interval(global_log, 30.0 * (i + 1), 0.2)
            bus.tick(30.0 * (i + 1), i)
        assert monitor.anomalies == []

    def test_wall_time_series_off_by_default(self, global_log):
        old = set_metrics(MetricsRegistry())
        try:
            from repro.obs import get_metrics

            bus = TelemetryBus(enabled=True, publish_metrics=False)
            silent = bus.subscribe(AnomalyMonitor())
            loud = bus.subscribe(AnomalyMonitor(include_wall_time=True))
            for i in range(5):
                get_metrics().histogram("controller.solve_ms").observe(2.0)
                bus.tick(30.0 * (i + 1), i)
            get_metrics().histogram("controller.solve_ms").observe(400.0)
            bus.tick(180.0, 5)
            assert silent.anomalies == []
            assert {a["series"] for a in loud.anomalies} == {"solver.wall_ms"}
        finally:
            set_metrics(old)
