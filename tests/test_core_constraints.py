"""Unit tests for allocation constraints (Eqs. 7-10)."""

import numpy as np
import pytest

from repro.core import AllocationConstraints


class TestValidation:
    def test_defaults_valid(self):
        c = AllocationConstraints()
        assert c.a_total_min == 1.0

    def test_rejects_inverted_totals(self):
        with pytest.raises(ValueError):
            AllocationConstraints(a_total_min=2.0, a_total_max=1.0)

    def test_rejects_bad_market_max(self):
        with pytest.raises(ValueError):
            AllocationConstraints(a_market_max=0.0)
        with pytest.raises(ValueError):
            AllocationConstraints(a_total_max=0.5, a_market_max=0.9)


class TestBuildRows:
    def test_shapes(self):
        c = AllocationConstraints()
        A, l, u = c.build_rows(num_markets=4, horizon=3)
        assert A.shape == (4 * 3 + 3, 4 * 3)
        assert l.shape == u.shape == (15,)

    def test_box_rows(self):
        c = AllocationConstraints(a_market_max=0.4)
        A, l, u = c.build_rows(3, 1)
        np.testing.assert_array_equal(A[:3], np.eye(3))
        assert np.all(l[:3] == 0.0)
        assert np.all(u[:3] == 0.4)

    def test_unreachable_total_rejected(self):
        c = AllocationConstraints(a_market_max=0.4)
        with pytest.raises(ValueError, match="infeasible constraints"):
            c.build_rows(2, 1)  # 2 * 0.4 < a_total_min = 1.0

    def test_total_rows_per_interval(self):
        c = AllocationConstraints(a_total_min=1.0, a_total_max=1.5)
        A, l, u = c.build_rows(3, 2)
        # Interval 0 total row touches only the first 3 variables.
        np.testing.assert_array_equal(A[6], [1, 1, 1, 0, 0, 0])
        np.testing.assert_array_equal(A[7], [0, 0, 0, 1, 1, 1])
        assert l[6] == 1.0 and u[6] == 1.5

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            AllocationConstraints().build_rows(0, 1)


class TestFeasible:
    def test_accepts_valid(self):
        c = AllocationConstraints(a_total_max=2.0, a_market_max=0.8)
        assert c.feasible(np.array([0.6, 0.6]))

    def test_rejects_under_provisioned(self):
        c = AllocationConstraints()
        assert not c.feasible(np.array([0.3, 0.3]))

    def test_rejects_over_concentrated(self):
        c = AllocationConstraints(a_market_max=0.5, a_total_max=2.0)
        assert not c.feasible(np.array([0.9, 0.4]))

    def test_rejects_negative(self):
        assert not AllocationConstraints().feasible(np.array([-0.1, 1.2]))
