"""Unit tests for the flash-crowd compositor and demand ramps."""

import numpy as np
import pytest

from repro.workloads import WorkloadTrace, compose_flash_crowds, ramp_trace


def _base(n=64, rate=100.0):
    return WorkloadTrace(np.full(n, rate), 15.0, "base")


class TestComposeFlashCrowds:
    def test_same_seed_byte_identical(self):
        a = compose_flash_crowds(_base(), count=3, seed=42)
        b = compose_flash_crowds(_base(), count=3, seed=42)
        assert np.array_equal(a.rates, b.rates)

    def test_different_seed_differs(self):
        a = compose_flash_crowds(_base(), count=3, seed=1)
        b = compose_flash_crowds(_base(), count=3, seed=2)
        assert not np.array_equal(a.rates, b.rates)

    def test_rates_only_elevated(self):
        shaped = compose_flash_crowds(_base(), count=2, seed=5)
        assert np.all(shaped.rates >= 100.0)
        assert shaped.rates.max() > 100.0

    def test_magnitude_bounds_single_spike(self):
        shaped = compose_flash_crowds(
            _base(), count=1, seed=9, magnitude_range=(1.5, 2.0)
        )
        # One spike cannot exceed its drawn magnitude times the base.
        assert shaped.rates.max() <= 2.0 * 100.0 + 1e-9

    def test_input_untouched_and_renamed(self):
        base = _base()
        before = base.rates.copy()
        shaped = compose_flash_crowds(base, count=4, seed=0)
        np.testing.assert_array_equal(base.rates, before)
        assert shaped.name == "base+flash4"

    def test_validation(self):
        with pytest.raises(ValueError):
            compose_flash_crowds(_base(), count=0, seed=0)
        with pytest.raises(ValueError):
            compose_flash_crowds(
                _base(), count=1, seed=0, magnitude_range=(0.5, 2.0)
            )
        with pytest.raises(ValueError):
            compose_flash_crowds(
                _base(), count=1, seed=0, decay_range=(0.0, 1.5)
            )


class TestRampTrace:
    def test_compounds_weekly(self):
        week = int(7 * 24 * 3600 / 15.0)
        base = WorkloadTrace(np.full(2 * week, 100.0), 15.0, "b")
        ramped = ramp_trace(base, growth_per_week=0.10)
        assert ramped.rates[0] == pytest.approx(100.0)
        assert ramped.rates[week] == pytest.approx(110.0)
        assert ramped.rates[-1] == pytest.approx(121.0, rel=1e-3)

    def test_decline_and_validation(self):
        ramped = ramp_trace(_base(), growth_per_week=-0.5)
        assert np.all(ramped.rates <= 100.0)
        with pytest.raises(ValueError):
            ramp_trace(_base(), growth_per_week=-1.0)
