"""Unit tests for the baseline provisioning policies."""

import numpy as np
import pytest

from repro.baselines import (
    ConstantPortfolioPolicy,
    ExoSphereLoopPolicy,
    OnDemandPolicy,
    QuThresholdPolicy,
    oracle_target,
    padded,
    reactive_target,
)
from repro.workloads import constant_workload


class TestTargets:
    def test_reactive(self):
        fn = reactive_target()
        assert fn(5, 123.0) == 123.0

    def test_oracle(self):
        fn = oracle_target(constant_workload(3, 0.0).rates + np.array([1.0, 2.0, 3.0]))
        assert fn(1, 999.0) == 2.0
        assert fn(10, 999.0) == 3.0  # clamps at the end

    def test_padded(self):
        fn = padded(reactive_target(), 0.25)
        assert fn(0, 100.0) == pytest.approx(125.0)
        with pytest.raises(ValueError):
            padded(reactive_target(), -0.1)


class TestExoSphereLoop:
    def test_covers_observed_demand(self, small_markets, small_dataset):
        policy = ExoSphereLoopPolicy(small_markets)
        counts = policy.decide(
            0, 500.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        capacity = counts @ np.array([m.capacity_rps for m in small_markets])
        assert capacity >= 500.0

    def test_no_padding_beyond_rounding(self, small_markets, small_dataset):
        """ExoSphere provisions the observed demand, not a padded target."""
        policy = ExoSphereLoopPolicy(small_markets)
        counts = policy.decide(
            0, 500.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        caps = np.array([m.capacity_rps for m in small_markets])
        capacity = counts @ caps
        # Ceil rounding can overshoot by at most one server per used market.
        used = counts > 0
        assert capacity <= 500.0 * 1.6 + caps[used].sum()

    def test_reacts_to_price_shift(self, small_markets, small_dataset):
        policy = ExoSphereLoopPolicy(small_markets)
        f = small_dataset.failure_probs
        prices = small_dataset.prices[0].copy()
        policy.decide(0, 500.0, prices, f[0])
        # Make market 3 overwhelmingly cheap and re-decide repeatedly.
        prices2 = prices.copy()
        prices2[:] = 10.0
        prices2[3] = 0.001
        for t in range(1, 4):
            counts = policy.decide(t, 500.0, prices2, f[t])
        assert counts[3] > 0


class TestConstantPortfolio:
    def test_calibrates_once_then_freezes(self, small_markets, small_dataset):
        policy = ConstantPortfolioPolicy(small_markets, calibrate_at=2)
        f = small_dataset.failure_probs
        p = small_dataset.prices
        policy.decide(0, 100.0, p[0], f[0])
        assert policy.weights is None
        policy.decide(2, 100.0, p[2], f[2])
        frozen = policy.weights.copy()
        # Later price shifts must not change the mix.
        policy.decide(3, 100.0, p[3] * 100.0, f[3])
        np.testing.assert_array_equal(policy.weights, frozen)

    def test_explicit_weights(self, small_markets, small_dataset):
        w = np.array([1.0, 1.0, 0, 0, 0, 0])
        policy = ConstantPortfolioPolicy(small_markets, weights=w)
        counts = policy.decide(
            0, 400.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        assert counts[2:].sum() == 0
        assert counts[:2].sum() > 0

    def test_autoscales_counts(self, small_markets, small_dataset):
        w = np.array([1.0, 0, 0, 0, 0, 0])
        policy = ConstantPortfolioPolicy(small_markets, weights=w)
        low = policy.decide(0, 100.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        high = policy.decide(1, 1000.0, small_dataset.prices[1], small_dataset.failure_probs[1])
        assert high.sum() > low.sum()

    def test_weight_validation(self, small_markets):
        with pytest.raises(ValueError):
            ConstantPortfolioPolicy(small_markets, weights=np.ones(3))
        with pytest.raises(ValueError):
            ConstantPortfolioPolicy(small_markets, weights=np.zeros(6))
        with pytest.raises(ValueError):
            ConstantPortfolioPolicy(small_markets, calibrate_at=-1)


class TestOnDemand:
    def test_requires_ondemand_markets(self, catalog, small_markets):
        with pytest.raises(ValueError):
            OnDemandPolicy(small_markets)  # all spot

    def test_allocates_only_ondemand(self, catalog):
        markets = catalog.all_markets()[:8]  # mix of spot/od
        policy = OnDemandPolicy(markets)
        prices = np.ones(8)
        counts = policy.decide(0, 500.0, prices, np.zeros(8))
        for i, m in enumerate(markets):
            if counts[i] > 0:
                assert not m.revocable

    def test_named_market(self, catalog):
        markets = catalog.all_markets()[:8]
        name = markets[1].instance.name
        policy = OnDemandPolicy(markets, market_name=name)
        counts = policy.decide(0, 100.0, np.ones(8), np.zeros(8))
        assert counts[policy.index] > 0
        with pytest.raises(ValueError):
            OnDemandPolicy(markets, market_name="x1e.16xlarge")


class TestQuThreshold:
    def test_overprovision_factor(self, small_markets):
        policy = QuThresholdPolicy(
            small_markets, num_markets=4, failure_threshold=1
        )
        assert policy.overprovision_factor == pytest.approx(4 / 3)

    def test_survives_k_failures(self, small_markets, small_dataset):
        policy = QuThresholdPolicy(
            small_markets, num_markets=4, failure_threshold=1
        )
        counts = policy.decide(
            0, 600.0, small_dataset.prices[0], small_dataset.failure_probs[0]
        )
        caps = np.array([m.capacity_rps for m in small_markets])
        per_market = counts * caps
        used = np.where(per_market > 0)[0]
        assert used.size == 4
        # Losing the biggest used market still covers demand.
        worst = per_market.sum() - per_market[used].max()
        assert worst >= 600.0 - caps[used].max()  # up to one-server slack

    def test_validation(self, small_markets):
        with pytest.raises(ValueError):
            QuThresholdPolicy(small_markets, num_markets=0)
        with pytest.raises(ValueError):
            QuThresholdPolicy(small_markets, num_markets=3, failure_threshold=3)
