"""Unit tests for the interval-level cost simulator."""

import numpy as np
import pytest

from repro.core import CostModel
from repro.simulator import CostSimulator
from repro.workloads import constant_workload


class FixedCountsPolicy:
    """Deterministic policy: always the same counts."""

    def __init__(self, counts):
        self.counts = np.asarray(counts)
        self.calls = []

    def decide(self, t, observed_rps, prices, failure_probs):
        self.calls.append((t, observed_rps))
        return self.counts


class TestAccounting:
    def test_billing_without_revocations(self, small_dataset):
        """With failure probs forced to zero, cost = sum(counts x price x h)."""
        ds = small_dataset
        zero_fail = type(ds)(
            markets=ds.markets,
            prices=ds.prices,
            failure_probs=np.zeros_like(ds.failure_probs),
            interval_seconds=ds.interval_seconds,
        )
        # Demand below the single m4.large's 40 rps: no shortfall possible.
        trace = constant_workload(24, 30.0)
        sim = CostSimulator(zero_fail, trace, seed=0)
        counts = np.array([1, 0, 0, 0, 0, 0])
        report = sim.run(FixedCountsPolicy(counts))
        expected = zero_fail.prices[:24, 0].sum()  # 1 server, hourly billing
        assert report.provisioning_cost == pytest.approx(expected)
        assert report.sla_penalty_cost == 0.0
        assert report.revocation_events == 0

    def test_under_provisioning_charged(self, small_dataset):
        ds = small_dataset
        zero_fail = type(ds)(
            markets=ds.markets,
            prices=ds.prices,
            failure_probs=np.zeros_like(ds.failure_probs),
        )
        trace = constant_workload(10, 1000.0)
        sim = CostSimulator(zero_fail, trace, seed=0, cost_model=CostModel(penalty=0.02))
        report = sim.run(FixedCountsPolicy(np.zeros(6)))
        # Shortfall is the full 1000 rps every interval.
        assert report.unserved_fraction == pytest.approx(1.0)
        assert report.sla_penalty_cost == pytest.approx(0.02 * 1000.0 * 10)

    def test_revocations_create_gaps(self, small_dataset):
        """High failure probabilities produce events and some shortfall."""
        ds = small_dataset
        hot = type(ds)(
            markets=ds.markets,
            prices=ds.prices,
            failure_probs=np.full_like(ds.failure_probs, 0.5),
        )
        trace = constant_workload(48, 400.0)
        sim = CostSimulator(hot, trace, seed=1, startup_seconds=1800.0)
        # Exactly enough capacity: every revocation causes shortfall.
        counts = np.zeros(6, dtype=np.int64)
        counts[0] = int(np.ceil(400.0 / ds.markets[0].capacity_rps))
        report = sim.run(FixedCountsPolicy(counts))
        assert report.revocation_events > 5
        assert report.unserved_requests > 0

    def test_boot_transaction_cost(self, small_dataset):
        """Fleet growth pays the startup gap; steady fleets don't."""
        ds = small_dataset
        zero_fail = type(ds)(
            markets=ds.markets,
            prices=ds.prices,
            failure_probs=np.zeros_like(ds.failure_probs),
        )
        trace = constant_workload(10, 100.0)
        sim = CostSimulator(zero_fail, trace, seed=0, startup_seconds=360.0)

        class GrowingPolicy:
            def decide(self, t, observed, prices, probs):
                counts = np.zeros(6, dtype=np.int64)
                counts[0] = t + 1
                return counts

        steady = sim.run(FixedCountsPolicy(np.array([10, 0, 0, 0, 0, 0])))
        growing = sim.run(GrowingPolicy())
        # Same total server-hours bought over the run (10+... vs 55); compare
        # per server-hour rate instead: growing pays the boot surcharge.
        growing_hours = sum(t + 1 for t in range(10))
        steady_hours = 100
        assert growing.provisioning_cost / growing_hours > (
            steady.provisioning_cost / steady_hours
        )

    def test_policy_sees_previous_demand(self, small_dataset):
        trace = constant_workload(5, 123.0)
        sim = CostSimulator(small_dataset, trace, seed=0)
        policy = FixedCountsPolicy(np.zeros(6))
        sim.run(policy)
        assert policy.calls[0] == (0, 123.0)
        assert all(obs == 123.0 for _, obs in policy.calls)

    def test_same_seed_same_weather(self, small_dataset, wiki_week):
        sim = CostSimulator(small_dataset, wiki_week, seed=5)
        r1 = sim.run(FixedCountsPolicy(np.array([2, 2, 2, 0, 0, 0])))
        r2 = sim.run(FixedCountsPolicy(np.array([2, 2, 2, 0, 0, 0])))
        assert r1.total_cost == r2.total_cost
        assert r1.revocation_events == r2.revocation_events


class TestValidation:
    def test_bad_counts_shape(self, small_dataset, wiki_week):
        sim = CostSimulator(small_dataset, wiki_week)

        class BadPolicy:
            def decide(self, *a):
                return np.zeros(3)

        with pytest.raises(ValueError):
            sim.run(BadPolicy())

    def test_negative_counts(self, small_dataset, wiki_week):
        sim = CostSimulator(small_dataset, wiki_week)

        class NegPolicy:
            def decide(self, *a):
                return -np.ones(6)

        with pytest.raises(ValueError):
            sim.run(NegPolicy())

    def test_short_trace_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            CostSimulator(small_dataset, constant_workload(1, 10.0))


class TestReport:
    def test_savings_and_summary(self, small_dataset, wiki_week):
        sim = CostSimulator(small_dataset, wiki_week, seed=2)
        cheap = sim.run(FixedCountsPolicy(np.array([1, 0, 0, 0, 0, 0])), name="cheap")
        rich = sim.run(FixedCountsPolicy(np.array([5, 5, 5, 5, 5, 5])), name="rich")
        assert cheap.provisioning_cost < rich.provisioning_cost
        assert 0.0 < cheap.savings_vs(rich) < 1.0 or cheap.total_cost > rich.total_cost
        assert set(rich.summary()) >= {"total_cost", "provisioning_cost"}
