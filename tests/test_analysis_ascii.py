"""Unit tests for ASCII rendering helpers."""

import numpy as np
import pytest

from repro.analysis import sparkline, timeseries_plot


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline(np.arange(8))
        assert s[0] == "▁"
        assert s[-1] == "█"
        assert len(s) == 8

    def test_constant_series(self):
        assert sparkline(np.ones(5)) == "▁▁▁▁▁"

    def test_resampling(self):
        s = sparkline(np.arange(100), width=10)
        assert len(s) == 10

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestTimeseriesPlot:
    def test_dimensions(self):
        out = timeseries_plot(np.sin(np.linspace(0, 6, 50)), height=6, width=50)
        lines = out.splitlines()
        assert len(lines) == 6
        assert all("|" in ln for ln in lines)

    def test_label_header(self):
        out = timeseries_plot(np.arange(5.0), label="demand")
        assert out.splitlines()[0] == "demand"

    def test_peak_marked_on_top_row(self):
        vals = np.zeros(20)
        vals[10] = 100.0
        out = timeseries_plot(vals, height=5, width=20)
        top = out.splitlines()[0]
        assert "*" in top

    def test_validation(self):
        with pytest.raises(ValueError):
            timeseries_plot(np.arange(5.0), height=1)

    def test_empty(self):
        assert timeseries_plot(np.array([]), label="x") == "x"
