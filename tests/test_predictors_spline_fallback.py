"""The spline refit fallback is narrow and logged, not silently swallowed."""

from __future__ import annotations

import logging

import numpy as np
import pytest

import repro.predictors.spline as spline_mod
from repro.predictors.spline import SplinePredictor


def feed(predictor, n=60):
    rng = np.random.default_rng(0)
    for t in range(n):
        predictor.observe(100.0 + 10.0 * np.sin(t / 4.0) + rng.normal())


def test_refit_failure_logs_and_falls_back(monkeypatch, caplog):
    predictor = SplinePredictor(intervals_per_day=24, window_days=2)

    def boom(*args, **kwargs):
        raise ValueError("synthetic fitpack failure")

    monkeypatch.setattr(spline_mod, "splrep", boom)
    with caplog.at_level(logging.WARNING, logger="repro.predictors.spline"):
        feed(predictor)
    assert any("spline refit failed" in rec.message for rec in caplog.records)
    # Cold-start prediction still works (persistence fallback).
    result = predictor.predict(4)
    assert result.mean.shape == (4,)
    assert np.all(result.upper >= result.mean)


def test_unexpected_exceptions_propagate(monkeypatch):
    predictor = SplinePredictor(intervals_per_day=24, window_days=2)

    def boom(*args, **kwargs):
        raise RuntimeError("not a fit-geometry error")

    monkeypatch.setattr(spline_mod, "splrep", boom)
    with pytest.raises(RuntimeError):
        feed(predictor)
