"""The CI gate: the whole source tree must be spotlint-clean.

If this test fails, either fix the violation or — when the code is right
and the rule is wrong for that line — add a
``# spotlint: disable=SWxxx`` suppression with a reason in the adjacent
code review.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint import lint_paths, main

SRC = Path(__file__).resolve().parents[1] / "src"


def test_src_tree_is_spotlint_clean():
    findings = lint_paths([SRC])
    report = "\n".join(f.format() for f in findings)
    assert not findings, f"spotlint found violations:\n{report}"


def test_cli_gate_exit_codes(capsys):
    assert main([str(SRC)]) == 0
    capsys.readouterr()
    bad_fixture = Path(__file__).parent / "fixtures" / "lint" / "sw001_bad.py"
    assert main([str(bad_fixture)]) == 1
    out = capsys.readouterr().out
    assert "SW001" in out and "sw001_bad.py:" in out
