"""Tests for trace summarization: aggregation, critical path, coverage."""

import pytest

from repro.obs import (
    aggregate_by_name,
    child_coverage,
    critical_path,
    format_summary,
    interval_spans,
    span_children,
    summarize_file,
    write_trace,
)


def _rec(id, parent, name, depth, start, dur, **attrs):
    return {
        "id": id,
        "parent": parent,
        "name": name,
        "depth": depth,
        "start": start,
        "dur": dur,
        "attrs": attrs,
    }


@pytest.fixture
def records():
    """root(100ms) -> [observe(10ms), solve(85ms) -> iterate(80ms)]."""
    return [
        _rec(0, None, "controller.step", 0, 0.0, 0.100),
        _rec(1, 0, "controller.observe", 1, 0.000, 0.010),
        _rec(2, 0, "controller.solve", 1, 0.012, 0.085),
        _rec(3, 2, "qp.iterate", 2, 0.013, 0.080),
    ]


class TestStructure:
    def test_span_children(self, records):
        children = span_children(records)
        assert [r["id"] for r in children[None]] == [0]
        assert [r["id"] for r in children[0]] == [1, 2]
        assert [r["id"] for r in children[2]] == [3]

    def test_aggregate_by_name_self_time(self, records):
        aggs = {a["name"]: a for a in aggregate_by_name(records)}
        # solve's self time excludes its iterate child.
        assert aggs["controller.solve"]["self"] == pytest.approx(0.005)
        assert aggs["controller.step"]["self"] == pytest.approx(0.005)
        assert aggs["qp.iterate"]["self"] == pytest.approx(0.080)
        # Sorted by total descending: the root first.
        assert aggregate_by_name(records)[0]["name"] == "controller.step"

    def test_critical_path_follows_longest_children(self, records):
        path = critical_path(records)
        assert [p["name"] for p in path] == [
            "controller.step",
            "controller.solve",
            "qp.iterate",
        ]
        assert path[0]["share"] == 1.0
        assert path[1]["share"] == pytest.approx(0.85)
        assert path[2]["share"] == pytest.approx(0.080 / 0.085)

    def test_child_coverage(self, records):
        coverage = child_coverage(records)
        assert coverage[0] == pytest.approx(0.95)
        assert coverage[2] == pytest.approx(0.080 / 0.085)
        assert 3 not in coverage  # leaf spans have no coverage entry

    def test_interval_spans_ordered(self, records):
        more = records + [_rec(4, None, "controller.step", 0, 0.2, 0.05)]
        steps = interval_spans(more)
        assert [s["id"] for s in steps] == [0, 4]

    def test_empty_trace(self):
        assert critical_path([]) == []
        assert format_summary([]) == "trace contains no spans"


class TestFormatting:
    def test_format_summary_sections(self, records):
        text = format_summary(records)
        assert "top spans" in text
        assert "critical path" in text
        assert "95.0% covered by child spans" in text
        assert "interval timeline" in text
        assert "per-interval phase breakdown" in text

    def test_top_limits_rows(self, records):
        text = format_summary(records, top=1)
        # Only the root row survives in the top-spans table.
        assert "qp.iterate" in text  # still on the critical path
        lines = text.splitlines()
        top_table = lines[: lines.index("")]
        assert sum("controller.observe" in ln for ln in top_table) == 0

    def test_summarize_file_round_trip(self, records, tmp_path):
        path = write_trace(records, tmp_path / "t.jsonl")
        assert "critical path" in summarize_file(path)


class TestTracedRunCoverage:
    def test_cell_spans_cover_sim_run(self):
        """An instrumented run's sim.run span is covered by its intervals."""
        from repro.obs import Tracer, set_tracer

        tracer = Tracer(enabled=True)
        old = set_tracer(tracer)
        try:
            from repro.experiments.fig6a_constant import run_fig6a

            run_fig6a(hours=6, horizons=(2,))
        finally:
            set_tracer(old)
        records = tracer.records()
        by_id = {r["id"]: r for r in records}
        coverage = child_coverage(records)
        run_ids = [r["id"] for r in records if r["name"] == "sim.run"]
        assert run_ids, "no sim.run spans recorded"
        for rid in run_ids:
            assert coverage[rid] > 0.5, by_id[rid]
