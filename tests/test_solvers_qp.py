"""Unit tests for the ADMM QP solver."""

import numpy as np
import pytest

from repro.solvers import ADMMSolver, QPProblem, SolverStatus, solve_qp
from repro.solvers.kkt import kkt_residuals

from conftest import random_feasible_qp


class TestQPProblem:
    def test_validates_dimensions(self):
        with pytest.raises(ValueError, match="P must be"):
            QPProblem(np.eye(3), np.zeros(2), np.eye(2), np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="columns"):
            QPProblem(np.eye(2), np.zeros(2), np.ones((1, 3)), [0.0], [1.0])
        with pytest.raises(ValueError, match="one entry per row"):
            QPProblem(np.eye(2), np.zeros(2), np.eye(2), np.zeros(3), np.ones(3))

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError, match="infeasible box"):
            QPProblem(np.eye(1), [0.0], [[1.0]], [2.0], [1.0])

    def test_rejects_asymmetric_P(self):
        P = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            QPProblem(P, np.zeros(2), np.eye(2), np.zeros(2), np.ones(2))

    def test_objective_value(self):
        prob = QPProblem(2 * np.eye(2), [1.0, -1.0], np.eye(2), [-1, -1], [1, 1])
        assert prob.objective([1.0, 1.0]) == pytest.approx(2.0)


class TestUnconstrainedOptimum:
    def test_interior_solution_matches_closed_form(self):
        # min (x-3)^2 + (y+1)^2 with a box wide enough to be inactive.
        P = 2 * np.eye(2)
        q = np.array([-6.0, 2.0])
        prob = QPProblem(P, q, np.eye(2), [-10, -10], [10, 10])
        res = solve_qp(prob)
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [3.0, -1.0], atol=1e-5)

    def test_active_bound(self):
        # Same objective but x <= 1 binds.
        prob = QPProblem(2 * np.eye(2), [-6.0, 2.0], np.eye(2), [-10, -10], [1, 10])
        res = solve_qp(prob)
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [1.0, -1.0], atol=1e-5)
        # Dual of the active row must be positive (pushing against upper).
        assert res.y[0] > 1e-8

    def test_equality_row(self):
        # x + y == 1, min x^2 + y^2 -> (0.5, 0.5).
        prob = QPProblem(
            2 * np.eye(2), np.zeros(2), [[1.0, 1.0]], [1.0], [1.0]
        )
        res = solve_qp(prob)
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [0.5, 0.5], atol=1e-5)


class TestKKTOnRandomProblems:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_feasible_qps_satisfy_kkt(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 20))
        m = int(rng.integers(n, 3 * n))
        prob = random_feasible_qp(rng, n, m)
        res = solve_qp(prob)
        assert res.status is SolverStatus.OPTIMAL
        kk = kkt_residuals(prob, res.x, res.y)
        assert kk.max() < 1e-3


class TestInfeasibility:
    def test_primal_infeasible_detected(self):
        prob = QPProblem(
            np.eye(1), [0.0], [[1.0], [1.0]], [-np.inf, 1.0], [-1.0, np.inf]
        )
        res = solve_qp(prob)
        assert res.status is SolverStatus.PRIMAL_INFEASIBLE

    def test_unbounded_detected(self):
        prob = QPProblem(np.zeros((1, 1)), [-1.0], [[1.0]], [0.0], [np.inf])
        res = solve_qp(prob)
        assert res.status is SolverStatus.DUAL_INFEASIBLE


class TestSolverReuse:
    def test_warm_start_converges_faster(self):
        rng = np.random.default_rng(5)
        prob = random_feasible_qp(rng, 12, 20)
        solver = ADMMSolver(prob.P, prob.A)
        cold = solver.solve(prob.q, prob.l, prob.u)
        solver2 = ADMMSolver(prob.P, prob.A)
        solver2.warm_start(cold.x, cold.y)
        warm = solver2.solve(prob.q, prob.l, prob.u)
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.iterations <= cold.iterations

    def test_reuse_with_new_linear_terms(self):
        rng = np.random.default_rng(6)
        prob = random_feasible_qp(rng, 8, 12)
        solver = ADMMSolver(prob.P, prob.A)
        first = solver.solve(prob.q, prob.l, prob.u)
        # Perturb q: the solver must track the new optimum.
        q2 = prob.q + 0.1 * rng.normal(size=prob.q.size)
        second = solver.solve(q2, prob.l, prob.u)
        prob2 = QPProblem(prob.P, q2, prob.A, prob.l, prob.u)
        kk = kkt_residuals(prob2, second.x, second.y)
        assert first.status is SolverStatus.OPTIMAL
        assert second.status is SolverStatus.OPTIMAL
        assert kk.max() < 1e-3

    def test_reset_clears_state(self):
        rng = np.random.default_rng(7)
        prob = random_feasible_qp(rng, 6, 9)
        solver = ADMMSolver(prob.P, prob.A)
        solver.solve(prob.q, prob.l, prob.u)
        solver.reset()
        res = solver.solve(prob.q, prob.l, prob.u)
        assert res.status is SolverStatus.OPTIMAL


class TestParameterValidation:
    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError, match="rho"):
            ADMMSolver(np.eye(2), np.eye(2), rho=-1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            ADMMSolver(np.eye(2), np.eye(2), alpha=2.5)

    def test_rejects_mismatched_solve_inputs(self):
        solver = ADMMSolver(np.eye(2), np.eye(2))
        with pytest.raises(ValueError, match="q must have"):
            solver.solve(np.zeros(3), np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="entries"):
            solver.solve(np.zeros(2), np.zeros(3), np.ones(3))

    def test_rejects_crossed_bounds_at_solve(self):
        solver = ADMMSolver(np.eye(1), np.eye(1))
        with pytest.raises(ValueError, match="infeasible box"):
            solver.solve(np.zeros(1), np.array([1.0]), np.array([0.0]))


class TestScaling:
    def test_badly_scaled_problem_converges(self):
        # Coefficients spanning 6 orders of magnitude (price-like data).
        rng = np.random.default_rng(8)
        n, m = 10, 15
        D = np.diag(10.0 ** rng.uniform(-3, 3, size=n))
        L = rng.normal(size=(n, n))
        P = D @ (L @ L.T + 0.1 * np.eye(n)) @ D
        q = D @ rng.normal(size=n)
        A = rng.normal(size=(m, n)) @ D
        x0 = rng.normal(size=n) / np.diag(D)
        prob = QPProblem(P, q, A, A @ x0 - 1.0, A @ x0 + 1.0)
        res = solve_qp(prob)
        assert res.status is SolverStatus.OPTIMAL
        assert kkt_residuals(prob, res.x, res.y).max() < 1e-2
