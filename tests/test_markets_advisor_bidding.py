"""Unit tests for the Spot Advisor emulation and bid-era mechanics."""

import numpy as np
import pytest

from repro.markets import (
    OnDemandBid,
    QuantileBid,
    advisor_table,
    bucket_for,
    default_catalog,
    effective_failure_probs,
    generate_price_matrix,
    revocations_from_bids,
)


@pytest.fixture(scope="module")
def markets():
    return default_catalog().spot_markets(5)


@pytest.fixture(scope="module")
def prices(markets):
    return generate_price_matrix(markets, 24 * 14, seed=0)


class TestAdvisorBuckets:
    @pytest.mark.parametrize(
        "p,label",
        [
            (0.0, "<5%"),
            (0.049, "<5%"),
            (0.05, "5-10%"),
            (0.12, "10-15%"),
            (0.19, "15-20%"),
            (0.5, ">20%"),
            (1.0, ">20%"),
        ],
    )
    def test_bucketing(self, p, label):
        assert bucket_for(p).label == label

    def test_validation(self):
        with pytest.raises(ValueError):
            bucket_for(-0.1)
        with pytest.raises(ValueError):
            bucket_for(1.1)

    def test_table(self, markets, prices):
        probs = np.full((10, 5), 0.07)
        rows = advisor_table(markets, probs, prices[:10])
        assert len(rows) == 5
        assert all(r["interruption_frequency"] == "5-10%" for r in rows)
        assert all(0 <= r["savings_over_ondemand"] <= 1 for r in rows)

    def test_table_width_check(self, markets):
        with pytest.raises(ValueError):
            advisor_table(markets, np.ones((3, 2)) * 0.1)


class TestBidStrategies:
    def test_ondemand_bid(self, markets, prices):
        bids = OnDemandBid().bids(markets, prices)
        expected = np.array([m.instance.ondemand_price for m in markets])
        np.testing.assert_allclose(bids, expected)

    def test_ondemand_multiplier(self, markets, prices):
        bids = OnDemandBid(multiplier=2.0).bids(markets, prices)
        expected = 2.0 * np.array([m.instance.ondemand_price for m in markets])
        np.testing.assert_allclose(bids, expected)

    def test_quantile_bid_between_extremes(self, markets, prices):
        bids = QuantileBid(0.9).bids(markets, prices)
        assert np.all(bids >= prices.min(axis=0))
        assert np.all(bids <= prices.max(axis=0) + 1e-12)

    def test_quantile_bid_cold_start(self, markets):
        bid = QuantileBid(0.9).bid(markets[0], np.array([]))
        assert bid == markets[0].instance.ondemand_price

    def test_validation(self):
        with pytest.raises(ValueError):
            OnDemandBid(multiplier=0.0)
        with pytest.raises(ValueError):
            QuantileBid(quantile=0.0)


class TestBidRevocations:
    def test_crossings(self):
        prices = np.array([[1.0, 5.0], [3.0, 1.0]])
        events = revocations_from_bids(prices, np.array([2.0, 2.0]))
        np.testing.assert_array_equal(events, [[False, True], [True, False]])

    def test_quantile_controls_revocation_rate(self, markets, prices):
        aggressive = QuantileBid(0.5).bids(markets, prices)
        safe = QuantileBid(0.99).bids(markets, prices)
        rate_aggr = revocations_from_bids(prices, aggressive).mean()
        rate_safe = revocations_from_bids(prices, safe).mean()
        assert rate_aggr > rate_safe
        assert rate_aggr == pytest.approx(0.5, abs=0.1)

    def test_effective_failure_probs_in_range(self, markets, prices):
        bids = QuantileBid(0.9).bids(markets, prices)
        f = effective_failure_probs(prices, bids, window=48)
        assert f.shape == prices.shape
        assert np.all((f >= 0) & (f <= 1))
        # Long-run frequency near the quantile complement.
        assert f[-1].mean() == pytest.approx(0.1, abs=0.08)

    def test_validation(self):
        with pytest.raises(ValueError):
            revocations_from_bids(np.ones((2, 2)), np.ones(3))
        with pytest.raises(ValueError):
            effective_failure_probs(np.ones((2, 2)), np.ones(2), window=0)
