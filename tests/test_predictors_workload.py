"""Unit tests for workload predictors (spline, baseline, reactive, EWMA, oracle)."""

import numpy as np
import pytest

from repro.predictors import (
    BaselinePredictor,
    EWMAPredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    PredictionResult,
    ReactivePredictor,
    SplinePredictor,
)
from repro.workloads import constant_workload, wikipedia_like


class TestPredictionResult:
    def test_bounds_must_bracket_mean(self):
        with pytest.raises(ValueError):
            PredictionResult(np.array([1.0]), np.array([2.0]), np.array([3.0]))
        with pytest.raises(ValueError):
            PredictionResult(np.array([1.0]), np.array([0.0]), np.array([0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            PredictionResult(np.ones(2), np.ones(3), np.ones(2))

    def test_horizon(self):
        r = PredictionResult(np.ones(4), np.ones(4), np.ones(4))
        assert r.horizon == 4


class TestReactivePredictor:
    def test_persists_last_value(self):
        p = ReactivePredictor()
        p.observe(42.0)
        r = p.predict(3)
        np.testing.assert_array_equal(r.mean, [42.0, 42.0, 42.0])

    def test_cold_start_is_zero(self):
        r = ReactivePredictor().predict(2)
        np.testing.assert_array_equal(r.mean, [0.0, 0.0])

    def test_padding(self):
        p = ReactivePredictor(padding_fraction=0.1)
        p.observe(100.0)
        r = p.predict(1)
        assert r.upper[0] == pytest.approx(110.0)

    def test_validation(self):
        p = ReactivePredictor()
        with pytest.raises(ValueError):
            p.observe(-1.0)
        with pytest.raises(ValueError):
            p.predict(0)


class TestEWMAPredictor:
    def test_tracks_level(self):
        p = EWMAPredictor(alpha=0.5)
        for v in (100.0, 100.0, 100.0, 100.0):
            p.observe(v)
        assert p.predict(1).mean[0] == pytest.approx(100.0)

    def test_band_grows_with_horizon(self):
        p = EWMAPredictor()
        rng = np.random.default_rng(0)
        for v in 100 + 10 * rng.standard_normal(200):
            p.observe(max(0.0, v))
        r = p.predict(5)
        widths = r.upper - r.lower
        assert np.all(np.diff(widths) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)


class TestOraclePredictor:
    def test_exact_future(self):
        trace = constant_workload(10, 0.0)
        trace.rates[:] = np.arange(10, dtype=np.float64)
        p = OraclePredictor(trace)
        r = p.predict(3)
        np.testing.assert_array_equal(r.mean, [0.0, 1.0, 2.0])
        p.observe(0.0)
        np.testing.assert_array_equal(p.predict(2).mean, [1.0, 2.0])

    def test_clamps_at_end(self):
        p = OraclePredictor(np.array([5.0, 7.0]))
        p.observe(0)
        p.observe(0)
        np.testing.assert_array_equal(p.predict(3).mean, [7.0, 7.0, 7.0])


class TestNoisyOraclePredictor:
    def test_zero_error_equals_truth(self):
        trace = wikipedia_like(1, seed=0)
        p = NoisyOraclePredictor(trace, 0.0, seed=1)
        np.testing.assert_allclose(p.predict(4).mean, trace.rates[:4])

    def test_error_magnitude_tracks_parameter(self):
        trace = wikipedia_like(1, seed=0)
        errs = []
        p = NoisyOraclePredictor(trace, 0.2, seed=1)
        for t in range(100):
            pred = p.predict(1).mean[0]
            errs.append((pred - trace.rates[t]) / trace.rates[t])
            p.observe(trace.rates[t])
        assert 0.1 < np.std(errs) < 0.35

    def test_repeated_predict_is_stable(self):
        trace = wikipedia_like(1, seed=0)
        p = NoisyOraclePredictor(trace, 0.1, seed=2)
        np.testing.assert_array_equal(p.predict(3).mean, p.predict(3).mean)


class TestSplinePredictor:
    def test_learns_diurnal_pattern(self):
        trace = wikipedia_like(3, seed=3)
        p = SplinePredictor(24)
        p.observe_many(trace.rates[: 14 * 24])
        errs = []
        for t in range(14 * 24, 16 * 24):
            pred = p.predict(1).mean[0]
            errs.append(abs(pred - trace.rates[t]) / trace.rates[t])
            p.observe(trace.rates[t])
        assert np.mean(errs) < 0.08  # paper: 3-5% typical error

    def test_upper_bound_rarely_undershoots(self):
        trace = wikipedia_like(3, seed=4)
        p = SplinePredictor(24)
        under = 0
        total = 0
        for t in range(len(trace)):
            if t >= 14 * 24:
                target = p.predict(1).upper[0]
                under += target < trace.rates[t]
                total += 1
            p.observe(trace.rates[t])
        assert under / total < 0.10

    def test_multi_horizon_shapes(self):
        p = SplinePredictor(24, max_horizon=12)
        p.observe_many(wikipedia_like(2, seed=5).rates)
        r = p.predict(12)
        assert r.horizon == 12
        with pytest.raises(ValueError):
            p.predict(13)

    def test_cold_start_reactive_fallback(self):
        p = SplinePredictor(24)
        p.observe(50.0)
        r = p.predict(2)
        np.testing.assert_array_equal(r.mean, [50.0, 50.0])

    def test_constant_input_predicts_constant(self):
        p = SplinePredictor(24)
        p.observe_many(np.full(14 * 24, 200.0))
        r = p.predict(4)
        np.testing.assert_allclose(r.mean, 200.0, rtol=0.05)

    def test_rejects_negative_observation(self):
        with pytest.raises(ValueError):
            SplinePredictor(24).observe(-5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SplinePredictor(0)
        with pytest.raises(ValueError):
            SplinePredictor(24, confidence=1.5)


class TestBaselinePredictor:
    def test_no_padding(self):
        trace = wikipedia_like(2, seed=6)
        p = BaselinePredictor(24)
        p.observe_many(trace.rates)
        r = p.predict(3)
        np.testing.assert_array_equal(r.mean, r.upper)
        np.testing.assert_array_equal(r.mean, r.lower)

    def test_roughly_symmetric_errors(self):
        """The [1] algorithm under-provisions about half the time."""
        trace = wikipedia_like(3, seed=7)
        p = BaselinePredictor(24)
        under = total = 0
        for t in range(len(trace)):
            if t >= 14 * 24:
                under += p.predict(1).mean[0] < trace.rates[t]
                total += 1
            p.observe(trace.rates[t])
        assert 0.25 < under / total < 0.75
