"""Unit tests for the SPO optimizer, capacity planner and shortfall tracker."""

import numpy as np
import pytest

from repro.core import (
    AllocationConstraints,
    CapacityPlanner,
    CostModel,
    MPOOptimizer,
    ShortfallTracker,
    SPOOptimizer,
)
from repro.predictors.base import PredictionResult


class TestSPO:
    def test_is_h1_special_case(self, small_markets, small_dataset):
        """SPO must produce the same allocation as MPO with H=1."""
        M = small_dataset.event_covariance()
        prices = small_dataset.prices[0]
        failures = small_dataset.failure_probs[0]
        spo = SPOOptimizer(small_markets)
        mpo = MPOOptimizer(small_markets, horizon=1)
        r1 = spo.optimize(1000.0, prices, failures, M)
        r2 = mpo.optimize(
            np.array([1000.0]), prices[None, :], failures[None, :], M
        )
        np.testing.assert_allclose(
            r1.plan.fractions, r2.plan.fractions, atol=1e-4
        )

    def test_respects_constraints(self, small_markets, small_dataset):
        constraints = AllocationConstraints(a_total_max=1.3, a_market_max=0.5)
        spo = SPOOptimizer(small_markets, constraints=constraints)
        res = spo.optimize(
            500.0,
            small_dataset.prices[0],
            small_dataset.failure_probs[0],
            small_dataset.event_covariance(),
        )
        assert constraints.feasible(res.plan.fractions[0], tol=1e-3)

    def test_accessors(self, small_markets):
        spo = SPOOptimizer(small_markets, cost_model=CostModel(penalty=0.0))
        assert spo.markets == small_markets
        assert spo.cost_model.penalty == 0.0
        assert spo.constraints.a_total_min == 1.0


class TestCapacityPlanner:
    def _prediction(self):
        mean = np.array([100.0, 110.0])
        return PredictionResult(mean, mean - 10.0, mean + 20.0)

    def test_uses_upper_bound(self):
        planner = CapacityPlanner()
        np.testing.assert_allclose(
            planner.targets(self._prediction()), [120.0, 130.0]
        )

    def test_point_mode(self):
        planner = CapacityPlanner(use_upper_bound=False)
        np.testing.assert_allclose(
            planner.targets(self._prediction()), [100.0, 110.0]
        )

    def test_extra_padding_and_floor(self):
        planner = CapacityPlanner(extra_padding=0.5, min_rps=200.0)
        np.testing.assert_allclose(
            planner.targets(self._prediction()), [200.0, 200.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityPlanner(extra_padding=-0.1)
        with pytest.raises(ValueError):
            CapacityPlanner(min_rps=-1.0)


class TestShortfallTracker:
    def test_only_under_predictions_count(self):
        tr = ShortfallTracker(window=10)
        tr.record(actual_rps=120.0, predicted_rps=100.0)  # under by 20
        tr.record(actual_rps=80.0, predicted_rps=100.0)  # over: counts as 0
        assert tr.expected_shortfall_rps == pytest.approx(10.0)
        assert len(tr) == 2

    def test_empty_is_zero(self):
        assert ShortfallTracker().expected_shortfall_rps == 0.0

    def test_window_rolls(self):
        tr = ShortfallTracker(window=2)
        tr.record(200.0, 100.0)
        tr.record(100.0, 100.0)
        tr.record(100.0, 100.0)
        assert tr.expected_shortfall_rps == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShortfallTracker(window=0)
