"""Property-based tests for the multi-period optimizer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AllocationConstraints, CostModel, MPOOptimizer
from repro.markets import default_catalog


def build_optimizer(num_markets, horizon, *, alpha=1.0, gamma=0.0, constraints=None):
    markets = default_catalog().spot_markets(num_markets)
    return MPOOptimizer(
        markets,
        horizon=horizon,
        cost_model=CostModel(risk_aversion=alpha, churn_penalty=gamma),
        constraints=constraints or AllocationConstraints(a_total_max=2.0),
    )


def random_inputs(rng, num_markets, horizon):
    prices = rng.uniform(0.01, 5.0, size=(horizon, num_markets))
    failures = rng.uniform(0.0, 0.3, size=(horizon, num_markets))
    base = rng.uniform(0.0, 0.3, size=(num_markets, num_markets))
    M = base @ base.T + 1e-4 * np.eye(num_markets)
    targets = rng.uniform(100.0, 50_000.0, size=horizon)
    return targets, prices, failures, M


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_markets=st.integers(2, 10),
    horizon=st.integers(1, 5),
)
def test_plan_always_feasible(seed, num_markets, horizon):
    """Every optimized plan satisfies the allocation constraints."""
    rng = np.random.default_rng(seed)
    constraints = AllocationConstraints(a_total_min=1.0, a_total_max=1.8)
    opt = build_optimizer(num_markets, horizon, constraints=constraints)
    targets, prices, failures, M = random_inputs(rng, num_markets, horizon)
    res = opt.optimize(targets, prices, failures, M)
    assert res.solver.status.ok
    for tau in range(horizon):
        assert constraints.feasible(res.plan.fractions[tau], tol=5e-3)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), num_markets=st.integers(2, 8))
def test_deployed_capacity_covers_target(seed, num_markets):
    """Integer counts realize at least the target demand."""
    rng = np.random.default_rng(seed)
    opt = build_optimizer(num_markets, 2)
    targets, prices, failures, M = random_inputs(rng, num_markets, 2)
    res = opt.optimize(targets, prices, failures, M)
    counts = res.plan.counts(0)
    assert counts @ opt.capacities >= targets[0] - 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_price_increase_never_attracts_allocation(seed):
    """Raising one market's price (only) must not increase its share."""
    rng = np.random.default_rng(seed)
    n, h = 5, 2
    opt = build_optimizer(n, h, alpha=0.1)
    targets, prices, failures, M = random_inputs(rng, n, h)
    res_lo = opt.optimize(targets, prices, failures, M)
    j = int(rng.integers(0, n))
    prices_hi = prices.copy()
    prices_hi[:, j] *= 10.0
    res_hi = opt.optimize(targets, prices_hi, failures, M)
    assert (
        res_hi.plan.fractions[:, j].sum()
        <= res_lo.plan.fractions[:, j].sum() + 1e-3
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), gamma=st.floats(0.1, 10.0))
def test_churn_penalty_never_increases_distance_to_current(seed, gamma):
    """A churn penalty pulls the plan towards the deployed allocation."""
    rng = np.random.default_rng(seed)
    n = 5
    targets, prices, failures, M = random_inputs(rng, n, 1)
    current = rng.uniform(0.0, 0.4, size=n)
    current *= 1.0 / max(current.sum(), 1e-9)  # feasible-ish start

    free = build_optimizer(n, 1, gamma=0.0).optimize(
        targets, prices, failures, M, current_fractions=current
    )
    sticky = build_optimizer(n, 1, gamma=gamma).optimize(
        targets, prices, failures, M, current_fractions=current
    )
    d_free = float(np.abs(free.plan.fractions[0] - current).sum())
    d_sticky = float(np.abs(sticky.plan.fractions[0] - current).sum())
    assert d_sticky <= d_free + 1e-2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_objective_decomposition_consistent(seed):
    """Reported cost components evaluate to the objective's linear parts."""
    rng = np.random.default_rng(seed)
    n, h = 4, 3
    opt = build_optimizer(n, h, alpha=2.0)
    targets, prices, failures, M = random_inputs(rng, n, h)
    res = opt.optimize(targets, prices, failures, M)
    # Recompute provisioning from the plan directly.
    per_req = prices / opt.capacities[None, :]
    manual = sum(
        float((res.plan.fractions[t] * per_req[t]).sum() * targets[t])
        for t in range(h)
    )
    assert res.provisioning_cost == pytest.approx(manual, rel=1e-9)
    assert res.risk >= 0.0
