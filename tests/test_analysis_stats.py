"""Unit tests for bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis import bootstrap_mean_ci, paired_savings


class TestBootstrapMeanCI:
    def test_brackets_true_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=200)
        ci = bootstrap_mean_ci(samples, seed=1)
        assert ci.lower < 10.0 < ci.upper
        assert ci.lower < ci.mean < ci.upper

    def test_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_mean_ci(rng.normal(size=10), seed=2)
        large = bootstrap_mean_ci(rng.normal(size=1000), seed=2)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_single_sample_degenerate(self):
        ci = bootstrap_mean_ci(np.array([5.0]), seed=0)
        assert ci.mean == ci.lower == ci.upper == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(3), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(3), resamples=10)


class TestPairedSavings:
    def test_known_savings(self):
        a = np.array([50.0, 60.0, 70.0])
        b = np.array([100.0, 100.0, 100.0])
        ci = paired_savings(a, b, seed=0)
        assert ci.mean == pytest.approx(0.4)
        assert 0.2 < ci.lower <= ci.mean <= ci.upper < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_savings(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            paired_savings(np.ones(2), np.zeros(2))
