"""End-to-end determinism and causal-integrity tests for the event journal.

The acceptance contract of the ``spotweb-events/1`` layer:

- events disabled -> simulation outputs are bitwise identical to a run
  where the events module was never touched;
- events enabled -> identical-seed reruns produce byte-identical
  journals, serial and parallel sweeps produce byte-identical journals,
  and every causal chain roots at a ``warning.issued`` that reaches a
  terminal outcome.
"""

import json

import pytest

from repro.loadbalancer import TransiencyAwareLoadBalancer
from repro.obs import (
    EventLog,
    diff_journals,
    get_events,
    set_events,
    validate_events,
    write_events,
)
from repro.parallel import pmap
from repro.simulator import ClusterConfig, ClusterSimulation


@pytest.fixture
def evented():
    """Install a fresh enabled global event log; restore the old after."""
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


def run_revocation_scenario(*, warning_seconds=20.0):
    """A small cluster run with one revocation under a transiency LB."""
    cfg = ClusterConfig(
        seed=0,
        boot_seconds=5.0,
        warmup_seconds=5.0,
        warning_seconds=warning_seconds,
    )
    cluster_ref = {}

    def reprovision(capacity, _now):
        cluster_ref["c"].add_server(capacity)

    factory = lambda rec: TransiencyAwareLoadBalancer(  # noqa: E731
        rec, reprovision=reprovision
    )
    cluster = ClusterSimulation(cfg, factory)
    cluster_ref["c"] = cluster
    a = cluster.add_server(50.0, boot_seconds=0.0)
    cluster.add_server(50.0, boot_seconds=0.0)
    cluster.schedule_revocation(a.server_id, 5.0)
    rec = cluster.run(60.0, rate=80.0)
    return rec.summary()


def _journal_cell(seed):
    """Module-level sweep cell (picklable) that emits a tiny journal."""
    log = get_events()
    wid = log.open_warning(seed, t=float(seed), capacity_rps=10.0 * seed)
    with log.causal(wid):
        log.emit("session.migrate", t=float(seed) + 1.0, backend=seed,
                 migrated=seed)
    log.resolve_warning(wid, t=float(seed) + 2.0)
    return seed * seed


class TestDisabledIsInert:
    def test_disabled_run_emits_nothing(self):
        assert not get_events().enabled
        run_revocation_scenario()
        assert get_events().records() == []

    def test_results_identical_with_and_without_events(self, tmp_path):
        baseline = run_revocation_scenario()
        old = set_events(EventLog(enabled=True))
        try:
            evented = run_revocation_scenario()
        finally:
            set_events(old)
        # Bitwise: every metric agrees exactly, not approximately.
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            evented, sort_keys=True
        )


class TestJournalDeterminism:
    def test_rerun_byte_identical(self, evented, tmp_path):
        run_revocation_scenario()
        a = tmp_path / "a.jsonl"
        write_events(get_events().records(), a)
        set_events(EventLog(enabled=True))
        run_revocation_scenario()
        b = tmp_path / "b.jsonl"
        write_events(get_events().records(), b)
        assert a.read_bytes() == b.read_bytes()
        assert diff_journals(
            json_lines(a), json_lines(b)
        )["identical"]

    def test_serial_matches_parallel(self, evented, tmp_path):
        items = [1, 2, 3, 4]
        serial = pmap(_journal_cell, items, max_workers=1)
        a = tmp_path / "serial.jsonl"
        write_events(get_events().records(), a)
        set_events(EventLog(enabled=True))
        parallel = pmap(_journal_cell, items, max_workers=2)
        b = tmp_path / "parallel.jsonl"
        write_events(get_events().records(), b)
        assert serial == parallel == [1, 4, 9, 16]
        assert a.read_bytes() == b.read_bytes()

    def test_adopted_cells_validate(self, evented):
        pmap(_journal_cell, [1, 2], max_workers=1)
        records = get_events().records()
        validate_events(records)
        assert {r["id"] for r in records if r["kind"] == "warning.issued"} == {
            "c0.w0",
            "c1.w0",
        }


class TestCausalIntegrity:
    def test_every_chain_roots_at_a_resolved_warning(self, evented):
        run_revocation_scenario()
        records = get_events().records()
        validate_events(records)  # includes terminal-outcome check
        warnings = {
            r["id"] for r in records if r["kind"] == "warning.issued"
        }
        assert warnings, "scenario must issue at least one warning"
        for rec in records:
            if rec["kind"] in (
                "server.drain",
                "session.migrate",
                "replacement.request",
                "server.killed",
                "warning.resolved",
            ):
                assert rec["cause"] in warnings, rec

    def test_replacement_boot_links_to_warning(self, evented):
        run_revocation_scenario()
        records = get_events().records()
        warnings = {
            r["id"] for r in records if r["kind"] == "warning.issued"
        }
        boots = [r for r in records if r["kind"] == "server.boot"]
        replacement_boots = [b for b in boots if b["cause"] is not None]
        assert replacement_boots, "reprovisioned server must boot"
        assert all(b["cause"] in warnings for b in replacement_boots)

    def test_outcomes_are_terminal(self, evented):
        run_revocation_scenario()
        resolved = [
            r
            for r in get_events().records()
            if r["kind"] == "warning.resolved"
        ]
        assert resolved
        assert all(
            r["attrs"]["outcome"] in ("migrated", "completed", "failed")
            for r in resolved
        )


def json_lines(path):
    lines = path.read_text().splitlines()
    return [json.loads(line) for line in lines[1:]]  # skip header
