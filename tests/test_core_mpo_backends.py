"""Backend agreement tests and extra runner coverage."""

import numpy as np
import pytest

from repro.core import CostModel, MPOOptimizer
from repro.simulator import CostSimulator
from repro.workloads import constant_workload


class TestMPOBackends:
    def test_backends_agree(self, small_markets, small_dataset):
        """ADMM and active-set backends reach the same optimum."""
        M = small_dataset.event_covariance()
        targets = np.array([1000.0, 1200.0])
        prices = small_dataset.prices[:2]
        failures = small_dataset.failure_probs[:2]
        kwargs = dict(horizon=2, cost_model=CostModel(churn_penalty=0.3))
        res_admm = MPOOptimizer(small_markets, backend="admm", **kwargs).optimize(
            targets, prices, failures, M
        )
        res_aset = MPOOptimizer(
            small_markets, backend="active_set", **kwargs
        ).optimize(targets, prices, failures, M)
        assert res_aset.solver.objective == pytest.approx(
            res_admm.solver.objective, rel=1e-3, abs=1e-5
        )
        np.testing.assert_allclose(
            res_aset.plan.fractions, res_admm.plan.fractions, atol=5e-3
        )

    def test_unknown_backend_rejected(self, small_markets):
        with pytest.raises(ValueError, match="backend"):
            MPOOptimizer(small_markets, backend="simplex")


class TestRunnerLifetime:
    def test_forced_lifetime_revocations(self, small_dataset):
        """Google-style max lifetime forces periodic revocations."""
        ds = small_dataset
        calm = type(ds)(
            markets=ds.markets,
            prices=ds.prices,
            failure_probs=np.zeros_like(ds.failure_probs),
        )
        trace = constant_workload(48, 100.0)

        class FixedPolicy:
            def decide(self, t, observed, prices, probs):
                counts = np.zeros(6, dtype=np.int64)
                counts[0] = 3
                return counts

        no_life = CostSimulator(calm, trace, seed=0).run(FixedPolicy())
        with_life = CostSimulator(
            calm, trace, seed=0, max_lifetime_intervals=24
        ).run(FixedPolicy())
        assert no_life.revocation_events == 0
        assert with_life.revocation_events >= 1

    def test_lifetime_validation(self, small_dataset):
        with pytest.raises(ValueError):
            CostSimulator(
                small_dataset,
                constant_workload(5, 10.0),
                max_lifetime_intervals=0,
            )
