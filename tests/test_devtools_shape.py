"""Tests for spotshape: the abstract domain, contract summaries, per-rule
fixtures (positive + negative), suppressions, the two-pass cache, the
baseline workflow, the CLI, and the real-tree gate."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.baseline import (
    fingerprint,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.devtools.shape.analyze import (
    ENGINE_RULES,
    HOT_PREFIXES,
    SHAPE_RULES,
    analyze_module,
    analyze_paths,
)
from repro.devtools.shape.cli import BASELINE_SCHEMA, main
from repro.devtools.shape.domain import (
    ArrayVal,
    broadcast_dims,
    format_dims,
    promote,
    resolve_dim,
    scalar,
    unify_dim,
)
from repro.devtools.shape.summaries import (
    SummaryTable,
    extract_summaries,
    summary_digest,
)

FIXTURES = Path(__file__).parent / "fixtures" / "shape"
REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def shape_findings(paths=None, select=None):
    findings = analyze_paths(paths if paths is not None else [FIXTURES])
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


def analyze_one(name, *, with_seam=True):
    """Analyze a single fixture file against the seam's contract table."""
    mods = []
    if with_seam:
        seam = FIXTURES / "contracts_seam.py"
        mods.append(extract_summaries(seam.read_text(), seam))
    path = FIXTURES / name
    mods.append(extract_summaries(path.read_text(), path))
    return analyze_module(path.read_text(), path, SummaryTable(mods))


# ------------------------------------------------------------------- domain
def test_promote_flags_only_float_width_mixes():
    assert promote("float64", "float32") == ("float64", True)
    assert promote("float32", "float64") == ("float64", True)
    assert promote("float64", "float64") == ("float64", False)
    assert promote("float64", "int64") == ("float64", False)
    assert promote("int32", "int64") == ("int64", False)
    assert promote("bool", "float32") == ("float32", False)
    assert promote("?", "float64") == ("?", False)


def test_unify_dim_binds_symbols_and_rejects_literal_conflicts():
    bindings = {}
    dim, conflict = unify_dim("N", 3, bindings)
    assert (dim, conflict) == (3, None)
    assert bindings == {"N": 3}
    # The second use of N resolves to 3 and now conflicts with 5.
    dim, conflict = unify_dim("N", 5, bindings)
    assert dim == "?" and "3 and 5" in conflict.detail
    # Two distinct free symbols unify by aliasing, never by guessing.
    bindings = {}
    dim, conflict = unify_dim("H", "K", bindings)
    assert conflict is None
    assert resolve_dim("H", bindings) == resolve_dim("K", bindings)


def test_unify_dim_unknown_passes():
    assert unify_dim("?", 7, {}) == (7, None)
    assert unify_dim(7, "?", {}) == (7, None)
    assert unify_dim("*", 7, {}) == (7, None)


def test_broadcast_stretches_ones_without_binding():
    bindings = {}
    dims, conflict = broadcast_dims((1, "N"), (4, "N"), bindings)
    assert conflict is None and dims == (4, "N")
    assert "N" not in bindings  # 1 stretched; N never met a literal
    dims, conflict = broadcast_dims(("N",), (3,), bindings)
    assert conflict is None and dims == (3,)
    assert bindings["N"] == 3  # elementwise op *requires* N == 3
    _, conflict = broadcast_dims(("N",), (4,), bindings)
    assert conflict is not None and "3 vs 4" in conflict.detail


def test_broadcast_pads_missing_leading_dims():
    dims, conflict = broadcast_dims((3,), (2, 3), {})
    assert conflict is None and dims == (2, 3)


def test_format_dims_uses_contract_spelling():
    assert format_dims((3,)) == "(3,)"
    assert format_dims(("H", "N")) == "(H,N)"
    assert format_dims(()) == "()"


def test_arrayval_rank_and_scalar():
    assert ArrayVal(dims=("H", "N")).rank == 2
    assert scalar("float64").rank == 0
    assert scalar("float64").dtype == "float64"


# ---------------------------------------------------------------- summaries
def test_extract_summaries_reads_the_seam_contracts():
    seam = FIXTURES / "contracts_seam.py"
    mod = extract_summaries(seam.read_text(), seam)
    assert mod.module == "contracts_seam"
    by_qualname = {s.qualname: s for s in mod.summaries}
    assert set(by_qualname) == {"scale_rows", "weight_vector", "total_cost"}
    scale = by_qualname["scale_rows"]
    assert scale.args == ("matrix", "weights")
    assert dict(scale.params)["weights"] == "(N,)"
    assert scale.ret == "(H,N)"


def test_summary_roundtrip_and_digest_stability():
    seam = FIXTURES / "contracts_seam.py"
    mod = extract_summaries(seam.read_text(), seam)
    table = SummaryTable([mod])
    digest = summary_digest(table)
    assert digest == summary_digest(SummaryTable([mod]))
    for summary in mod.summaries:
        restored = type(summary).from_dict(summary.to_dict())
        assert restored == summary


def test_digest_changes_when_a_contract_changes(tmp_path):
    seam = FIXTURES / "contracts_seam.py"
    original = seam.read_text()
    edited_path = tmp_path / "contracts_seam.py"
    edited_path.write_text(original.replace('"(H,N)", "(N,)"', '"(H,K)", "(K,)"'))
    d1 = summary_digest(SummaryTable([extract_summaries(original, seam)]))
    d2 = summary_digest(
        SummaryTable([extract_summaries(edited_path.read_text(), edited_path)])
    )
    assert d1 != d2


# ---------------------------------------------------------------- rule table
SHAPE_RULE_CASES = [
    ("SW200", "sw200_bad.py", 3, "sw200_good.py"),
    ("SW201", "sw201_bad.py", 2, "sw201_good.py"),
    ("SW202", "sw202_bad.py", 3, "sw202_good.py"),
    ("SW203", "repro/solvers/sw203_bad.py", 1, "repro/solvers/sw203_good.py"),
    ("SW204", "repro/simulator/sw204_bad.py", 2, "repro/simulator/sw204_good.py"),
]


def test_every_shape_rule_has_a_case():
    assert {case[0] for case in SHAPE_RULE_CASES} == set(SHAPE_RULES)


@pytest.mark.parametrize(
    "rule,bad,count,good", SHAPE_RULE_CASES, ids=[c[0] for c in SHAPE_RULE_CASES]
)
def test_shape_rule_positive(rule, bad, count, good):
    findings = [f for f in analyze_one(bad) if f.rule == rule]
    assert len(findings) == count


@pytest.mark.parametrize(
    "rule,bad,count,good", SHAPE_RULE_CASES, ids=[c[0] for c in SHAPE_RULE_CASES]
)
def test_shape_rule_negative(rule, bad, count, good):
    assert [f for f in analyze_one(good) if f.rule == rule] == []


def test_whole_fixture_tree_totals():
    by_rule: dict[str, int] = {}
    for f in shape_findings():
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    assert by_rule == {
        "SW200": 3,
        "SW201": 2,
        "SW202": 3,
        "SW203": 1,
        "SW204": 2,
    }


# -------------------------------------------------------- contract matching
def test_sw200_crosses_the_module_seam():
    # The violations live in sw200_bad.py; the contracts live in
    # contracts_seam.py — the finding proves the interprocedural summary
    # table resolved `from contracts_seam import scale_rows`.
    findings = [f for f in analyze_one("sw200_bad.py") if f.rule == "SW200"]
    messages = "\n".join(f.message for f in findings)
    assert "scale_rows" in messages and "total_cost" in messages
    assert "rank 2 vs declared (N,)" in messages  # the wrong-rank case
    assert "dims 5 and 3" in messages  # the N-binding conflict
    assert "float32" in messages and "f8" in messages  # the dtype case


def test_sw200_needs_the_summary_table():
    # Without the seam module in the table the calls are unknown functions
    # and nothing may be reported: unknowns pass, only proofs report.
    assert analyze_one("sw200_bad.py", with_seam=False) == []


def test_clean_pipeline_through_contracts_is_silent():
    assert analyze_one("clean.py") == []
    assert analyze_one("sw200_good.py") == []


def test_violation_inside_pytest_raises_is_expected(tmp_path):
    # A deliberate contract violation under `with pytest.raises(...)` is
    # the test asserting the runtime checker fires — not a bug to report.
    src = (
        "import numpy as np\n"
        "import pytest\n"
        "from contracts_seam import scale_rows\n\n"
        "def test_rejects_bad_rank():\n"
        "    with pytest.raises(ValueError):\n"
        "        scale_rows(np.zeros((4, 3)), np.zeros((4, 3)))\n"
    )
    seam = FIXTURES / "contracts_seam.py"
    table = SummaryTable([extract_summaries(seam.read_text(), seam)])
    path = tmp_path / "test_mod.py"
    path.write_text(src)
    assert analyze_module(src, path, table) == []


# ---------------------------------------------------------------- hot scope
def test_sw203_sw204_only_fire_in_hot_modules(tmp_path):
    # The same loop shapes outside HOT_PREFIXES are style, not findings.
    assert any(p.startswith("repro.") for p in HOT_PREFIXES)
    loops = (
        "import numpy as np\n\n"
        "def f(n):\n"
        "    total = np.zeros(4)\n"
        "    for _ in range(n):\n"
        "        total = total + np.ones(4)\n"
        "    for v in total:\n"
        "        print(v)\n"
    )
    cold = tmp_path / "coldmod.py"
    cold.write_text(loops)
    assert analyze_module(loops, cold, SummaryTable([])) == []


# ------------------------------------------------------------- suppressions
def test_spotshape_line_suppression():
    findings = analyze_one("repro/simulator/suppress_line.py", with_seam=False)
    assert findings == []


def test_unknown_suppression_rule_becomes_sw009(tmp_path):
    path = tmp_path / "m.py"
    src = "x = 1  # spotshape: disable=SW998\n"
    path.write_text(src)
    (finding,) = analyze_module(src, path, SummaryTable([]))
    assert finding.rule == "SW009" and "SW998" in finding.message


def test_syntax_error_becomes_sw000(tmp_path):
    path = tmp_path / "broken.py"
    src = "def oops(:\n"
    path.write_text(src)
    (finding,) = analyze_module(src, path, SummaryTable([]))
    assert finding.rule == "SW000"
    assert "SW000" in ENGINE_RULES and "SW009" in ENGINE_RULES


# ------------------------------------------------------------------ caching
def _copy_tree(tmp_path):
    dest = tmp_path / "shape"
    shutil.copytree(FIXTURES, dest)
    return dest


def test_cache_roundtrip_and_file_invalidation(tmp_path):
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"

    stats: dict = {}
    first = analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]
    assert n_files > 0 and stats["cached"] == 0

    stats = {}
    second = analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files, "analyzed": 0}
    assert [(f.rule, f.line, f.message) for f in second] == [
        (f.rule, f.line, f.message) for f in first
    ]

    # Touching one non-contract file re-analyzes exactly that file.
    target = dest / "sw202_bad.py"
    target.write_text(target.read_text() + "\n# touched\n")
    stats = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": n_files - 1, "analyzed": 1}


def test_contract_edit_invalidates_every_dependent(tmp_path):
    # Pass B is keyed by the *global* summary digest: changing a contract
    # in one file must re-analyze all files, not just the edited one.
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"
    stats: dict = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]

    seam = dest / "contracts_seam.py"
    seam.write_text(
        seam.read_text().replace(
            '@shapes("(N,) f8", "(N,)", ret="()")',
            '@shapes("(N,) f4", "(N,)", ret="()")',
        )
    )
    stats = {}
    findings = analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": 0, "analyzed": n_files}
    # The flipped contract now clears the old f8-vs-float32 violation and
    # instead rejects the float64 prices in the good pipeline.
    messages = [f.message for f in findings if f.rule == "SW200"]
    assert any("f4" in m for m in messages)


def test_cache_schema_mismatch_forces_reanalysis(tmp_path):
    dest = _copy_tree(tmp_path)
    cache = tmp_path / "cache.json"
    stats: dict = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    n_files = stats["analyzed"]
    cache.write_text(json.dumps({"schema": "something/9", "files": {}}))
    stats = {}
    analyze_paths([dest], cache_path=cache, stats=stats)
    assert stats == {"cached": 0, "analyzed": n_files}


# ----------------------------------------------------------------- baseline
def test_baseline_roundtrip_accepts_everything(tmp_path):
    findings = shape_findings()
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings, schema=BASELINE_SCHEMA)
    accepted = load_baseline(baseline_file, schema=BASELINE_SCHEMA)
    new, baselined = split_findings(findings, accepted)
    assert new == [] and len(baselined) == len(findings)


def test_fingerprint_is_line_independent():
    finding = shape_findings(select={"SW202"})[0]
    moved = type(finding)(
        finding.rule, finding.path, finding.line + 40, finding.col,
        finding.message,
    )
    assert fingerprint(moved) == fingerprint(finding)


def test_load_baseline_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text(json.dumps({"schema": "spotgraph-baseline/1", "findings": []}))
    with pytest.raises(ValueError):
        load_baseline(bad, schema=BASELINE_SCHEMA)


def test_committed_repo_baseline_is_justified():
    committed = REPO / "spotshape-baseline.json"
    data = json.loads(committed.read_text())
    assert data["schema"] == BASELINE_SCHEMA
    assert data["justification"]
    # Every accepted finding names a hot-path rule; SW200/SW201 proofs are
    # real bugs and must be fixed, never grandfathered.
    assert {f["rule"] for f in data["findings"]} <= {"SW202", "SW203", "SW204"}


# ---------------------------------------------------------------------- CLI
def _cli(tmp_path, *argv):
    baseline = tmp_path / "empty-baseline.json"
    return main([*argv, "--no-cache", "--baseline", str(baseline)])


def test_cli_exits_nonzero_with_findings(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW202")
    out = capsys.readouterr().out
    assert code == 1
    assert "SW202" in out and "sw202_bad.py:" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    clean_dir = tmp_path / "clean"
    clean_dir.mkdir()
    shutil.copy(FIXTURES / "contracts_seam.py", clean_dir)
    shutil.copy(FIXTURES / "clean.py", clean_dir)
    code = _cli(tmp_path, str(clean_dir))
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exclude_skips_the_bad_files(tmp_path, capsys):
    code = _cli(
        tmp_path,
        str(FIXTURES),
        "--exclude", str(FIXTURES / "repro"),
        "--exclude", str(FIXTURES / "sw200_bad.py"),
        "--exclude", str(FIXTURES / "sw201_bad.py"),
        "--exclude", str(FIXTURES / "sw202_bad.py"),
    )
    capsys.readouterr()
    assert code == 0


def test_cli_rejects_unknown_rule_ids(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW999")
    assert code == 2
    assert "SW999" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    code = _cli(tmp_path, str(FIXTURES), "--select", "SW204", "--format", "json")
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "spotweb-findings/1"
    assert payload["tool"] == "spotshape"
    assert payload["count"] == 2
    assert payload["baselined"] == 0
    assert set(payload["cache"]) == {"cached", "analyzed"}


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tree = str(FIXTURES)
    assert main([tree, "--no-cache", "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()
    code = main([tree, "--no-cache", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_cli_update_baseline_rejects_filters(tmp_path, capsys):
    # A filtered --update-baseline would overwrite the baseline with only
    # the selected subset, silently un-accepting all other findings.
    for flag in ("--select", "--ignore"):
        code = _cli(tmp_path, str(FIXTURES), flag, "SW202", "--update-baseline")
        assert code == 2
        assert "--update-baseline" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in SHAPE_RULES:
        assert rule_id in out
    assert "SW009" in out


# ----------------------------------------------------------- the real tree
def test_real_tree_is_clean_against_committed_baseline(monkeypatch):
    # The acceptance gate: spotshape over the actual repo (src + tests,
    # fixtures excluded) reports nothing beyond the committed, justified
    # baseline.  Burn the baseline down; never grow it.  Baseline
    # fingerprints hash repo-relative paths, so run from the repo root
    # exactly as CI does.
    monkeypatch.chdir(REPO)
    findings = analyze_paths(["src", "tests"], exclude=["tests/fixtures"])
    accepted = load_baseline("spotshape-baseline.json", schema=BASELINE_SCHEMA)
    new, _ = split_findings(findings, accepted)
    report = "\n".join(f.format() for f in new)
    assert not new, f"spotshape found new violations:\n{report}"
