"""Unit tests for the parallel sweep helpers."""

import os

import numpy as np
import pytest

from repro.parallel import (
    clear_shared_setup,
    derive_seed,
    pmap,
    shared_setup,
    sweep_grid,
)


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


class TestPmap:
    def test_order_preserved_serial(self):
        assert pmap(_square, [3, 1, 2], max_workers=1) == [9, 1, 4]

    def test_order_preserved_parallel(self):
        out = pmap(_square, list(range(20)), max_workers=4)
        assert out == [x * x for x in range(20)]

    def test_empty(self):
        assert pmap(_square, []) == []

    def test_parallel_uses_multiple_processes_when_possible(self):
        out = pmap(_pid_tag, list(range(8)), max_workers=4)
        pids = {pid for _, pid in out}
        # Either real parallelism (several pids) or the graceful serial
        # fallback (exactly this process) — both are correct.
        assert len(pids) >= 1
        assert [x for x, _ in out] == list(range(8))


class TestSweepGrid:
    def test_cross_product(self):
        grid = sweep_grid(a=(1, 2), b=("x",))
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_empty_grid(self):
        assert sweep_grid() == [{}]

    def test_order_stable(self):
        grid = sweep_grid(m=(6, 12), h=(2, 4))
        assert grid[0] == {"m": 6, "h": 2}
        assert grid[-1] == {"m": 12, "h": 4}


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        a = derive_seed(0, "table1_costs", 1)
        assert a == derive_seed(0, "table1_costs", 1)
        assert a != derive_seed(0, "table1_costs", 2)
        assert a != derive_seed(1, "table1_costs", 1)

    def test_known_value_stable_across_runs(self):
        # SHA-256-based, so immune to Python hash randomization: the value
        # below must never change, or saved sweep results stop reproducing.
        assert derive_seed(7, "cell", 3) == 587788171464849038

    def test_valid_rng_seed(self):
        seed = derive_seed(123, "x", "y", 4.5)
        assert 0 <= seed < 2**63
        np.random.default_rng(seed)  # accepted


class TestSharedSetup:
    def test_factory_called_once_per_key(self):
        clear_shared_setup()
        calls = []

        def factory():
            calls.append(1)
            return {"data": 42}

        first = shared_setup(("t", 1), factory)
        second = shared_setup(("t", 1), factory)
        assert first is second
        assert len(calls) == 1
        shared_setup(("t", 2), factory)
        assert len(calls) == 2
        clear_shared_setup()
        shared_setup(("t", 1), factory)
        assert len(calls) == 3


class TestSerialParallelIdentical:
    @pytest.mark.slow
    def test_table1_costs_bitwise_identical(self):
        from repro.experiments import table1

        kw = dict(
            policies=("exosphere", "ondemand"),
            reps=2,
            num_markets=3,
            weeks=1,
            peak_rps=8_000.0,
            seed=0,
        )
        serial = table1.run_table1_costs(**kw)
        clear_shared_setup()
        parallel = table1.run_table1_costs(**kw, parallel=True, max_workers=2)
        assert set(serial.reports) == set(parallel.reports)
        for key, rs in serial.reports.items():
            rp = parallel.reports[key]
            assert rs.total_cost == rp.total_cost  # bitwise, not approx
            assert rs.unserved_requests == rp.unserved_requests
            np.testing.assert_array_equal(rs.counts, rp.counts)
            np.testing.assert_array_equal(rs.interval_costs, rp.interval_costs)

    @pytest.mark.slow
    def test_fig6a_parallel_matches_serial(self):
        from repro.experiments import fig6a_constant

        kw = dict(horizons=(2,), hours=24, seed=3)
        serial = fig6a_constant.run_fig6a(**kw)
        clear_shared_setup()
        par = fig6a_constant.run_fig6a(**kw, parallel=True, max_workers=2)
        assert serial.constant.total_cost == par.constant.total_cost
        assert (
            serial.spotweb_by_horizon[2].total_cost
            == par.spotweb_by_horizon[2].total_cost
        )
