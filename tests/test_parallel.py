"""Unit tests for the parallel sweep helpers."""

import os

import pytest

from repro.parallel import pmap, sweep_grid


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


class TestPmap:
    def test_order_preserved_serial(self):
        assert pmap(_square, [3, 1, 2], max_workers=1) == [9, 1, 4]

    def test_order_preserved_parallel(self):
        out = pmap(_square, list(range(20)), max_workers=4)
        assert out == [x * x for x in range(20)]

    def test_empty(self):
        assert pmap(_square, []) == []

    def test_parallel_uses_multiple_processes_when_possible(self):
        out = pmap(_pid_tag, list(range(8)), max_workers=4)
        pids = {pid for _, pid in out}
        # Either real parallelism (several pids) or the graceful serial
        # fallback (exactly this process) — both are correct.
        assert len(pids) >= 1
        assert [x for x, _ in out] == list(range(8))


class TestSweepGrid:
    def test_cross_product(self):
        grid = sweep_grid(a=(1, 2), b=("x",))
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_empty_grid(self):
        assert sweep_grid() == [{}]

    def test_order_stable(self):
        grid = sweep_grid(m=(6, 12), h=(2, 4))
        assert grid[0] == {"m": 6, "h": 2}
        assert grid[-1] == {"m": 12, "h": 4}
