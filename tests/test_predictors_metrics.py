"""Unit tests for prediction metrics."""

import numpy as np
import pytest

from repro.predictors.metrics import (
    error_histogram,
    mae,
    mape,
    provisioning_error_stats,
    relative_errors,
    rmse,
)


class TestRelativeErrors:
    def test_sign_convention(self):
        errs = relative_errors(np.array([100.0, 100.0]), np.array([110.0, 90.0]))
        np.testing.assert_allclose(errs, [0.1, -0.1])

    def test_zero_demand_skipped(self):
        errs = relative_errors(np.array([0.0, 100.0]), np.array([5.0, 120.0]))
        np.testing.assert_allclose(errs, [0.2])

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_errors(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            relative_errors(np.array([]), np.array([]))


class TestPointMetrics:
    def test_mae_rmse_mape(self):
        a = np.array([100.0, 200.0])
        p = np.array([110.0, 180.0])
        assert mae(a, p) == pytest.approx(15.0)
        assert rmse(a, p) == pytest.approx(np.sqrt((100 + 400) / 2))
        assert mape(a, p) == pytest.approx((0.1 + 0.1) / 2)


class TestProvisioningStats:
    def test_mixed_over_under(self):
        actual = np.array([100.0, 100.0, 100.0, 100.0])
        prov = np.array([110.0, 120.0, 95.0, 100.0])
        s = provisioning_error_stats(actual, prov)
        assert s.mean_over == pytest.approx(0.15)
        assert s.max_over == pytest.approx(0.20)
        assert s.mean_under == pytest.approx(0.05)
        assert s.max_under == pytest.approx(0.05)
        assert s.frac_under == pytest.approx(0.25)

    def test_all_over(self):
        s = provisioning_error_stats(
            np.array([100.0, 100.0]), np.array([120.0, 130.0])
        )
        assert s.mean_under == 0.0
        assert s.frac_under == 0.0

    def test_as_row_percentages(self):
        s = provisioning_error_stats(np.array([100.0]), np.array([115.0]))
        assert s.as_row()["mean_over_%"] == pytest.approx(15.0)


class TestHistogram:
    def test_mass_preserved_under_clipping(self):
        errs = np.array([-2.0, -0.1, 0.0, 0.1, 3.0])
        edges, counts = error_histogram(errs, bins=10, limit=0.5)
        assert counts.sum() == 5
        assert edges.size == 11
        assert edges[0] == -0.5 and edges[-1] == 0.5
