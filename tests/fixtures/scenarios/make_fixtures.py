"""Regenerate the deliberately-violating scenario journals.

Each fixture starts from the real seed-0 journal of its scenario and
doctors only event *attrs* (never ids, seqs, or causal links), so the
result still loads as a valid ``spotweb-events/1`` journal — the oracle
must reject it on invariant grounds, not schema grounds.  CI's
``scenario-smoke`` job asserts ``python -m repro scenarios check`` exits
non-zero on these files.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/scenarios/make_fixtures.py
"""

from pathlib import Path

from repro.obs.events import write_events
from repro.scenarios import run_scenario

OUT = Path(__file__).parent


def _violating_storm_az() -> None:
    """Break slo floor, cost ceiling, stranded sessions, and the ledger."""
    records = run_scenario("storm_az", engine="request", seed=0)
    for rec in records:
        if rec["kind"] == "slo.interval":
            rec["attrs"]["compliance"] = 0.1
        elif rec["kind"] == "scenario.outcome":
            rec["attrs"].update(
                compliance=0.1, cost=999.0, stranded=7, ledger_error=0.5
            )
    write_events(records, OUT / "events_violating_storm_az.jsonl")


def _violating_price_war() -> None:
    """Break the portfolio pack: compliance collapse + runaway cost."""
    records = run_scenario("price_war", engine="interval", seed=0)
    for rec in records:
        if rec["kind"] == "scenario.outcome":
            rec["attrs"].update(
                compliance=0.42, unserved_fraction=0.58, cost=99999.0
            )
    write_events(records, OUT / "events_violating_price_war.jsonl")


if __name__ == "__main__":
    _violating_storm_az()
    _violating_price_war()
    print("fixtures regenerated under", OUT)
