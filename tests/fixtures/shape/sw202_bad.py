"""Bad: implicit dtype drift (widening mix, truncation, narrowing)."""

import numpy as np

__all__ = ["mixes", "truncates", "narrows"]


def mixes():
    a = np.zeros(8)  # float64
    b = np.zeros(8, dtype=np.float32)
    return a + b  # silently widens to float64


def truncates():
    y = np.linspace(0.0, 1.0, 5)
    return y.astype(np.int64)  # fractional values truncated


def narrows():
    a = np.ones(4)
    return a.astype(np.float32)  # float64 silently loses precision
