"""Bad: operations forcing one symbolic dim to two different sizes."""

import numpy as np

from repro.devtools.contracts import shapes

__all__ = ["conflicting_bind", "bad_concat"]


@shapes("(N,)")
def conflicting_bind(x):
    three = np.zeros(3)
    four = np.zeros(4)
    a = x + three  # binds N = 3
    b = x + four  # N is already 3
    return a, b


def bad_concat():
    a = np.zeros((2, 3))
    b = np.zeros((2, 4))
    return np.concatenate([a, b], axis=0)  # non-axis dims 3 vs 4
