"""Bad: call sites violating the seam's declared ``@shapes`` contracts."""

import numpy as np

from contracts_seam import scale_rows, total_cost

__all__ = ["bad_rank", "bad_bind", "bad_dtype"]


def bad_rank():
    matrix = np.zeros((4, 3))
    weights = np.zeros((4, 3))
    return scale_rows(matrix, weights)  # weights must be rank 1


def bad_bind():
    matrix = np.zeros((4, 3))
    weights = np.zeros(5)
    return scale_rows(matrix, weights)  # N binds 3 via matrix, 5 via weights


def bad_dtype():
    prices = np.zeros(3, dtype=np.float32)
    counts = np.ones(3)
    return total_cost(prices, counts)  # contract demands f8 prices
