"""Good: the same seam functions called exactly per their contracts."""

import numpy as np

from contracts_seam import scale_rows, total_cost, weight_vector

__all__ = ["pipeline"]


def pipeline():
    matrix = np.zeros((4, 3))
    weights = np.ones(3)
    scaled = scale_rows(matrix, weights)
    per_req = weight_vector(np.ones(3), np.ones(3))
    projected = scaled @ per_req  # (4,3) @ (3,) -> (4,)
    cost = total_cost(np.zeros(3), np.ones(3))
    return projected, cost
