"""Bad: fresh array allocation inside a hot-module loop."""

import numpy as np

__all__ = ["hot_loop"]


def hot_loop(n):
    total = np.zeros(4)
    for _ in range(n):
        step = np.ones(4)  # reallocated every iteration
        total = total + step
    return total
