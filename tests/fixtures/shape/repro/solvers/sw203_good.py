"""Good: the allocation hoisted out of the hot loop."""

import numpy as np

__all__ = ["hot_loop"]


def hot_loop(n):
    total = np.zeros(4)
    step = np.ones(4)
    for _ in range(n):
        total = total + step
    return total
