"""Bad: Python-level scalar loops over arrays in a hot module."""

import numpy as np

__all__ = ["scalar_sum", "index_walk"]


def scalar_sum():
    values = np.arange(16.0)
    total = 0.0
    for v in values:  # element-by-element in the interpreter
        total += float(v)
    return total


def index_walk():
    values = np.linspace(0.0, 1.0, 9)
    out = 0.0
    for i in range(len(values)):  # index-by-index in the interpreter
        out += float(values[i])
    return out
