"""Good: the loops replaced by vectorized reductions."""

import numpy as np

__all__ = ["scalar_sum", "index_walk"]


def scalar_sum():
    values = np.arange(16.0)
    return float(values.sum())


def index_walk():
    values = np.linspace(0.0, 1.0, 9)
    return float(np.sum(values))
