"""A deliberate scalar loop, silenced with a line suppression."""

import numpy as np

__all__ = ["walk"]


def walk():
    xs = np.arange(5)
    out = 0
    for x in xs:  # spotshape: disable=SW204
        out += int(x)
    return out
