"""Clean cross-module pipeline: contracts + broadcasting + explicit dtypes."""

import numpy as np

from contracts_seam import scale_rows, total_cost, weight_vector

__all__ = ["simulate"]


def simulate():
    demand = np.zeros((6, 4))
    prices = weight_vector(np.ones(4), np.full(4, 2.0))
    scaled = scale_rows(demand, prices)
    row_cost = scaled @ prices  # (6, 4) @ (4,) -> (6,)
    counts = np.floor(row_cost).astype(np.int64)
    budget = total_cost(prices, np.ones(4))
    return counts, budget
