"""Declared ``@shapes`` contracts other fixtures call across the seam."""

import numpy as np

from repro.devtools.contracts import shapes

__all__ = ["scale_rows", "weight_vector", "total_cost"]


@shapes("(H,N)", "(N,)", ret="(H,N)")
def scale_rows(matrix, weights):
    return matrix * weights


@shapes("(N,)", "(N,)", ret="(N,) f8")
def weight_vector(prices, capacities):
    return np.asarray(prices, dtype=np.float64) / capacities


@shapes("(N,) f8", "(N,)", ret="()")
def total_cost(prices, counts):
    return float(prices @ counts)
