"""Good: dtype transitions made explicit or avoided."""

import numpy as np

__all__ = ["consistent", "rounds"]


def consistent():
    a = np.zeros(8, dtype=np.float32)
    b = np.ones(8, dtype=np.float32)
    return a + b  # same width throughout


def rounds():
    y = np.linspace(0.0, 1.0, 5)
    return np.floor(y * 10.0).astype(np.int64)  # integral before converting
