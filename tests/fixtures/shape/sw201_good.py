"""Good: symbolic dims bind once and stay consistent."""

import numpy as np

from repro.devtools.contracts import shapes

__all__ = ["consistent_bind", "good_concat"]


@shapes("(N,)")
def consistent_bind(x):
    three = np.zeros(3)
    a = x + three  # binds N = 3
    b = x * three  # N = 3 again: consistent
    return a, b


def good_concat():
    a = np.zeros((2, 3))
    b = np.zeros((5, 3))
    return np.concatenate([a, b], axis=0)  # (7, 3)
