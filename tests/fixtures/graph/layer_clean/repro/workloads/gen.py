"""Fixture: leaf module."""

__all__ = ["make"]


def make():
    return [1.0, 2.0]
