"""Fixture: allowed downward import + a typing-only upward one."""

from typing import TYPE_CHECKING

from repro.workloads.gen import make

if TYPE_CHECKING:
    from repro.simulator.engine import run

__all__ = ["predict"]


def predict():
    return sum(make())
