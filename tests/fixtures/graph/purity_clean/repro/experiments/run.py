"""Fixture: a pure, seed-disciplined pmap worker."""

import numpy as np

from repro.parallel import derive_seed, pmap

__all__ = ["main"]

_TABLE = {"k": 1}


def _cell(task):
    seed, x = task
    rng = np.random.default_rng(derive_seed(seed, x))
    return _TABLE["k"] + x + float(rng.random())


def main(seed):
    return pmap(_cell, [(seed, 1), (seed, 2)])
