"""Fixture: deterministic scope done right."""

import numpy as np

from repro.obs.util import stamp

__all__ = ["step", "draw", "keys"]


def step():
    return stamp()


def draw(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def keys():
    out = []
    for k in sorted({1, 2, 3}):
        out.append(k)
    return out
