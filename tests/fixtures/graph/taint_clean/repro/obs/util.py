"""Fixture: the wall-clock seam, annotated as intentional."""

import time

__all__ = ["stamp"]


# spotgraph: allow-nondeterminism
def stamp():
    return time.time()
