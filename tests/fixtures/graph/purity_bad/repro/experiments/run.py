"""Fixture: every way a pmap worker can be impure."""

import numpy as np

from repro.parallel import pmap

__all__ = ["main"]

_CACHE = {}


def _fill():
    _CACHE["k"] = 1


def _cell(x):
    rng = np.random.default_rng(42)
    return _CACHE.get("k", 0) + x + float(rng.random())


def _writer(x):
    _CACHE[x] = x
    return x


def main():
    _fill()
    a = pmap(_cell, [1, 2])
    b = pmap(_writer, [3])
    c = pmap(lambda x: x, [4])
    return a, b, c
