"""Fixture: deterministic scope reaching nondeterminism sources."""

import time

import numpy as np

from repro.obs.util import stamp

__all__ = ["step", "draw", "now", "keys"]


def step():
    return stamp()


def draw():
    # SW111 only: the direct unseeded default_rng() must not also be
    # reported as a length-1 SW110 chain.
    rng = np.random.default_rng()
    return float(rng.random())


def now():
    return time.time()


def keys():
    out = []
    for k in {1, 2, 3}:
        out.append(k)
    return out
