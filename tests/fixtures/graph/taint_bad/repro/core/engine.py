"""Fixture: deterministic scope reaching nondeterminism sources."""

import numpy as np

from repro.obs.util import stamp

__all__ = ["step", "draw", "keys"]


def step():
    return stamp()


def draw():
    rng = np.random.default_rng()
    return float(rng.random())


def keys():
    out = []
    for k in {1, 2, 3}:
        out.append(k)
    return out
