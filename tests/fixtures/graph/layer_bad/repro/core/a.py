"""Fixture: half of an intra-package import cycle."""

from repro.core.b import g

__all__ = ["f"]


def f():
    return g()
