"""Fixture: the other half of the cycle."""

from repro.core.a import f

__all__ = ["g"]


def g():
    return f()
