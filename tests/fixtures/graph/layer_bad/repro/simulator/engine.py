"""Fixture: simulator module imported from below."""

__all__ = ["run"]


def run():
    return 0
