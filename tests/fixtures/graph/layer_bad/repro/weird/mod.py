"""Fixture: a package nobody declared in the layer map."""

__all__ = ["nothing"]


def nothing():
    return None
