"""Fixture: a leaf (solvers) reaching up into the simulator."""

from repro.simulator.engine import run

__all__ = ["solve"]


def solve():
    return run()
