"""Fixture: spotgraph suppression comments, valid and typo'd."""

__all__ = ["suppressed", "reported"]


def suppressed():
    return [k for k in {1, 2}]  # spotgraph: disable=SW112


def reported():
    return [k for k in {3, 4}]


# spotgraph: disable=SW999
# spotgraph: disable-file=SW777
