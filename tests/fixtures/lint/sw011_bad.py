"""Bad: builtin-type dtype= arguments on NumPy calls."""

import numpy as np

__all__ = ["build"]


def build(xs):
    a = np.asarray(xs, dtype=float)
    b = np.zeros(3, dtype=int)
    c = np.ones(3, dtype=bool)
    return a, b, c
