"""Good: explicit-width NumPy dtypes; builtin calls are not dtype kwargs."""

import numpy as np

__all__ = ["build"]


def build(xs):
    a = np.asarray(xs, dtype=np.float64)
    b = np.zeros(3, dtype=np.int64)
    c = np.ones(3, dtype=np.bool_)
    d = np.array(xs, dtype="float32")
    e = float(b[0])  # builtin *call*, not a dtype kwarg
    return a, b, c, d, e
