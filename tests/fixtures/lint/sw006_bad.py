"""Bad: bare except and blanket except Exception."""

__all__ = ["swallow"]


def swallow(fn):
    try:
        return fn()
    except Exception:
        pass
    try:
        return fn()
    except:
        return None
