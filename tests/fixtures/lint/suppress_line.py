"""A violation silenced by a per-line suppression comment."""

__all__ = ["swallow"]


def swallow(fn):
    try:
        return fn()
    except Exception:  # spotlint: disable=SW006
        return None
