"""SW012 negative fixture: suffixed clock names, and non-clock calls."""
import time
from time import perf_counter

t0_s = time.time()
start_ms = perf_counter()
tick_ns = time.monotonic_ns()
elapsed = time.strftime("%H")  # not a clock reader SW012 tracks
