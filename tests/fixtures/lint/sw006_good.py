"""Good: the handler names what it actually guards."""

__all__ = ["parse"]


def parse(text):
    try:
        return float(text)
    except (TypeError, ValueError):
        return None
