"""Bad: no __all__ at all."""


def helper():
    return 1
