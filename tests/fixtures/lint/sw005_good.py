"""Good: None sentinel, constructed inside the body."""

__all__ = ["append"]


def append(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
