"""`disable=all` silences every rule on the line."""

__all__ = ["swallow"]


def swallow(fn):
    try:
        return fn()
    except Exception:  # spotlint: disable=all
        return None
