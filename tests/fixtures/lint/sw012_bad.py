"""SW012 positive fixture: clock reads stored without a unit suffix."""
import time
from time import perf_counter

t0 = time.time()
start = perf_counter()
tick_s = time.monotonic_ns()  # wrong suffix: _ns readers need `_ns`
