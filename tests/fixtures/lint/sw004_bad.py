"""Bad: frozen dataclass whose ndarray fields stay writable."""

from dataclasses import dataclass

import numpy as np

__all__ = ["Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    prices: np.ndarray
    probs: np.ndarray
    label: str
