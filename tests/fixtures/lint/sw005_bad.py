"""Bad: mutable default arguments."""

__all__ = ["append", "merge"]


def append(item, bucket=[]):
    bucket.append(item)
    return bucket


def merge(extra, *, base=dict()):
    base.update(extra)
    return base
