"""Good: seeded Generator threading; constructors are allowed."""

import random

import numpy as np

__all__ = ["draw"]


def draw(rng: np.random.Generator):
    gen = np.random.default_rng(0)
    local = random.Random(7)
    return gen.normal(size=3), rng.uniform(), local.randint(0, 3)
