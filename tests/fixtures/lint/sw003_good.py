"""Good: tolerance-based comparison; integer equality is fine."""

import math

__all__ = ["checks"]


def checks(x, y):
    a = math.isclose(x, 1.0)
    b = abs(x - y) < 1e-9
    c = len([x]) == 1
    return a, b, c
