"""Bad: float equality comparisons."""

__all__ = ["checks"]


def checks(x, y):
    a = x == 1.0
    b = 0.5 != y
    c = float(x) == y
    return a, b, c
