"""Bad: global-state RNG calls (np.random module functions, stdlib random)."""

import random

import numpy as np

__all__ = ["draw"]


def draw():
    a = np.random.normal(size=3)
    b = random.random()
    return a, b
