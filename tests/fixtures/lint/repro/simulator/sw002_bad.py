"""Bad: wall-clock reads inside a DES-owned module."""

import time
from datetime import datetime

__all__ = ["now"]


def now():
    return time.time(), datetime.now()
