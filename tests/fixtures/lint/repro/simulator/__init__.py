"""Fixture subpackage resolving to the DES-owned `repro.simulator` scope."""

__all__: list[str] = []
