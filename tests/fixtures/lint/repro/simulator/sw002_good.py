"""Good: durations via perf_counter, simulated time via the DES clock."""

import time

__all__ = ["measure"]


def measure(sim_clock: float):
    start = time.perf_counter()
    elapsed = time.perf_counter() - start
    return sim_clock + elapsed
