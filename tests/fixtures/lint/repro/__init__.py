"""Fixture package mimicking the real layout (for module-name derivation)."""

__all__: list[str] = []
