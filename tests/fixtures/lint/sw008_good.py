"""Good: invariants raise real exceptions."""

__all__ = ["half"]


def half(n):
    if n % 2:
        raise ValueError("n must be even")
    return n // 2
