"""Good: both immutability idioms the linter recognizes."""

from dataclasses import dataclass

import numpy as np

from repro.devtools.contracts import freeze_arrays

__all__ = ["Direct", "ViaHelper"]


@dataclass(frozen=True)
class Direct:
    prices: np.ndarray

    def __post_init__(self):
        self.prices.setflags(write=False)


@dataclass(frozen=True)
class ViaHelper:
    prices: np.ndarray
    probs: np.ndarray

    def __post_init__(self):
        freeze_arrays(self, "prices", "probs")
