"""Good: complete __all__, underscore names exempt, imports count as defined."""

from math import sqrt

__all__ = ["area", "Shape", "sqrt"]


def area(r):
    return 3 * r * r


class Shape:
    pass


def _private():
    return None
