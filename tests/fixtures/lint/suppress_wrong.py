"""A suppression for a different rule must not silence this one."""

__all__ = ["swallow"]


def swallow(fn):
    try:
        return fn()
    except Exception:  # spotlint: disable=SW001
        return None
