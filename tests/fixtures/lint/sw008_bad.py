"""Bad: assert guards an invariant in library code."""

__all__ = ["half"]


def half(n):
    assert n % 2 == 0, "n must be even"
    return n // 2
