"""Wall-clock outside repro.simulator / repro.core — out of SW002 scope."""

import time

__all__ = ["wall_now"]


def wall_now():
    return time.time()
