"""Bad: __all__ lists a ghost name and misses a public def."""

__all__ = ["exists", "ghost"]


def exists():
    return 1


def unlisted():
    return 2
