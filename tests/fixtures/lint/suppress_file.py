"""Violations silenced file-wide for one rule."""

# spotlint: disable-file=SW006

__all__ = ["swallow", "swallow_again"]


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None


def swallow_again(fn):
    try:
        return fn()
    except Exception:
        return None
