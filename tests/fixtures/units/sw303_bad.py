"""SW303 positive fixture: same dimension, different scales, unconverted."""

from repro.devtools.contracts import units

__all__ = ["horizon", "latency_sum", "rate_gap"]


@units("s", "hr", ret="s")
def horizon(base_s, extra_hr):
    return base_s + extra_hr  # seconds plus hours


@units("ms", "s")
def latency_sum(a_ms, b_s):
    return a_ms + b_s  # milliseconds plus seconds


@units("req/interval", "req/s")
def rate_gap(per_interval, per_second):
    return per_interval - per_second  # per-interval minus per-second
