"""SW301 positive fixture: the pre-fix ``sla_cost`` bug, and a bad call.

``penalty`` is usd/(rps*hr); multiplying by a req/s shortfall leaves a
dangling 1/hr unless the interval width in hours is applied — exactly
the bug spotunits proved in ``repro.core.costs.CostModel.sla_cost``.
"""

from contracts_seam import accrue_cost
from repro.devtools.contracts import field_units, units

__all__ = ["BrokenTariff", "bill"]


@field_units(penalty="usd/(rps*hr)")
class BrokenTariff:
    def __init__(self, penalty):
        self.penalty = penalty

    @units("req/s", ret="usd")
    def sla_cost(self, shortfall_rps):
        return self.penalty * shortfall_rps  # usd/hr, not usd


@units("hr", ret="usd")
def bill(hours):
    return accrue_cost(hours, 3.0, hours)  # hours passed as the price
