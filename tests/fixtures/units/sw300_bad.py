"""SW300 positive fixture: additive mixes of incompatible dimensions."""

from repro.devtools.contracts import units

__all__ = ["compare", "total", "worst"]


@units("req", "usd")
def total(requests, cost):
    return requests + cost  # requests are not dollars


@units("req/s", "usd/(server*hr)")
def compare(rate, price):
    return rate > price  # a rate ordered against a price


@units("server", "frac")
def worst(n_servers, util):
    return max(n_servers, util)  # a count maxed with a utilization
