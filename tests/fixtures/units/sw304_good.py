"""SW304 negative fixture: named constants, or non-convertible dimensions."""

from repro.core.units import MS_PER_SECOND, SECONDS_PER_HOUR
from repro.devtools.contracts import units

__all__ = ["thousands", "to_ms", "to_seconds"]


@units("hr", ret="s")
def to_seconds(duration_hr):
    return duration_hr * SECONDS_PER_HOUR


@units("s", ret="ms")
def to_ms(latency_s):
    return latency_s * MS_PER_SECOND


@units("usd")
def thousands(cost_usd):
    return cost_usd / 1000  # dollars are not a convertible dimension
