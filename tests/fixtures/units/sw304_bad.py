"""SW304 positive fixture: bare literals doing unit conversions."""

from repro.devtools.contracts import units

__all__ = ["thousands", "to_ms", "to_seconds"]


@units("hr", ret="s")
def to_seconds(duration_hr):
    return duration_hr * 3600


@units("s")
def to_ms(latency_s):
    return latency_s * 1000.0


@units("req")
def thousands(count_req):
    return count_req / 1000
