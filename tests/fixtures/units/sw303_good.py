"""SW303 negative fixture: the same sums with the conversions written out."""

from repro.core.units import MS_PER_SECOND, SECONDS_PER_HOUR
from repro.devtools.contracts import units

__all__ = ["horizon", "latency_sum", "rate_gap"]


@units("s", "hr", ret="s")
def horizon(base_s, extra_hr):
    return base_s + extra_hr * SECONDS_PER_HOUR


@units("ms", "s", ret="s")
def latency_sum(a_ms, b_s):
    return a_ms / MS_PER_SECOND + b_s


@units("req/interval", "s/interval", ret="req/s")
def rate_gap(per_interval, width):
    return per_interval / width
