"""SW302 positive fixture: wall-clock reads mixed into simulated time."""

import time

from repro.devtools.contracts import units

__all__ = ["deadline_passed", "elapsed"]


@units("s", ret="s")
def elapsed(sim_now_s):
    return time.time() - sim_now_s  # wall seconds minus sim seconds


@units("s")
def deadline_passed(sim_deadline_s):
    return time.monotonic() > sim_deadline_s
