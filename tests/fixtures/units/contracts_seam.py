"""Declared ``@units``/``@field_units`` contracts other fixtures use."""

from repro.devtools.contracts import field_units, units

__all__ = ["Tariff", "accrue_cost", "interval_width"]


@units("usd/(server*hr)", "server", "hr", ret="usd")
def accrue_cost(price, servers, hours):
    return price * servers * hours


@units("s", "interval", ret="s/interval")
def interval_width(horizon_s, n_intervals):
    return horizon_s / n_intervals


@field_units(penalty="usd/(rps*hr)", interval_hours="hr", threshold="req/s")
class Tariff:
    def __init__(self, penalty, interval_hours, threshold):
        self.penalty = penalty
        self.interval_hours = interval_hours
        self.threshold = threshold
