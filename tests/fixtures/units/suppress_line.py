"""A proven SW302 silenced by a line suppression comment."""

import time

from repro.devtools.contracts import units

__all__ = ["elapsed"]


@units("s")
def elapsed(sim_now_s):
    return time.time() - sim_now_s  # spotunits: disable=SW302
