"""SW301 negative fixture: the fixed ``sla_cost`` and a correct call."""

from contracts_seam import accrue_cost
from repro.devtools.contracts import field_units, units

__all__ = ["FixedTariff", "bill"]


@field_units(penalty="usd/(rps*hr)", interval_hours="hr")
class FixedTariff:
    def __init__(self, penalty, interval_hours):
        self.penalty = penalty
        self.interval_hours = interval_hours

    @units("req/s", ret="usd")
    def sla_cost(self, shortfall_rps):
        return self.penalty * shortfall_rps * self.interval_hours


@units("usd/(server*hr)", "hr", ret="usd")
def bill(price, hours):
    return accrue_cost(price, 3.0, hours)
