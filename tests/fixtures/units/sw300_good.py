"""SW300 negative fixture: the same operations with compatible units."""

from repro.devtools.contracts import units

__all__ = ["compare", "total", "worst"]


@units("req", "req", ret="req")
def total(served, dropped):
    return served + dropped


@units("req/s", "rps")
def compare(rate, other):
    return rate > other  # rps *is* req/s in the shared grammar


@units("frac", "1")
def worst(util, ratio):
    # The fraction dimension is soft: a declared frac may meet a derived
    # dimensionless ratio, because every ratio of like quantities is one.
    return max(util, ratio)
