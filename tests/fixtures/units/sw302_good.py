"""SW302 negative fixture: each clock domain stays on its own side."""

import time

from repro.devtools.contracts import units

__all__ = ["deadline_passed", "elapsed"]


@units("wall_s", ret="wall_s")
def elapsed(started_wall_s):
    return time.time() - started_wall_s


@units("s", "s")
def deadline_passed(sim_now_s, sim_deadline_s):
    return sim_now_s > sim_deadline_s
