"""A clean pipeline through the seam contracts: nothing to report."""

from contracts_seam import Tariff, accrue_cost, interval_width
from repro.devtools.contracts import units

__all__ = ["monthly", "pace", "penalty_cost"]


@units("usd/(server*hr)", "server", "hr", ret="usd")
def monthly(price, servers, hours):
    return accrue_cost(price, servers, hours)


@units("s", "interval", ret="s/interval")
def pace(horizon_s, n_intervals):
    return interval_width(horizon_s, n_intervals)


@units("req/s", ret="usd")
def penalty_cost(shortfall_rps, tariff: Tariff):
    return tariff.penalty * shortfall_rps * tariff.interval_hours
