"""Unit tests for the real-trace loaders."""

import numpy as np
import pytest

from repro.workloads import load_csv_trace, load_wikipedia_pagecounts


class TestCSVLoader:
    def test_plain_single_column(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("10\n20\n30\n")
        trace = load_csv_trace(p)
        np.testing.assert_array_equal(trace.rates, [10.0, 20.0, 30.0])
        assert trace.name == "t"

    def test_timestamp_value(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("2008-06-01T00:00,100\n2008-06-01T01:00,200\n")
        trace = load_csv_trace(p, value_column=-1)
        np.testing.assert_array_equal(trace.rates, [100.0, 200.0])

    def test_header_autodetected(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("time,rps\n0,5\n1,7\n")
        trace = load_csv_trace(p, value_column=1)
        np.testing.assert_array_equal(trace.rates, [5.0, 7.0])

    def test_named_column(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("time,rps,errors\n0,5,1\n1,7,0\n")
        trace = load_csv_trace(p, value_column="rps")
        np.testing.assert_array_equal(trace.rates, [5.0, 7.0])

    def test_missing_named_column(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("time,rps\n0,5\n")
        with pytest.raises(ValueError, match="not in header"):
            load_csv_trace(p, value_column="load")

    def test_bad_row(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("rps\n5\nxyz\n")
        with pytest.raises(ValueError, match="bad row"):
            load_csv_trace(p, value_column=0)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("")
        with pytest.raises(ValueError, match="no data"):
            load_csv_trace(p)

    def test_interval_and_name_override(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("1\n2\n")
        trace = load_csv_trace(p, interval_seconds=60.0, name="minute-trace")
        assert trace.interval_seconds == 60.0
        assert trace.name == "minute-trace"


class TestPagecountsLoader:
    def _write_hour(self, tmp_path, idx, lines):
        p = tmp_path / f"pagecounts-{idx:02d}"
        p.write_text("\n".join(lines) + "\n")
        return p

    def test_aggregates_matching_project(self, tmp_path):
        h0 = self._write_hour(
            tmp_path,
            0,
            ["en Main_Page 3600 10000", "de Hauptseite 7200 5000", "en Foo 3600 1"],
        )
        h1 = self._write_hour(tmp_path, 1, ["en Main_Page 7200 9"])
        trace = load_wikipedia_pagecounts([h0, h1], project_prefix="en")
        np.testing.assert_allclose(trace.rates, [2.0, 2.0])

    def test_subproject_prefix_matches(self, tmp_path):
        h0 = self._write_hour(
            tmp_path, 0, ["en.m Mobile 3600 1", "enwiki Other 3600 1"]
        )
        trace = load_wikipedia_pagecounts([h0], project_prefix="en")
        # 'en.m' matches (prefix + dot); 'enwiki' does not.
        np.testing.assert_allclose(trace.rates, [1.0])

    def test_malformed_lines_skipped(self, tmp_path):
        h0 = self._write_hour(
            tmp_path, 0, ["garbage", "en Page notanumber 5", "en Page 3600 5"]
        )
        trace = load_wikipedia_pagecounts([h0])
        np.testing.assert_allclose(trace.rates, [1.0])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            load_wikipedia_pagecounts([])
