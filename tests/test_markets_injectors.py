"""Unit tests for the adversarial market injectors."""

import numpy as np
import pytest

from repro.markets import (
    correlated_market_block,
    default_catalog,
    generate_market_dataset,
    inject_capacity_drought,
    inject_drift,
    inject_price_war,
    inject_revocation_storm,
)


@pytest.fixture(scope="module")
def dataset():
    markets = default_catalog().spot_markets()[:6]
    return generate_market_dataset(markets, intervals=48, seed=7)


class TestRevocationStorm:
    def test_window_probabilities_raised(self, dataset):
        shaped = inject_revocation_storm(
            dataset, at=10, duration=3, markets=[0, 2], probability=0.9
        )
        assert np.all(shaped.failure_probs[10:13, [0, 2]] >= 0.9)

    def test_outside_window_untouched(self, dataset):
        shaped = inject_revocation_storm(
            dataset, at=10, duration=3, markets=[0, 2], probability=0.9
        )
        mask = np.ones(dataset.num_intervals, dtype=np.bool_)
        mask[10:13] = False
        np.testing.assert_array_equal(
            shaped.failure_probs[mask], dataset.failure_probs[mask]
        )
        np.testing.assert_array_equal(shaped.prices, dataset.prices)

    def test_input_not_mutated(self, dataset):
        before = dataset.failure_probs.copy()
        inject_revocation_storm(dataset, at=10, markets=[0])
        np.testing.assert_array_equal(dataset.failure_probs, before)

    def test_fraction_selects_correlated_block(self, dataset):
        shaped = inject_revocation_storm(dataset, at=5, fraction=0.5)
        touched = np.where(
            shaped.failure_probs[5] != dataset.failure_probs[5]
        )[0]
        assert 1 <= touched.size <= 3

    def test_rejects_bad_window(self, dataset):
        with pytest.raises(ValueError):
            inject_revocation_storm(dataset, at=-1, markets=[0])
        with pytest.raises(ValueError):
            inject_revocation_storm(dataset, at=48, markets=[0])


class TestCorrelatedBlock:
    def test_block_size_and_sorted(self, dataset):
        block = correlated_market_block(dataset, 3)
        assert len(block) == 3
        assert block == sorted(block)

    def test_full_universe(self, dataset):
        assert correlated_market_block(dataset, 6) == list(range(6))

    def test_rejects_bad_size(self, dataset):
        with pytest.raises(ValueError):
            correlated_market_block(dataset, 0)
        with pytest.raises(ValueError):
            correlated_market_block(dataset, 7)


class TestPriceWar:
    def test_prices_crash_on_revocable_markets(self, dataset):
        shaped = inject_price_war(dataset, start=20, ramp=4, depth=0.6)
        revocable = [
            j for j, m in enumerate(dataset.markets) if m.revocable
        ]
        after_ramp = shaped.prices[26:, revocable]
        expected = dataset.prices[26:, revocable] * 0.4
        np.testing.assert_allclose(after_ramp, expected)

    def test_revocations_rise_with_cap(self, dataset):
        shaped = inject_price_war(
            dataset, start=20, ramp=2, revocation_boost=100.0
        )
        revocable = [
            j for j, m in enumerate(dataset.markets) if m.revocable
        ]
        assert np.all(shaped.failure_probs[24:, revocable] <= 0.95)
        assert np.all(
            shaped.failure_probs[24:, revocable]
            >= dataset.failure_probs[24:, revocable]
        )

    def test_before_start_untouched(self, dataset):
        shaped = inject_price_war(dataset, start=20, ramp=4)
        np.testing.assert_array_equal(
            shaped.prices[:20], dataset.prices[:20]
        )


class TestCapacityDrought:
    def test_window_surge_and_floor(self, dataset):
        shaped = inject_capacity_drought(
            dataset, start=8, duration=6, price_surge=3.0,
            probability_floor=0.4,
        )
        revocable = [
            j for j, m in enumerate(dataset.markets) if m.revocable
        ]
        np.testing.assert_allclose(
            shaped.prices[8:14, revocable],
            dataset.prices[8:14, revocable] * 3.0,
        )
        assert np.all(shaped.failure_probs[8:14, revocable] >= 0.4)
        np.testing.assert_array_equal(
            shaped.prices[14:], dataset.prices[14:]
        )

    def test_spared_markets_untouched(self, dataset):
        shaped = inject_capacity_drought(
            dataset, start=8, duration=6, spared_markets=[1]
        )
        np.testing.assert_array_equal(
            shaped.prices[:, 1], dataset.prices[:, 1]
        )


class TestDrift:
    def test_compounding_growth(self, dataset):
        shaped = inject_drift(
            dataset, price_growth_per_week=0.5,
            probability_growth_per_week=0.1,
        )
        weeks = (
            np.arange(48) * dataset.interval_seconds / (7 * 24 * 3600.0)
        )
        np.testing.assert_allclose(
            shaped.prices, dataset.prices * (1.5 ** weeks)[:, None]
        )
        assert np.all(shaped.failure_probs <= 0.95)

    def test_zero_growth_is_identity(self, dataset):
        shaped = inject_drift(dataset, price_growth_per_week=0.0)
        np.testing.assert_array_equal(shaped.prices, dataset.prices)
        np.testing.assert_array_equal(
            shaped.failure_probs, dataset.failure_probs
        )
