"""Tests for journal reports: summarize, timeline (golden), diff."""

from pathlib import Path

import pytest

from repro.obs import (
    EventLog,
    diff_files,
    diff_journals,
    format_diff,
    format_event_summary,
    format_timeline,
    incidents,
    kind_counts,
    prometheus_text,
    slo_series,
    tier_spans,
    write_events,
)

GOLDEN = Path(__file__).parent / "fixtures" / "events" / "timeline_golden.txt"


def sample_journal() -> list[dict]:
    """A small deterministic incident: one migration, one failed kill."""
    log = EventLog(enabled=True)
    w0 = log.open_warning(2, t=180.0, capacity_rps=80.0, warning_seconds=120.0)
    with log.causal(w0):
        log.emit("lb.warning_action", t=180.0, backend=2, action="defer",
                 spare_rps=10.0)
        log.emit("replacement.request", t=180.0, backend=2, capacity_rps=80.0)
        log.emit("server.launch", t=180.0, backend=6, capacity_rps=80.0)
        log.emit("server.boot", t=235.0, backend=6, capacity_rps=80.0)
        log.emit("server.drain", t=240.0, backend=2)
        log.emit("session.migrate", t=240.0, backend=2, sessions=40,
                 migrated=40)
    log.resolve_warning(w0, t=300.0, lost=0)
    w1 = log.open_warning(3, t=180.0, capacity_rps=80.0, warning_seconds=120.0)
    log.emit("server.killed", t=300.0, cause=w1, backend=3, lost=7)
    log.resolve_warning(w1, t=300.0, lost=7)
    log.set_interval(3, 240.0)
    log.emit("slo.interval", t=240.0, requests=100, compliance=0.97,
             burn=3.0, p50=0.2, p95=0.8, p99=1.4)
    return log.records()


class TestReports:
    def test_kind_counts_sorted(self):
        counts = dict(kind_counts(sample_journal()))
        assert counts["warning.issued"] == 2
        assert kind_counts(sample_journal())[0][1] >= kind_counts(
            sample_journal()
        )[-1][1]

    def test_incidents(self):
        incs = incidents(sample_journal())
        assert [i["id"] for i in incs] == ["w0", "w1"]
        assert incs[0]["outcome"] == "migrated"
        assert incs[0]["migrated"] == 40
        assert incs[1]["outcome"] == "failed"
        assert incs[1]["lost"] == 7
        assert all(e["cause"] == "w0" for e in incs[0]["events"])

    def test_open_warning_reported_open(self):
        log = EventLog(enabled=True)
        log.open_warning(1, t=0.0)
        incs = incidents(log.records())
        assert incs[0]["outcome"] == "open"

    def test_slo_series_in_interval_order(self):
        series = slo_series(sample_journal())
        assert [s["interval"] for s in series] == [3]

    def test_summary_sections(self):
        text = format_event_summary(sample_journal())
        assert "event kinds" in text
        assert "incident report (2 revocation warnings)" in text
        assert "outcomes: failed=1, migrated=1" in text
        assert "SLO compliance" in text

    def test_summary_empty_journal(self):
        assert "no events" in format_event_summary([])

    def test_timeline_matches_golden(self):
        rendered = format_timeline(sample_journal()) + "\n"
        assert rendered == GOLDEN.read_text()

    def test_timeline_collapses_long_same_kind_runs(self):
        log = EventLog(enabled=True)
        wid = log.open_warning(1, t=0.0)
        for i in range(40):
            log.emit("admission.flip", t=float(i), cause=wid,
                     state="rejecting" if i % 2 == 0 else "accepting")
        log.resolve_warning(wid, t=50.0)
        text = format_timeline(log.records())
        assert "... (38 more admission.flip)" in text
        assert text.count("admission.flip") == 3  # 2 shown + elision row


def hybrid_journal() -> list[dict]:
    """A journal with tier switches: start fluid, warning window, settle."""
    log = EventLog(enabled=True)
    log.emit("sim.tier_switch", t=0.0, tier="fluid", trigger="start", moved=0)
    w0 = log.open_warning(2, t=60.0, capacity_rps=80.0, warning_seconds=5.0)
    log.emit(
        "sim.tier_switch", t=60.0, cause=w0, tier="request",
        trigger="warning", moved=17,
    )
    log.emit("server.killed", t=65.0, cause=w0, backend=2, lost=0)
    log.resolve_warning(w0, t=65.0, lost=0)
    log.emit(
        "sim.tier_switch", t=70.0, tier="fluid", trigger="settled", moved=12
    )
    log.emit("slo.interval", t=120.0, requests=10, compliance=1.0, burn=0.0,
             p50=0.1, p95=0.2, p99=0.3)
    return log.records()


class TestTierSpans:
    def test_spans_cover_journal_in_order(self):
        spans = tier_spans(hybrid_journal())
        assert [s["tier"] for s in spans] == ["fluid", "request", "fluid"]
        assert [s["t_start"] for s in spans] == [0.0, 60.0, 70.0]
        # Each span ends where the next begins; the last at the final event.
        assert [s["t_end"] for s in spans] == [60.0, 70.0, 120.0]

    def test_spans_carry_trigger_cause_and_moved(self):
        spans = tier_spans(hybrid_journal())
        assert spans[1]["trigger"] == "warning"
        assert spans[1]["cause"] == "w0"
        assert spans[1]["moved"] == 17
        assert spans[2]["trigger"] == "settled"
        assert spans[2]["cause"] is None

    def test_plain_journal_yields_no_spans(self):
        assert tier_spans(sample_journal()) == []

    def test_timeline_prepends_span_table(self):
        text = format_timeline(hybrid_journal())
        assert text.startswith("engine tier spans (3 spans)")
        # The incident timeline still follows.
        assert "w0 warning.issued" in text

    def test_timeline_unchanged_without_switches(self):
        rendered = format_timeline(sample_journal()) + "\n"
        assert rendered == GOLDEN.read_text()

    def test_span_table_without_incidents(self):
        log = EventLog(enabled=True)
        log.emit(
            "sim.tier_switch", t=0.0, tier="fluid", trigger="start", moved=0
        )
        log.emit("slo.interval", t=60.0, requests=5, compliance=1.0, burn=0.0,
                 p50=0.1, p95=0.2, p99=0.3)
        text = format_timeline(log.records())
        assert "engine tier spans (1 spans)" in text
        assert "warning" not in text


class TestDiff:
    def test_identical_journals(self):
        result = diff_journals(sample_journal(), sample_journal())
        assert result["identical"]
        assert result["first"] is None
        assert "zero divergence" in format_diff(result)

    def test_reseq_only_difference_compares_clean(self):
        a = sample_journal()
        b = [dict(rec, seq=rec["seq"] + 5) for rec in a]
        assert diff_journals(a, b)["identical"]

    def test_divergence_located_to_bucket(self):
        a = sample_journal()
        b = sample_journal()
        b[1] = dict(b[1], attrs=dict(b[1]["attrs"], action="drain_now"))
        result = diff_journals(a, b)
        assert not result["identical"]
        assert result["first"] == "t[180s)"
        text = format_diff(result, name_a="a", name_b="b")
        assert "divergent bucket" in text
        assert "first divergence sample" in text

    def test_extra_event_counts(self):
        a = sample_journal()
        b = sample_journal()[:-1]
        result = diff_journals(a, b)
        [bucket] = result["buckets"]
        assert bucket["count_a"] == bucket["count_b"] + 1
        assert len(bucket["only_a"]) == 1
        assert bucket["only_b"] == []

    def test_interval_buckets_sort_before_time_buckets(self):
        a = sample_journal()
        result = diff_journals(a, [])
        labels = [b["bucket"] for b in result["buckets"]]
        assert labels == sorted(
            labels, key=lambda s: (0 if s.startswith("interval") else 1, s)
        )

    def test_diff_files(self, tmp_path):
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_events(sample_journal(), pa)
        write_events(sample_journal(), pb)
        result, text = diff_files(pa, pb)
        assert result["identical"]
        assert "a.jsonl" in text and "b.jsonl" in text


class TestPrometheusText:
    def test_counter_gauge_summary(self):
        snap = {
            "des.events": 120,
            "lb.spare-rps": 1.5,
            "controller.solve_ms": {
                "count": 4, "p50": 1.0, "p95": 2.0, "max": 3.0, "total": 5.0,
            },
        }
        text = prometheus_text(snap)
        assert "# TYPE spotweb_des_events_total counter" in text
        assert "spotweb_des_events_total 120" in text
        assert "# HELP spotweb_des_events_total" in text
        assert "# TYPE spotweb_lb_spare_rps gauge" in text
        assert 'spotweb_controller_solve_ms{quantile="0.5"} 1.0' in text
        assert "spotweb_controller_solve_ms_count 4" in text
        assert text.endswith("\n")

    def test_empty_snapshot(self):
        assert prometheus_text({}) == ""

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            prometheus_text({"flag": True})
