"""Property-based tests for the solver stack (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.solvers import QPProblem, SolverStatus, solve_qp
from repro.solvers.kkt import kkt_residuals
from repro.solvers.qp import _ruiz_equilibrate

from conftest import random_feasible_qp


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(2, 12),
    extra=st.integers(0, 12),
)
def test_solver_satisfies_kkt_on_feasible_qps(seed, n, extra):
    """Any feasible strictly convex QP must solve to KKT tolerance."""
    rng = np.random.default_rng(seed)
    prob = random_feasible_qp(rng, n, n + extra)
    res = solve_qp(prob)
    assert res.status is SolverStatus.OPTIMAL
    assert kkt_residuals(prob, res.x, res.y).max() < 5e-3


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), scale=st.floats(1e-3, 1e3))
def test_objective_scale_invariance(seed, scale):
    """Scaling the objective by c scales the optimum value by c, not x."""
    rng = np.random.default_rng(seed)
    prob = random_feasible_qp(rng, 5, 8)
    scaled = QPProblem(prob.P * scale, prob.q * scale, prob.A, prob.l, prob.u)
    r1 = solve_qp(prob)
    r2 = solve_qp(scaled)
    assert r1.status is SolverStatus.OPTIMAL and r2.status is SolverStatus.OPTIMAL
    # Tolerances are absolute in the solver, so extreme objective scales
    # loosen the recovered x slightly.
    np.testing.assert_allclose(r2.x, r1.x, atol=5e-3)
    np.testing.assert_allclose(r2.objective, scale * r1.objective, rtol=1e-3, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_solution_feasible_within_tolerance(seed):
    rng = np.random.default_rng(seed)
    prob = random_feasible_qp(rng, 6, 10)
    res = solve_qp(prob)
    Ax = prob.A @ res.x
    assert np.all(Ax >= prob.l - 1e-4)
    assert np.all(Ax <= prob.u + 1e-4)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 15), m=st.integers(1, 20))
def test_ruiz_equilibration_bounds_scaled_norms(seed, n, m):
    """After equilibration every row/column norm is close to 1."""
    rng = np.random.default_rng(seed)
    P0 = rng.normal(size=(n, n))
    P = P0 @ P0.T * 10.0 ** rng.uniform(-3, 3)
    A = rng.normal(size=(m, n)) * 10.0 ** rng.uniform(-3, 3)
    D, E = _ruiz_equilibrate(P, A, iters=50)
    Ps = P * D[:, None] * D[None, :]
    As = A * E[:, None] * D[None, :]
    col = np.maximum(
        np.max(np.abs(Ps), axis=0, initial=0.0),
        np.max(np.abs(As), axis=0, initial=0.0),
    )
    row = np.max(np.abs(As), axis=1, initial=0.0)
    # Norms that started nonzero must land near 1.
    assert np.all(col[col > 0] < 3.0)
    assert np.all(col[col > 0] > 0.2)
    assert np.all(row[row > 0] < 3.0)
    assert np.all(row[row > 0] > 0.2)
