"""Unit and property tests for the active-set QP solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers import QPProblem, SolverStatus, solve_qp, solve_qp_active_set
from repro.solvers.kkt import kkt_residuals

from conftest import random_feasible_qp


class TestExactCases:
    def test_interior_optimum(self):
        res = solve_qp_active_set(
            2 * np.eye(2), [-6.0, 2.0], np.eye(2), [-10, -10], [10, 10]
        )
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [3.0, -1.0], atol=1e-8)

    def test_active_upper_bound(self):
        res = solve_qp_active_set(
            2 * np.eye(2), [-6.0, 2.0], np.eye(2), [-10, -10], [1, 10]
        )
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [1.0, -1.0], atol=1e-8)
        assert res.y[0] > 0  # multiplier pushing against the upper bound

    def test_equality_row(self):
        res = solve_qp_active_set(
            2 * np.eye(2), np.zeros(2), np.array([[1.0, 1.0]]), [1.0], [1.0]
        )
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [0.5, 0.5], atol=1e-8)

    def test_working_set_release(self):
        """Start pinned at a suboptimal corner: the solver must release it."""
        # min (x-0.5)^2 on 0 <= x <= 1, starting at x=1 (active upper).
        res = solve_qp_active_set(
            2 * np.eye(1), [-1.0], np.eye(1), [0.0], [1.0], x0=np.array([1.0])
        )
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [0.5], atol=1e-8)

    def test_primal_infeasible(self):
        res = solve_qp_active_set(
            np.eye(1), [0.0], np.array([[1.0], [1.0]]),
            [-np.inf, 1.0], [-1.0, np.inf],
        )
        assert res.status is SolverStatus.PRIMAL_INFEASIBLE

    def test_psd_input_regularized(self):
        # P singular (rank 1): the internal ridge keeps KKT solvable.
        P = np.array([[1.0, 1.0], [1.0, 1.0]])
        res = solve_qp_active_set(
            P, [1.0, 1.0], np.eye(2), [0.0, 0.0], [1.0, 1.0]
        )
        assert res.status is SolverStatus.OPTIMAL
        np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_qp_active_set(np.eye(2), np.zeros(3), np.eye(2), [0, 0], [1, 1])
        with pytest.raises(ValueError):
            solve_qp_active_set(np.eye(1), [0.0], np.eye(1), [2.0], [1.0])
        with pytest.raises(ValueError):
            solve_qp_active_set(
                np.eye(1), [0.0], np.eye(1), [0.0], [1.0], x0=np.array([5.0])
            )


class TestThreeWayAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_admm(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 15))
        m = int(rng.integers(n, 3 * n))
        prob = random_feasible_qp(rng, n, m)
        admm = solve_qp(prob)
        aset = solve_qp_active_set(prob.P, prob.q, prob.A, prob.l, prob.u)
        assert aset.status is SolverStatus.OPTIMAL
        assert aset.objective == pytest.approx(
            admm.objective, rel=1e-4, abs=1e-6
        )
        kk = kkt_residuals(prob, aset.x, aset.y)
        assert kk.max() < 1e-4


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 10))
def test_active_set_kkt_property(seed, n):
    rng = np.random.default_rng(seed)
    prob = random_feasible_qp(rng, n, n + int(rng.integers(0, 10)))
    res = solve_qp_active_set(prob.P, prob.q, prob.A, prob.l, prob.u)
    assert res.status is SolverStatus.OPTIMAL
    assert kkt_residuals(prob, res.x, res.y).max() < 1e-4
