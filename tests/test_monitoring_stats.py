"""Unit tests for the monitoring hub and halog-style balancer stats."""

import numpy as np
import pytest

from repro.loadbalancer import BalancerStats
from repro.markets import default_catalog
from repro.monitoring import MonitoringHub


@pytest.fixture
def hub(small_markets):
    return MonitoringHub(small_markets)


class TestMonitoringHub:
    def test_snapshot_requires_feeds(self, hub):
        with pytest.raises(RuntimeError, match="price"):
            hub.snapshot(0.0)
        hub.ingest_prices(np.full(6, 0.5))
        with pytest.raises(RuntimeError, match="failure"):
            hub.snapshot(0.0)

    def test_snapshot_contents(self, hub, small_markets):
        hub.ingest_prices(np.full(6, 0.5))
        hub.ingest_failure_probs(np.full(6, 0.1))
        hub.ingest_workload(1234.0)
        hub.ingest_balancer_stats({"p90_s": 0.2})
        snap = hub.snapshot(42.0)
        assert snap.timestamp == 42.0
        assert snap.observed_rps == 1234.0
        np.testing.assert_allclose(
            snap.per_request_prices,
            0.5 / np.array([m.capacity_rps for m in small_markets]),
        )
        assert snap.balancer_stats["p90_s"] == 0.2

    def test_histories_accumulate(self, hub):
        hub.ingest_prices(np.full(6, 0.5))
        hub.ingest_failure_probs(np.full(6, 0.1))
        hub.snapshot(0.0)
        hub.ingest_prices(np.full(6, 0.6))
        hub.ingest_failure_probs(np.full(6, 0.2))
        hub.snapshot(1.0)
        assert hub.price_history().shape == (2, 6)
        assert hub.failure_history()[1, 0] == 0.2

    def test_warning_relay(self, hub):
        seen = []
        hub.on_warning(lambda bid, now: seen.append((bid, now)))
        hub.relay_warning(7, 99.0)
        assert seen == [(7, 99.0)]

    def test_feed_validation(self, hub):
        with pytest.raises(ValueError):
            hub.ingest_prices(np.ones(3))
        with pytest.raises(ValueError):
            hub.ingest_prices(-np.ones(6))
        with pytest.raises(ValueError):
            hub.ingest_failure_probs(2 * np.ones(6))
        with pytest.raises(ValueError):
            hub.ingest_workload(-1.0)
        with pytest.raises(ValueError):
            MonitoringHub([])

    def test_empty_histories(self, hub):
        assert hub.price_history().shape == (0, 6)
        assert hub.failure_history().shape == (0, 6)


class TestBalancerStats:
    def test_arrival_rate_and_throughput(self):
        stats = BalancerStats(window_seconds=100.0)
        for i in range(101):
            stats.record_served(float(i), backend_id=0, latency=0.1)
        assert stats.arrival_rate() == pytest.approx(1.01, abs=0.05)
        assert stats.throughput() == pytest.approx(1.01, abs=0.05)

    def test_drop_rate(self):
        stats = BalancerStats()
        stats.record_served(0.0, 0, 0.1)
        stats.record_unserved(1.0)
        assert stats.drop_rate() == pytest.approx(0.5)

    def test_window_trims_old_records(self):
        stats = BalancerStats(window_seconds=10.0)
        stats.record_served(0.0, 0, 5.0)  # will age out
        for t in range(100, 110):
            stats.record_served(float(t), 0, 0.1)
        pct = stats.latency_percentiles((99.0,))
        assert pct[99.0] < 1.0

    def test_per_backend_load(self):
        stats = BalancerStats()
        stats.record_served(0.0, 1, 0.1)
        stats.record_served(1.0, 1, 0.1)
        stats.record_served(2.0, 2, 0.1)
        load = stats.per_backend_load()
        assert load == {1: 2, 2: 1}

    def test_snapshot_payload(self):
        stats = BalancerStats()
        for t in range(20):
            stats.record_served(float(t), 0, 0.05 * (t % 4))
        snap = stats.snapshot()
        assert set(snap) == {
            "arrival_rate_rps",
            "throughput_rps",
            "drop_rate",
            "p50_s",
            "p90_s",
            "p99_s",
        }

    def test_empty(self):
        stats = BalancerStats()
        assert stats.arrival_rate() == 0.0
        assert np.isnan(stats.latency_percentiles((50.0,))[50.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            BalancerStats(window_seconds=0.0)
        with pytest.raises(ValueError):
            BalancerStats().record_served(0.0, 0, -1.0)
