"""Unit tests for MarketDataset."""

import numpy as np
import pytest

from repro.markets import MarketDataset, default_catalog, generate_market_dataset


class TestGenerate:
    def test_default_scale(self, small_dataset, small_markets):
        assert small_dataset.num_markets == len(small_markets)
        assert small_dataset.num_intervals == 7 * 24

    def test_deterministic(self, small_markets):
        a = generate_market_dataset(small_markets, intervals=48, seed=9)
        b = generate_market_dataset(small_markets, intervals=48, seed=9)
        np.testing.assert_array_equal(a.prices, b.prices)
        np.testing.assert_array_equal(a.failure_probs, b.failure_probs)

    def test_per_request_costs(self, small_dataset):
        C = small_dataset.per_request_costs()
        manual = small_dataset.prices[3, 2] / small_dataset.markets[2].capacity_rps
        assert C[3, 2] == pytest.approx(manual)


class TestValidation:
    def test_shape_mismatch(self, small_markets):
        with pytest.raises(ValueError, match="equal shape"):
            MarketDataset(small_markets, np.ones((5, 6)), np.ones((4, 6)))

    def test_width_mismatch(self, small_markets):
        with pytest.raises(ValueError, match="width"):
            MarketDataset(small_markets, np.ones((5, 3)), np.ones((5, 3)))

    def test_negative_prices(self, small_markets):
        prices = -np.ones((5, 6))
        with pytest.raises(ValueError, match="non-negative"):
            MarketDataset(small_markets, prices, np.zeros((5, 6)))

    def test_bad_probabilities(self, small_markets):
        with pytest.raises(ValueError, match="probabilities"):
            MarketDataset(small_markets, np.ones((5, 6)), 2 * np.ones((5, 6)))


class TestSlicing:
    def test_slice_markets(self, small_dataset):
        sub = small_dataset.slice_markets([0, 2])
        assert sub.num_markets == 2
        np.testing.assert_array_equal(sub.prices, small_dataset.prices[:, [0, 2]])

    def test_slice_time(self, small_dataset):
        sub = small_dataset.slice_time(10, 20)
        assert sub.num_intervals == 10
        np.testing.assert_array_equal(sub.prices, small_dataset.prices[10:20])

    def test_slice_time_validation(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.slice_time(20, 10)


class TestRoundTrip:
    def test_save_load(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        small_dataset.save(path)
        loaded = MarketDataset.load(path, default_catalog())
        np.testing.assert_array_equal(loaded.prices, small_dataset.prices)
        np.testing.assert_array_equal(
            loaded.failure_probs, small_dataset.failure_probs
        )
        assert [m.name for m in loaded.markets] == [
            m.name for m in small_dataset.markets
        ]
        assert loaded.interval_seconds == small_dataset.interval_seconds


class TestCovariances:
    def test_event_covariance_pd(self, small_dataset):
        M = small_dataset.event_covariance()
        assert np.all(np.linalg.eigvalsh(M) > 0)

    def test_windowed(self, small_dataset):
        M_full = small_dataset.event_covariance()
        M_win = small_dataset.event_covariance(window=slice(0, 24))
        assert M_full.shape == M_win.shape
        assert not np.allclose(M_full, M_win)
