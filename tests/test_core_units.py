"""The named conversion constants agree with the shared units grammar.

``repro.units`` promises that every ``X_PER_Y`` constant's value is
exactly ``1 / scale(unit)`` for its :data:`~repro.units.UNIT_OF` entry —
multiplying a ``y`` quantity by the constant yields an ``x`` quantity
with the scales cancelling exactly.  These tests enforce that promise
through the grammar itself, plus the re-export parity of
``repro.core.units`` (the control-plane spelling spotunits' SW304 hints
cite).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

import repro.core.units as core_units
import repro.units as units
from repro.devtools.specs import parse_unit

CONSTANTS = [name for name in units.__all__ if name != "UNIT_OF"]


def test_every_constant_has_a_unit_and_vice_versa():
    assert set(units.UNIT_OF) == set(CONSTANTS)


@pytest.mark.parametrize("name", CONSTANTS)
def test_value_is_exactly_one_over_grammar_scale(name):
    value = getattr(units, name)
    spec = parse_unit(units.UNIT_OF[name])
    assert Fraction(value) * spec.scale() == 1
    assert float(value).is_integer()  # conversion counts are whole numbers


@pytest.mark.parametrize("name", CONSTANTS)
def test_units_are_pure_same_dimension_ratios(name):
    # An X_PER_Y conversion rescales within one dimension (s/hr) or
    # between request magnitudes (req/kreq): dimensionless net exponents.
    assert parse_unit(units.UNIT_OF[name]).dimensions() == {}


def test_derived_constants_compose():
    assert units.SECONDS_PER_HOUR == (
        units.SECONDS_PER_MINUTE * units.MINUTES_PER_HOUR
    )
    assert units.SECONDS_PER_DAY == units.SECONDS_PER_HOUR * units.HOURS_PER_DAY
    assert units.HOURS_PER_WEEK == units.HOURS_PER_DAY * units.DAYS_PER_WEEK
    assert units.SECONDS_PER_WEEK == (
        units.SECONDS_PER_DAY * units.DAYS_PER_WEEK
    )


def test_core_units_reexports_the_foundation_constants():
    assert core_units.__all__ == units.__all__
    for name in units.__all__:
        assert getattr(core_units, name) is getattr(units, name)
