"""Unit tests for the GCP-preemptible market mode."""

import numpy as np
import pytest

from repro.markets import PurchaseOption, default_catalog, gcp_like_dataset
from repro.markets.gcp import GCP_DISCOUNT


class TestGCPLikeDataset:
    @pytest.fixture(scope="class")
    def mixed(self, catalog):
        spot = catalog.spot_markets(4)
        od = [
            catalog.market(m.instance.name, PurchaseOption.ON_DEMAND)
            for m in spot
        ]
        return spot + od

    def test_prices_flat_at_fixed_discount(self, mixed):
        ds = gcp_like_dataset(mixed, intervals=48, seed=0)
        for j, market in enumerate(mixed):
            col = ds.prices[:, j]
            assert np.all(col == col[0])
            if market.revocable:
                assert col[0] == pytest.approx(
                    GCP_DISCOUNT * market.instance.ondemand_price
                )
            else:
                assert col[0] == pytest.approx(market.instance.ondemand_price)

    def test_preemption_in_published_band(self, mixed):
        ds = gcp_like_dataset(mixed, intervals=48, seed=0)
        for j, market in enumerate(mixed):
            col = ds.failure_probs[:, j]
            assert np.all(col == col[0])
            if market.revocable:
                assert 0.05 <= col[0] <= 0.15
            else:
                assert col[0] == 0.0

    def test_deterministic(self, mixed):
        a = gcp_like_dataset(mixed, intervals=24, seed=3)
        b = gcp_like_dataset(mixed, intervals=24, seed=3)
        np.testing.assert_array_equal(a.failure_probs, b.failure_probs)

    def test_default_universe(self):
        ds = gcp_like_dataset(intervals=24)
        assert ds.num_markets == len(default_catalog())

    def test_validation(self, mixed):
        with pytest.raises(ValueError):
            gcp_like_dataset(mixed, intervals=0)
