"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools.contracts import set_contracts
from repro.markets import default_catalog, generate_market_dataset
from repro.workloads import wikipedia_like

# The runtime contract layer (shape/sign/unit checks at the hot seams) is
# always active under the test suite, regardless of SPOTWEB_CONTRACTS.
set_contracts(True)


@pytest.fixture(scope="session")
def catalog():
    return default_catalog()


@pytest.fixture(scope="session")
def small_markets(catalog):
    """Six spot markets — enough for portfolio structure, fast to solve."""
    return catalog.spot_markets(6)


@pytest.fixture(scope="session")
def small_dataset(small_markets):
    """One week of hourly market data over the six markets."""
    return generate_market_dataset(small_markets, intervals=7 * 24, seed=123)


@pytest.fixture(scope="session")
def wiki_week():
    """One week of the Wikipedia-like workload at a 2000 req/s peak."""
    return wikipedia_like(1, seed=123).scaled(2000.0)


def random_feasible_qp(rng: np.random.Generator, n: int, m: int):
    """A random strictly convex QP with a guaranteed-feasible box."""
    from repro.solvers import QPProblem

    L = rng.normal(size=(n, n))
    P = L @ L.T + 0.1 * np.eye(n)
    q = rng.normal(size=n)
    A = rng.normal(size=(m, n))
    x0 = rng.normal(size=n)
    Ax0 = A @ x0
    slack_lo = rng.uniform(0.05, 2.0, size=m)
    slack_hi = rng.uniform(0.05, 2.0, size=m)
    return QPProblem(P, q, A, Ax0 - slack_lo, Ax0 + slack_hi)
