"""Smoke + shape tests for the experiment runners (small scales).

Full-scale paper configurations run in ``benchmarks/``; these tests check
each experiment end-to-end at reduced scale, asserting the *direction* of
each result (who wins), not magnitudes.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig3_workloads,
    fig4a_loadbalancer,
    fig4bcd_prediction,
    fig5_price_awareness,
    fig6a_constant,
    fig6b_exosphere,
    fig7a_accuracy,
    fig7b_scalability,
    gcloud,
    lookahead,
    table1,
)


class TestTable1:
    def test_spotweb_row_all_capabilities(self):
        rows = table1.run_table1()
        spotweb = [r for r in rows if r.name == "SpotWeb"][0]
        assert spotweb.slo_awareness == "Yes"
        assert spotweb.future_forecast == "Yes"
        assert spotweb.latency_aware_provisioning

    def test_format_renders(self):
        out = table1.format_table1()
        assert "ExoSphere" in out and "SpotWeb" in out


class TestFig3:
    def test_traces_have_paper_shapes(self):
        res = fig3_workloads.run_fig3(weeks=2, seed=0)
        wiki, vod = res["wikipedia"], res["vod"]
        assert wiki.diurnal_strength > 0.6
        assert wiki.spike_count < vod.spike_count
        assert vod.peak_to_mean > 2 * wiki.peak_to_mean
        assert "wikipedia" in fig3_workloads.format_fig3(res)


class TestFig4a:
    @pytest.mark.slow
    def test_transiency_lb_beats_vanilla(self):
        res = fig4a_loadbalancer.run_fig4a(seed=0, scale=0.25)
        sw, van = res["spotweb"], res["vanilla"]
        # The headline shape: near-zero drops vs a drop cliff.
        assert sw.drop_rate < 0.05
        assert van.drop_rate > 0.15
        assert sw.recorder.percentile(90) < van.recorder.percentile(90)
        out = fig4a_loadbalancer.format_fig4a(res)
        assert "vanilla" in out


class TestFig4bcd:
    def test_padding_shifts_errors_positive(self):
        from repro.workloads import wikipedia_like

        res = fig4bcd_prediction.run_fig4bcd(
            trace=wikipedia_like(3, seed=2), warmup_days=14
        )
        base, spot = res["baseline"].stats, res["spotweb"].stats
        assert spot.frac_under < 0.15
        assert base.frac_under > 0.25
        assert spot.mean_over > base.mean_over
        out = fig4bcd_prediction.format_fig4bcd(res)
        assert "spotweb" in out


class TestFig5And6a:
    def test_mpo_beats_constant_portfolio(self):
        res = fig5_price_awareness.run_fig5(hours=48, peak_rps=4000.0, seed=3)
        assert res.cheapest_market_switches >= 1
        assert res.savings > 0.0
        assert "price-awareness" in fig5_price_awareness.format_fig5(res)

    def test_fig6a_both_horizons_beat_constant(self):
        res = fig6a_constant.run_fig6a(horizons=(2, 4), hours=48, seed=3)
        assert res.savings(2) > 0.0
        assert res.savings(4) > 0.0
        assert "constant" in fig6a_constant.format_fig6a(res)


class TestFig6b:
    @pytest.mark.slow
    def test_spotweb_beats_exosphere_loop(self):
        res = fig6b_exosphere.run_fig6b(
            market_counts=(6, 12),
            horizons=(2, 4),
            weeks=1,
            seeds=(3,),
        )
        vals = list(res.savings.values())
        assert np.mean(vals) > 0.0
        out = fig6b_exosphere.format_fig6b(res)
        assert "ExoSphere" in out


class TestFig7a:
    @pytest.mark.slow
    def test_savings_decline_with_error(self):
        res = fig7a_accuracy.run_fig7a(
            errors=(0.0, 0.2), num_markets=6, weeks=1, seed=3
        )
        assert res.savings_by_error[0.0] >= res.savings_by_error[0.2] - 0.05
        assert "accuracy" in fig7a_accuracy.format_fig7a(res)


class TestFig7b:
    def test_solve_times_bounded(self):
        res = fig7b_scalability.run_fig7b(
            market_counts=(9, 36), horizons=(2, 4), repeats=2
        )
        for (nm, h), (med, mx) in res.times.items():
            assert med < 5.0  # the paper's ceiling
        assert "markets" in fig7b_scalability.format_fig7b(res)


class TestGCloud:
    @pytest.mark.slow
    def test_savings_without_price_dynamics(self):
        res = gcloud.run_gcloud(num_types=6, weeks=1)
        assert res.savings_vs_ondemand > 0.3
        assert res.spotweb.unserved_fraction <= res.exosphere.unserved_fraction + 0.01
        assert "preemptible" in gcloud.format_gcloud(res)


class TestLookahead:
    @pytest.mark.slow
    def test_slow_startup_rewards_lookahead(self):
        res = lookahead.run_lookahead(
            startups=(300.0, 3600.0),
            horizons=(1, 6),
            num_markets=6,
            weeks=1,
        )
        # With slow starts, the long horizon should not be worse by much,
        # and typically helps.
        slow_gain = res.gain_from_lookahead(3600.0)
        fast_gain = res.gain_from_lookahead(300.0)
        assert slow_gain > fast_gain - 0.05
        assert "look-ahead" in lookahead.format_lookahead(res)
