"""Tests for the streaming latency digest and SLO burn-rate engine."""

import numpy as np
import pytest

from repro.obs import EventLog, LatencyDigest, SLOEngine, get_events, set_events


@pytest.fixture
def global_log():
    """Install a fresh enabled global event log; restore the old after."""
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


class TestLatencyDigest:
    def test_percentile_within_one_bin_of_exact(self):
        rng = np.random.default_rng(0)
        samples = rng.gamma(2.0, 0.2, size=20_000)
        digest = LatencyDigest(bin_width=0.01, max_latency=30.0)
        for s in samples:
            digest.add(float(s))
        for p in (50, 90, 95, 99):
            exact = float(np.percentile(samples, p))
            assert digest.percentile(p) == pytest.approx(
                exact, abs=digest.bin_width
            )

    def test_memory_is_bounded(self):
        digest = LatencyDigest(bin_width=0.01, max_latency=10.0)
        for i in range(100_000):
            digest.add((i % 500) / 100.0)
        assert len(digest.counts) == digest.num_bins + 1
        assert digest.count == 100_000

    def test_overflow_bin_reports_max(self):
        digest = LatencyDigest(bin_width=0.01, max_latency=1.0)
        digest.add(57.5)
        assert digest.percentile(99) == 57.5
        assert digest.max == 57.5

    def test_mean_and_empty(self):
        digest = LatencyDigest()
        assert np.isnan(digest.mean())
        assert np.isnan(digest.percentile(50))
        digest.add(1.0)
        digest.add(3.0)
        assert digest.mean() == 2.0

    def test_merge(self):
        a = LatencyDigest(bin_width=0.1, max_latency=5.0)
        b = LatencyDigest(bin_width=0.1, max_latency=5.0)
        combined = LatencyDigest(bin_width=0.1, max_latency=5.0)
        for i in range(50):
            a.add(i / 25.0)
            combined.add(i / 25.0)
        for i in range(50):
            b.add(2.0 + i / 25.0)
            combined.add(2.0 + i / 25.0)
        a.merge(b)
        assert a.counts == combined.counts
        assert a.percentile(95) == combined.percentile(95)

    def test_merge_geometry_mismatch_rejected(self):
        a = LatencyDigest(bin_width=0.1, max_latency=5.0)
        b = LatencyDigest(bin_width=0.2, max_latency=5.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_keys(self):
        digest = LatencyDigest()
        assert digest.snapshot()["count"] == 0
        digest.add(0.5)
        snap = digest.snapshot()
        assert set(snap) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LatencyDigest(bin_width=0.0)
        with pytest.raises(ValueError):
            LatencyDigest(bin_width=1.0, max_latency=0.5)


class TestSLOEngine:
    def test_interval_series(self, global_log):
        eng = SLOEngine(slo_threshold=1.0, interval_seconds=60.0)
        for i in range(10):
            eng.record(float(i), 0.2)      # interval 0: all good
        for i in range(10):
            eng.record(60.0 + i, 5.0)      # interval 1: all late
        eng.finish(120.0)
        assert [h["interval"] for h in eng.history] == [0, 1]
        assert eng.history[0]["compliance"] == 1.0
        assert eng.history[1]["compliance"] == 0.0
        kinds = [r["kind"] for r in global_log.records()]
        assert kinds.count("slo.interval") == 2

    def test_empty_intervals_are_fully_compliant(self, global_log):
        eng = SLOEngine(interval_seconds=60.0)
        eng.record(0.0, 0.1)
        eng.record(200.0, 0.1)  # intervals 1 and 2 see no traffic
        eng.finish(240.0)
        compliance = [h["compliance"] for h in eng.history]
        assert compliance == [1.0, 1.0, 1.0, 1.0]

    def test_unserved_requests_burn_budget(self, global_log):
        eng = SLOEngine(target=0.99, interval_seconds=60.0)
        eng.record(0.0, 0.1)
        eng.record_bad(1.0)
        eng.finish(60.0)
        assert eng.history[0]["compliance"] == 0.5
        assert eng.history[0]["burn"] == pytest.approx(50.0)

    def test_alert_fires_and_resolves(self, global_log):
        eng = SLOEngine(
            target=0.99,
            interval_seconds=60.0,
            short_window=2,
            long_window=3,
            burn_threshold=10.0,
        )
        # Three bad intervals: the long window fills with burn 100.
        for k in range(3):
            eng.record(60.0 * k, 5.0)
        # Then enough good intervals to flush both windows.
        for k in range(3, 8):
            eng.record(60.0 * k, 0.1)
        eng.finish(480.0)
        alerts = [
            r for r in global_log.records() if r["kind"] == "slo.alert"
        ]
        assert [a["attrs"]["state"] for a in alerts] == ["firing", "resolved"]
        assert eng.alerts == 1
        assert not eng.alert_firing

    def test_alert_needs_both_windows(self, global_log):
        eng = SLOEngine(
            target=0.99,
            interval_seconds=60.0,
            short_window=1,
            long_window=11,
            burn_threshold=10.0,
        )
        # One bad interval after a long good stretch: the short window
        # spikes to burn 100 but the long window mean stays below the
        # threshold -> no alert.
        for k in range(11):
            eng.record(60.0 * k, 0.1)
        eng.record(60.0 * 11, 5.0)
        eng.finish(60.0 * 12)
        assert eng.alerts == 0

    def test_alert_links_open_warning(self, global_log):
        wid = global_log.open_warning(1, t=0.0)
        eng = SLOEngine(
            target=0.99, interval_seconds=60.0,
            short_window=1, long_window=1, burn_threshold=10.0,
        )
        eng.record(0.0, 5.0)
        eng.finish(60.0)
        alert = next(
            r for r in global_log.records() if r["kind"] == "slo.alert"
        )
        assert alert["attrs"]["state"] == "firing"
        assert alert["cause"] == wid
        global_log.resolve_warning(wid, t=60.0)

    def test_deterministic_across_runs(self, global_log):
        def run():
            eng = SLOEngine(interval_seconds=30.0)
            rng = np.random.default_rng(3)
            for i in range(500):
                eng.record(i * 0.5, float(rng.gamma(2.0, 0.3)))
            eng.finish(250.0)
            return eng.history

        assert run() == run()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SLOEngine(target=1.5)
        with pytest.raises(ValueError):
            SLOEngine(interval_seconds=0.0)
        with pytest.raises(ValueError):
            SLOEngine(short_window=5, long_window=2)
        with pytest.raises(ValueError):
            SLOEngine(burn_threshold=0.0)


class TestDigestMassWithLiveBus:
    """`add_masses`/`merge` percentiles on the streaming telemetry path."""

    def test_add_masses_then_merge_matches_scalar_adds(self):
        # One digest fed fluid-tier mass, one fed per-request samples,
        # merged; the reference sees the same population via add() only.
        mass = LatencyDigest(bin_width=0.1, max_latency=5.0)
        mass.add_masses(
            np.array([0.35, 1.25, 2.45]), np.array([10.0, 5.0, 1.0])
        )
        scalar = LatencyDigest(bin_width=0.1, max_latency=5.0)
        reference = LatencyDigest(bin_width=0.1, max_latency=5.0)
        for latency, weight in ((0.35, 10), (1.25, 5), (2.45, 1)):
            for _ in range(weight):
                reference.add(latency)
        for latency in (0.15, 0.95, 3.05):
            scalar.add(latency)
            reference.add(latency)
        mass.merge(scalar)
        assert mass.count == reference.count
        for p in (50, 95, 99):
            assert mass.percentile(p) == reference.percentile(p)

    def test_record_mass_streams_digest_percentiles(self, global_log):
        """The fluid mass path feeds the same digest the bus publishes.

        The SLO interval close is the bus's sim-time heartbeat: the
        published ``slo`` point must carry exactly the percentiles of
        the interval digest built from ``record`` + ``record_mass``.
        """
        from repro.obs import TelemetryBus, set_bus

        bus = TelemetryBus(enabled=True, publish_metrics=False)
        old_bus = set_bus(bus)
        points = []
        ticks = []
        bus.subscribe(
            lambda d: points.extend(d["points"]) if d["type"] == "slo" else None
        )
        bus.subscribe(
            lambda d: ticks.append(d) if d["type"] == "tick" else None
        )
        try:
            eng = SLOEngine(slo_threshold=1.0, interval_seconds=60.0)
            eng.record(5.0, 0.4)
            eng.record(10.0, 1.6)  # late: burns budget like late mass
            eng.record_mass(
                20.0, np.array([0.3, 1.5]), np.array([30.0, 10.0])
            )
            eng.record_bad_mass(30.0, 2.0)
            eng.finish(60.0)
        finally:
            set_bus(old_bus)
        expected = LatencyDigest()
        expected.add(0.4)
        expected.add(1.6)
        expected.add_masses(np.array([0.3, 1.5]), np.array([30.0, 10.0]))
        (point,) = points
        assert point["requests"] == 44.0
        assert point["compliance"] == pytest.approx(31.0 / 44.0)
        for key, p in (("p50", 50), ("p95", 95), ("p99", 99)):
            assert point[key] == expected.percentile(p)
        # The interval close ticked the frame boundary exactly once.
        assert [(d["t"], d["interval"]) for d in ticks] == [(60.0, 0)]
