"""Tests for the repro.bench benchmark/baseline layer."""

from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    SCHEMA_MPO,
    SCHEMA_SIM,
    SCHEMA_SIM_V1,
    bench_mpo,
    bench_regressions,
    bench_sim,
    crossover_violations,
    format_bench_mpo,
    format_bench_sim,
    hybrid_speedup_violations,
    load_bench,
    sim_regressions,
    write_bench,
)


@pytest.fixture(scope="module")
def tiny_mpo():
    return bench_mpo(
        market_counts=(4,), horizons=(2,), repeats=2, seed=0
    )


class TestBenchMPO:
    def test_grid_and_schema(self, tiny_mpo):
        assert tiny_mpo["schema"] == SCHEMA_MPO
        assert len(tiny_mpo["cells"]) == 2  # one per backend
        backends = {c["backend"] for c in tiny_mpo["cells"]}
        assert backends == {"admm", "structured"}
        for cell in tiny_mpo["cells"]:
            assert cell["variables"] == 8
            assert cell["cold_ms"] > 0
            assert cell["warm_median_ms"] > 0
            assert cell["warm_max_ms"] >= cell["warm_median_ms"]

    def test_backends_land_on_same_objective(self, tiny_mpo):
        (speedup,) = tiny_mpo["speedups"]
        assert speedup["objective_gap"] < 1e-6
        assert speedup["warm_speedup"] > 0

    def test_format_renders(self, tiny_mpo):
        out = format_bench_mpo(tiny_mpo)
        assert "structured" in out and "cold_ms" in out


class TestBenchSim:
    def test_throughput_positive(self):
        # Test-sized cluster cells: low rate, short horizons, single repeat.
        data = bench_sim(
            num_markets=4,
            weeks=1,
            peak_rps=500.0,
            repeats=2,
            seed=0,
            cluster_repeats=1,
            request_seconds=2.0,
            hybrid_seconds=10.0,
            include_huge=False,
        )
        assert data["schema"] == SCHEMA_SIM
        interval_cell, request_cell, hybrid_cell = data["cells"]
        assert interval_cell["intervals"] == 7 * 24
        assert interval_cell["intervals_per_sec_median"] > 0
        assert np.isfinite(interval_cell["total_cost"])
        assert request_cell["engine"] == "request"
        assert request_cell["tier_steps"]["fluid"] == 0
        assert hybrid_cell["engine"] == "hybrid"
        assert hybrid_cell["tier_steps"]["fluid"] > 0
        for cell in (request_cell, hybrid_cell):
            assert cell["intervals_per_sec_median"] > 0
            assert cell["served"] > 0
            assert np.isfinite(cell["p99_s"])
        out = format_bench_sim(data)
        assert "intervals/sec" in out and "sim-intervals/sec" in out


class TestPersistence:
    def test_roundtrip(self, tiny_mpo, tmp_path):
        path = write_bench(tiny_mpo, tmp_path / "BENCH_mpo.json")
        loaded = load_bench(path)
        assert loaded == tiny_mpo

    def test_unknown_schema_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            write_bench({"schema": "nope", "cells": []}, tmp_path / "x.json")
        (tmp_path / "y.json").write_text('{"schema": "nope", "cells": []}')
        with pytest.raises(ValueError, match="schema"):
            load_bench(tmp_path / "y.json")

    def test_committed_baselines_are_valid(self):
        # The repo-root BENCH files are part of the perf contract.
        root = Path(__file__).resolve().parents[1]
        mpo = load_bench(root / "BENCH_mpo.json")
        sim = load_bench(root / "BENCH_sim.json")
        assert mpo["schema"] == SCHEMA_MPO
        assert sim["schema"] == SCHEMA_SIM
        assert crossover_violations(mpo) == []


class TestCrossover:
    def _data(self, entries):
        return {"schema": SCHEMA_MPO, "cells": [], "speedups": entries}

    def test_flags_slow_cells_past_threshold(self):
        entries = [
            {"markets": 48, "horizon": 10, "variables": 480, "warm_speedup": 0.8},
            {"markets": 144, "horizon": 10, "variables": 1440, "warm_speedup": 4.0},
            {"markets": 12, "horizon": 4, "variables": 48, "warm_speedup": 0.5},
        ]
        bad = crossover_violations(self._data(entries))
        assert [v["variables"] for v in bad] == [480]

    def test_threshold_configurable(self):
        entries = [
            {"markets": 12, "horizon": 4, "variables": 48, "warm_speedup": 0.5}
        ]
        assert crossover_violations(self._data(entries), min_vars=48)
        assert not crossover_violations(self._data(entries), min_vars=49)

    def test_requires_mpo_schema(self):
        with pytest.raises(ValueError):
            crossover_violations({"schema": SCHEMA_SIM, "speedups": []})


class TestBenchRegressions:
    def _data(self, cells):
        return {"schema": SCHEMA_MPO, "cells": cells, "speedups": []}

    def _cell(self, markets, horizon, backend, warm):
        return {
            "markets": markets,
            "horizon": horizon,
            "backend": backend,
            "warm_median_ms": warm,
        }

    def test_clean_when_within_factor(self):
        base = self._data([self._cell(12, 4, "admm", 2.0)])
        fresh = self._data([self._cell(12, 4, "admm", 4.0)])
        assert bench_regressions(fresh, base, factor=2.5) == []

    def test_flags_cells_beyond_factor(self):
        base = self._data(
            [self._cell(12, 4, "admm", 2.0), self._cell(48, 4, "structured", 8.0)]
        )
        fresh = self._data(
            [self._cell(12, 4, "admm", 6.0), self._cell(48, 4, "structured", 9.0)]
        )
        bad = bench_regressions(fresh, base, factor=2.5)
        assert len(bad) == 1
        assert bad[0]["markets"] == 12 and bad[0]["backend"] == "admm"
        assert bad[0]["ratio"] == pytest.approx(3.0)
        assert bad[0]["baseline_warm_median_ms"] == 2.0

    def test_ignores_unmatched_cells_but_needs_overlap(self):
        base = self._data(
            [self._cell(12, 4, "admm", 2.0), self._cell(144, 10, "admm", 50.0)]
        )
        fresh = self._data(
            [self._cell(12, 4, "admm", 2.1), self._cell(48, 6, "admm", 9.0)]
        )
        assert bench_regressions(fresh, base) == []
        disjoint = self._data([self._cell(96, 8, "admm", 1.0)])
        with pytest.raises(ValueError, match="no overlapping cells"):
            bench_regressions(disjoint, base)

    def test_rejects_bad_inputs(self):
        good = self._data([self._cell(12, 4, "admm", 2.0)])
        with pytest.raises(ValueError, match="bench-mpo"):
            bench_regressions({"schema": SCHEMA_SIM, "cells": []}, good)
        with pytest.raises(ValueError, match="factor"):
            bench_regressions(good, good, factor=1.0)

    def test_quick_grid_overlaps_committed_baseline(self):
        """The CI --quick grid must share cells with BENCH_mpo.json."""
        root = Path(__file__).resolve().parents[1]
        base = load_bench(root / "BENCH_mpo.json")
        keys = {(c["markets"], c["horizon"]) for c in base["cells"]}
        # _cmd_bench --quick runs market_counts=(12, 48), horizons=(4, 6).
        assert {(12, 4), (48, 4)} <= keys


class TestSimRegressions:
    def _data(self, cells, schema=SCHEMA_SIM):
        return {"schema": schema, "cells": cells}

    def _interval(self, markets, ips):
        return {
            "policy": "uniform",
            "markets": markets,
            "intervals_per_sec_median": ips,
        }

    def _engine(self, engine, rps, ips):
        return {
            "engine": engine,
            "peak_rps": rps,
            "intervals_per_sec_median": ips,
        }

    def test_clean_within_factor(self):
        base = self._data([self._interval(12, 100.0)])
        fresh = self._data([self._interval(12, 50.0)])
        assert sim_regressions(fresh, base, factor=2.5) == []

    def test_flags_slow_cells_of_both_kinds(self):
        base = self._data(
            [self._interval(12, 100.0), self._engine("hybrid", 2e4, 30.0)]
        )
        fresh = self._data(
            [self._interval(12, 10.0), self._engine("hybrid", 2e4, 5.0)]
        )
        bad = sim_regressions(fresh, base, factor=2.5)
        assert {v["cell"][0] for v in bad} == {"policy", "engine"}
        assert bad[0]["slowdown"] == pytest.approx(10.0)

    def test_v1_baseline_still_comparable(self):
        # Old committed baselines (interval cells only) keep gating.
        base = self._data([self._interval(12, 100.0)], schema=SCHEMA_SIM_V1)
        fresh = self._data(
            [self._interval(12, 90.0), self._engine("hybrid", 2e4, 30.0)]
        )
        assert sim_regressions(fresh, base) == []

    def test_zero_overlap_rejected(self):
        base = self._data([self._interval(12, 100.0)])
        fresh = self._data([self._engine("hybrid", 2e4, 30.0)])
        with pytest.raises(ValueError, match="no overlapping"):
            sim_regressions(fresh, base)

    def test_rejects_bad_inputs(self):
        good = self._data([self._interval(12, 100.0)])
        with pytest.raises(ValueError, match="bench-sim"):
            sim_regressions({"schema": SCHEMA_MPO, "cells": []}, good)
        with pytest.raises(ValueError, match="factor"):
            sim_regressions(good, good, factor=1.0)


class TestHybridSpeedup:
    def _data(self, cells):
        return {"schema": SCHEMA_SIM, "cells": cells}

    def _cell(self, engine, rps, ips):
        return {
            "engine": engine,
            "peak_rps": rps,
            "intervals_per_sec_median": ips,
        }

    def test_clean_when_fast_enough(self):
        data = self._data(
            [self._cell("request", 2e4, 0.3), self._cell("hybrid", 2e4, 30.0)]
        )
        assert hybrid_speedup_violations(data, min_speedup=50.0) == []

    def test_flags_insufficient_speedup(self):
        data = self._data(
            [self._cell("request", 2e4, 1.0), self._cell("hybrid", 2e4, 20.0)]
        )
        bad = hybrid_speedup_violations(data, min_speedup=50.0)
        assert len(bad) == 1
        assert bad[0]["speedup"] == pytest.approx(20.0)

    def test_reference_from_baseline_and_unpaired_skipped(self):
        # The 500k hybrid cell has no request reference and is skipped;
        # the 20k pair resolves against the committed baseline.
        baseline = self._data([self._cell("request", 2e4, 0.5)])
        fresh = self._data(
            [self._cell("hybrid", 2e4, 30.0), self._cell("hybrid", 5e5, 600.0)]
        )
        assert (
            hybrid_speedup_violations(fresh, baseline=baseline) == []
        )

    def test_zero_pairs_rejected(self):
        fresh = self._data([self._cell("hybrid", 5e5, 600.0)])
        with pytest.raises(ValueError, match="no hybrid/request"):
            hybrid_speedup_violations(fresh)

    def test_rejects_bad_inputs(self):
        good = self._data(
            [self._cell("request", 2e4, 1.0), self._cell("hybrid", 2e4, 90.0)]
        )
        with pytest.raises(ValueError, match="bench-sim"):
            hybrid_speedup_violations({"schema": SCHEMA_MPO, "cells": []})
        with pytest.raises(ValueError, match="min_speedup"):
            hybrid_speedup_violations(good, min_speedup=1.0)

    def test_committed_baseline_meets_floor(self):
        """The repo-root BENCH_sim.json is part of the perf contract."""
        root = Path(__file__).resolve().parents[1]
        sim = load_bench(root / "BENCH_sim.json")
        assert hybrid_speedup_violations(sim, min_speedup=50.0) == []
