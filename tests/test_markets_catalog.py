"""Unit tests for the instance catalog."""

import pytest

from repro.markets import Catalog, InstanceType, Market, PurchaseOption, default_catalog
from repro.markets.catalog import REQUESTS_PER_VCPU


class TestInstanceType:
    def test_capacity_defaults_to_vcpu_rule(self):
        t = InstanceType("m5.xlarge", 4, 16.0, 0.192)
        assert t.capacity_rps == REQUESTS_PER_VCPU * 4

    def test_explicit_capacity_respected(self):
        t = InstanceType("custom.large", 2, 8.0, 0.1, capacity_rps=55.0)
        assert t.capacity_rps == 55.0

    def test_family(self):
        assert InstanceType("r5d.24xlarge", 96, 768.0, 6.912).family == "r5d"

    def test_per_request_cost(self):
        t = InstanceType("c5.xlarge", 4, 8.0, 0.17)
        assert t.per_request_cost(0.17) == pytest.approx(0.17 / 80.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("bad", 0, 1.0, 0.1)
        with pytest.raises(ValueError):
            InstanceType("bad", 2, 1.0, 0.0)


class TestPaperCalibration:
    """The three markets the paper names must match its stated capacities."""

    @pytest.mark.parametrize(
        "name,expected_rps",
        [("r5d.24xlarge", 1920.0), ("r5.4xlarge", 320.0), ("r4.4xlarge", 320.0)],
    )
    def test_capacities(self, catalog, name, expected_rps):
        assert catalog.type_named(name).capacity_rps == expected_rps


class TestMarket:
    def test_names_and_revocability(self, catalog):
        spot = catalog.market("m4.large", PurchaseOption.SPOT)
        od = catalog.market("m4.large", PurchaseOption.ON_DEMAND)
        assert spot.name == "m4.large:spot"
        assert od.name == "m4.large:od"
        assert spot.revocable and not od.revocable


class TestCatalog:
    def test_default_has_conventional_x86_universe(self, catalog):
        assert len(catalog) == 40
        assert "m5.2xlarge" in catalog
        assert "p3.2xlarge" not in catalog  # no GPUs, as in the paper

    def test_spot_market_truncation(self, catalog):
        markets = catalog.spot_markets(36)
        assert len(markets) == 36
        assert all(m.option is PurchaseOption.SPOT for m in markets)

    def test_spot_market_count_validation(self, catalog):
        with pytest.raises(ValueError):
            catalog.spot_markets(0)
        with pytest.raises(ValueError):
            catalog.spot_markets(41)

    def test_all_markets_is_2s(self, catalog):
        assert len(catalog.all_markets()) == 2 * len(catalog)

    def test_subset_preserves_order(self, catalog):
        sub = catalog.subset(["r5.4xlarge", "m4.large"])
        assert [t.name for t in sub.types] == ["r5.4xlarge", "m4.large"]

    def test_duplicate_names_rejected(self):
        t = InstanceType("a.large", 2, 4.0, 0.1)
        with pytest.raises(ValueError, match="duplicate"):
            Catalog([t, t])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Catalog([])

    def test_unknown_lookup_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.type_named("nope.large")
