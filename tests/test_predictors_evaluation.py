"""Unit tests for the walk-forward evaluation harness."""

import numpy as np
import pytest

from repro.predictors import (
    BaselinePredictor,
    EWMAPredictor,
    OraclePredictor,
    ReactivePredictor,
    SplinePredictor,
)
from repro.predictors.evaluation import compare_predictors, walk_forward
from repro.workloads import wikipedia_like


@pytest.fixture(scope="module")
def trace():
    return wikipedia_like(3, seed=31)


class TestWalkForward:
    def test_oracle_scores_perfectly(self, trace):
        res = walk_forward(
            OraclePredictor(trace), trace, warmup=0, horizon=1, name="oracle"
        )
        assert res.mape == pytest.approx(0.0, abs=1e-12)
        assert res.rmse == pytest.approx(0.0, abs=1e-9)

    def test_no_lookahead_leak(self, trace):
        """A reactive predictor's h=1 error equals the lag-1 differences —
        proof the harness feeds observations strictly in order."""
        res = walk_forward(
            ReactivePredictor(), trace, warmup=10, horizon=1
        )
        expected = np.abs(np.diff(trace.rates))[9:]
        np.testing.assert_allclose(
            np.abs(res.actual - res.predicted_mean), expected, rtol=1e-12
        )

    def test_longer_horizon_harder(self, trace):
        r1 = walk_forward(SplinePredictor(24), trace, warmup=14 * 24, horizon=1)
        r6 = walk_forward(SplinePredictor(24), trace, warmup=14 * 24, horizon=6)
        assert r6.mape >= r1.mape * 0.8  # typically strictly worse

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            walk_forward(ReactivePredictor(), trace, warmup=len(trace))
        with pytest.raises(ValueError):
            walk_forward(ReactivePredictor(), trace, warmup=0, horizon=0)


class TestComparePredictors:
    def test_shootout(self, trace):
        results = compare_predictors(
            {
                "spline": lambda: SplinePredictor(24),
                "baseline": lambda: BaselinePredictor(24),
                "ewma": lambda: EWMAPredictor(),
                "reactive": lambda: ReactivePredictor(),
            },
            trace,
            warmup=14 * 24,
        )
        assert set(results) == {"spline", "baseline", "ewma", "reactive"}
        # The seasonal predictors beat the level-only ones on a diurnal trace.
        assert results["spline"].mape < results["reactive"].mape
        assert results["spline"].mape < results["ewma"].mape
        # Rows render for the report.
        row = results["spline"].row()
        assert row[0] == "spline"
        assert len(row) == len(type(results["spline"]).headers())
