"""Tests for the CI perf gate (repro.bench.ciperf)."""

import pytest

from repro.bench import ciperf


class _FakeReport:
    def __init__(self, total_cost):
        self.total_cost = total_cost


class _FakeSweep:
    def __init__(self, costs):
        self.reports = {k: _FakeReport(v) for k, v in costs.items()}


class TestCheckParallelSpeedup:
    def test_real_tiny_sweep_matches_bitwise(self):
        result = ciperf.check_parallel_speedup(
            reps=2, num_markets=4, weeks=1, seed=0, max_workers=2
        )
        assert result["mismatches"] == []
        assert result["serial_seconds"] > 0
        assert result["parallel_seconds"] > 0
        assert result["speedup"] > 0

    def test_detects_mismatch(self, monkeypatch):
        outputs = iter(
            [
                _FakeSweep({("spotweb", 0): 10.0, ("qu", 0): 20.0}),
                _FakeSweep({("spotweb", 0): 10.0, ("qu", 0): 20.5}),
            ]
        )
        from repro.experiments import table1

        monkeypatch.setattr(
            table1, "run_table1_costs", lambda **kwargs: next(outputs)
        )
        result = ciperf.check_parallel_speedup(reps=1)
        assert result["mismatches"] == [("qu", 0)]


class TestMain:
    def test_exit_zero_when_fast_and_equal(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ciperf,
            "check_parallel_speedup",
            lambda **kwargs: {
                "serial_seconds": 4.0,
                "parallel_seconds": 1.0,
                "speedup": 4.0,
                "mismatches": [],
            },
        )
        assert ciperf.main([]) == 0
        assert "4.00x" in capsys.readouterr().out

    def test_exit_one_on_slow_pool(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ciperf,
            "check_parallel_speedup",
            lambda **kwargs: {
                "serial_seconds": 2.0,
                "parallel_seconds": 2.0,
                "speedup": 1.0,
                "mismatches": [],
            },
        )
        assert ciperf.main(["--min-speedup", "2.0"]) == 1
        assert "only 1.00x" in capsys.readouterr().err

    def test_exit_one_on_mismatch(self, monkeypatch, capsys):
        monkeypatch.setattr(
            ciperf,
            "check_parallel_speedup",
            lambda **kwargs: {
                "serial_seconds": 4.0,
                "parallel_seconds": 1.0,
                "speedup": 4.0,
                "mismatches": [("spotweb", 1)],
            },
        )
        assert ciperf.main([]) == 1
        assert "parallel != serial" in capsys.readouterr().err

    def test_flags_reach_the_sweep(self, monkeypatch):
        seen = {}

        def fake(**kwargs):
            seen.update(kwargs)
            return {
                "serial_seconds": 1.0,
                "parallel_seconds": 0.1,
                "speedup": 10.0,
                "mismatches": [],
            }

        monkeypatch.setattr(ciperf, "check_parallel_speedup", fake)
        assert (
            ciperf.main(
                ["--reps", "7", "--markets", "3", "--max-workers", "2"]
            )
            == 0
        )
        assert seen["reps"] == 7
        assert seen["num_markets"] == 3
        assert seen["max_workers"] == 2
