"""Cross-module integration tests: the full SpotWeb pipeline."""

import numpy as np
import pytest

from repro.baselines import ExoSphereLoopPolicy, OnDemandPolicy, QuThresholdPolicy
from repro.core import CostModel, SpotWebController
from repro.core.policy import SpotWebPolicy
from repro.markets import (
    PurchaseOption,
    default_catalog,
    generate_market_dataset,
)
from repro.predictors import (
    AR1PricePredictor,
    ReactiveFailurePredictor,
    SplinePredictor,
)
from repro.simulator import CostSimulator
from repro.workloads import wikipedia_like


@pytest.fixture(scope="module")
def setup():
    catalog = default_catalog()
    markets = catalog.spot_markets(8)
    dataset = generate_market_dataset(markets, intervals=7 * 24, seed=21)
    trace = wikipedia_like(1, seed=21).scaled(20_000.0)
    return markets, dataset, trace


def spotweb_policy(markets, horizon=4):
    n = len(markets)
    controller = SpotWebController(
        markets,
        SplinePredictor(24),
        AR1PricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=horizon,
        cost_model=CostModel(churn_penalty=0.2),
    )
    return SpotWebPolicy(controller)


class TestEndToEnd:
    def test_spotweb_run_is_healthy(self, setup):
        markets, dataset, trace = setup
        sim = CostSimulator(dataset, trace, seed=21)
        report = sim.run(spotweb_policy(markets), name="spotweb")
        assert report.total_cost > 0
        assert report.unserved_fraction < 0.03
        # Capacity tracks demand: never less than demand for most intervals.
        covered = np.mean(report.capacity_rps >= report.demand_rps)
        assert covered > 0.9

    def test_spotweb_beats_exosphere_on_violations(self, setup):
        markets, dataset, trace = setup
        sim = CostSimulator(dataset, trace, seed=21)
        sw = sim.run(spotweb_policy(markets), name="spotweb")
        exo = sim.run(ExoSphereLoopPolicy(markets), name="exo")
        assert sw.unserved_fraction < exo.unserved_fraction

    def test_spot_saves_vs_ondemand(self):
        """The abstract's claim: large savings vs conventional on-demand."""
        catalog = default_catalog()
        # Universe with both purchase options for the first 6 types.
        markets = catalog.all_markets()[:12]
        dataset = generate_market_dataset(markets, intervals=5 * 24, seed=22)
        trace = wikipedia_like(1, seed=22).scaled(20_000.0).window(0, 5 * 24)
        sim = CostSimulator(dataset, trace, seed=22)
        sw = sim.run(spotweb_policy(markets), name="spotweb")
        od = sim.run(OnDemandPolicy(markets), name="ondemand")
        saving = sw.savings_vs(od)
        assert saving > 0.4  # paper: up to 90%

    def test_policies_face_identical_weather(self, setup):
        markets, dataset, trace = setup
        sim = CostSimulator(dataset, trace, seed=5)
        a = sim.run(QuThresholdPolicy(markets, num_markets=4, failure_threshold=1))
        b = sim.run(QuThresholdPolicy(markets, num_markets=4, failure_threshold=1))
        assert a.total_cost == b.total_cost

    def test_diversification_limits_single_market_exposure(self, setup):
        markets, dataset, trace = setup
        from repro.core import AllocationConstraints

        n = len(markets)
        controller = SpotWebController(
            markets,
            SplinePredictor(24),
            AR1PricePredictor(n),
            ReactiveFailurePredictor(n),
            horizon=2,
            constraints=AllocationConstraints(a_market_max=0.4, a_total_max=2.0),
        )
        policy = SpotWebPolicy(controller)
        sim = CostSimulator(dataset, trace, seed=21)
        report = sim.run(policy)
        caps = dataset.capacities
        share = (report.counts * caps[None, :]) / np.maximum(
            (report.counts * caps[None, :]).sum(axis=1, keepdims=True), 1e-9
        )
        # After warm-up, no market carries more than ~max share + rounding.
        assert np.quantile(share[24:].max(axis=1), 0.9) < 0.75


class TestCloudLBIntegration:
    def test_cloud_warning_reaches_balancer(self):
        """TransientCloud warnings wired into the transiency-aware LB."""
        from repro.loadbalancer import TransiencyAwareLoadBalancer
        from repro.markets import TransientCloud
        from repro.simulator import ClusterConfig, ClusterSimulation

        catalog = default_catalog()
        market = catalog.market("m4.xlarge", PurchaseOption.SPOT)
        config = ClusterConfig(seed=0, boot_seconds=2.0, warning_seconds=10.0)
        cluster = ClusterSimulation(
            config, lambda rec: TransiencyAwareLoadBalancer(rec)
        )
        server = cluster.add_server(market.capacity_rps, boot_seconds=0.0)
        cluster.add_server(market.capacity_rps, boot_seconds=0.0)

        cloud = TransientCloud(warning_seconds=10.0)
        vm = cloud.request(market, 1, now=0.0)[0]
        # Bridge: a cloud warning triggers the LB and schedules the kill.
        cloud.on_warning(
            lambda v, t: cluster.revoke(server.server_id, warning_seconds=10.0)
        )
        cluster.sim.schedule(5.0, lambda: cloud.revoke_vm(vm, 5.0))
        rec = cluster.run(30.0, rate=30.0)
        assert not server.alive
        assert rec.drop_rate() < 0.05
