"""Unit tests for the vanilla and transiency-aware balancers.

Uses a scripted fake backend so balancer logic is tested in isolation from
the queueing model.
"""

import pytest

from repro.loadbalancer import TransiencyAwareLoadBalancer, VanillaLoadBalancer
from repro.simulator.metrics import LatencyRecorder


class FakeBackend:
    def __init__(
        self,
        server_id: int,
        capacity_rps: float = 100.0,
        *,
        accepting: bool = True,
        alive: bool = True,
        wait: float = 0.0,
        utilization: float = 0.5,
    ):
        self.server_id = server_id
        self.capacity_rps = capacity_rps
        self._accepting = accepting
        self._alive = alive
        self._wait = wait
        self._util = utilization
        self.submitted: list = []
        self.drained = False

    @property
    def alive(self):
        return self._alive

    @property
    def accepting(self):
        return self._accepting and self._alive and not self.drained

    def submit(self, session_id=None, *, migrated=False, service_scale=1.0):
        if not self._alive or not self._accepting:
            return False
        if self.drained and not migrated:
            return False
        self.submitted.append((session_id, service_scale))
        return True

    def expected_wait(self):
        return self._wait if self.accepting else float("inf")

    def utilization(self):
        return self._util

    def drain(self):
        self.drained = True

    def die(self):
        self._alive = False


@pytest.fixture
def recorder():
    return LatencyRecorder()


class TestVanilla:
    def test_routes_to_registered_backend(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        b = FakeBackend(0)
        lb.add_backend(b)
        assert lb.dispatch(0.0)
        assert len(b.submitted) == 1

    def test_drop_when_empty(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        assert not lb.dispatch(0.0)
        assert recorder.dropped == 1

    def test_sticky_sessions(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        a, b = FakeBackend(0), FakeBackend(1)
        lb.add_backend(a)
        lb.add_backend(b)
        lb.dispatch(0.0, session_id=7)
        first = lb.sessions.backend_of(7)
        for _ in range(5):
            lb.dispatch(0.0, session_id=7)
        assert lb.sessions.backend_of(7) == first
        target = a if first == 0 else b
        assert len(target.submitted) == 6

    def test_keeps_routing_to_dead_until_health_check(self, recorder):
        lb = VanillaLoadBalancer(recorder, health_check_seconds=5.0, retries=0)
        dead = FakeBackend(0)
        dead.die()
        lb.add_backend(dead)
        assert not lb.dispatch(0.0)  # drop: backend dead, not yet detected
        assert 0 in lb.backends
        assert not lb.dispatch(4.0)  # still in rotation
        lb.dispatch(5.1)  # health check fires: removed
        assert 0 not in lb.backends

    def test_retries_other_backends(self, recorder):
        lb = VanillaLoadBalancer(recorder, retries=1)
        bad = FakeBackend(0, accepting=False)
        good = FakeBackend(1)
        lb.add_backend(bad)
        lb.add_backend(good)
        for _ in range(4):
            assert lb.dispatch(0.0)
        assert len(good.submitted) == 4

    def test_ignores_warnings(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        b = FakeBackend(0)
        lb.add_backend(b)
        lb.on_warning(0, 0.0)
        assert not b.drained
        assert 0 in lb.wrr

    def test_set_weights_unknown_backend(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        with pytest.raises(KeyError):
            lb.set_weights({3: 1.0})

    def test_serving_capacity(self, recorder):
        lb = VanillaLoadBalancer(recorder)
        lb.add_backend(FakeBackend(0, 100.0))
        lb.add_backend(FakeBackend(1, 50.0, accepting=False))
        assert lb.serving_capacity() == 100.0


class TestTransiencyAware:
    def test_warning_with_headroom_drains_immediately(self, recorder):
        lb = TransiencyAwareLoadBalancer(recorder)
        doomed = FakeBackend(0, 100.0, utilization=0.5)
        spare = FakeBackend(1, 1000.0, utilization=0.1)
        lb.add_backend(doomed)
        lb.add_backend(spare)
        lb.dispatch(0.0, session_id=1)
        lb.dispatch(0.0, session_id=2)
        lb.on_warning(0, 10.0)
        assert doomed.drained
        assert 0 not in lb.wrr
        # All sessions now point at the survivor.
        assert lb.sessions.sessions_on(1) >= set()
        assert lb.sessions.sessions_on(0) == set()

    def test_warning_without_headroom_defers_and_reprovisions(self, recorder):
        calls = []
        lb = TransiencyAwareLoadBalancer(
            recorder,
            reprovision=lambda cap, now: calls.append((cap, now)),
            drain_grace_seconds=60.0,
        )
        doomed = FakeBackend(0, 100.0, utilization=0.9)
        busy = FakeBackend(1, 100.0, utilization=0.9)
        lb.add_backend(doomed)
        lb.add_backend(busy)
        lb.on_warning(0, 10.0)
        assert not doomed.drained  # keeps serving
        assert calls == [(100.0, 10.0)]
        # Replacement capacity shows up: next dispatch drains the doomed one.
        lb.add_backend(FakeBackend(2, 1000.0, utilization=0.0))
        lb.dispatch(20.0)
        assert doomed.drained

    def test_grace_deadline_forces_drain(self, recorder):
        lb = TransiencyAwareLoadBalancer(
            recorder, reprovision=lambda c, n: None, drain_grace_seconds=30.0
        )
        doomed = FakeBackend(0, 100.0, utilization=0.9)
        busy = FakeBackend(1, 100.0, utilization=0.9)
        lb.add_backend(doomed)
        lb.add_backend(busy)
        lb.on_warning(0, 0.0)
        lb.dispatch(29.0)
        assert not doomed.drained
        lb.dispatch(31.0)
        assert doomed.drained

    def test_admission_control_drops_when_overloaded(self, recorder):
        lb = TransiencyAwareLoadBalancer(recorder, admission_wait_seconds=1.0)
        slow = FakeBackend(0, wait=5.0)
        lb.add_backend(slow)
        assert not lb.dispatch(0.0)
        assert recorder.dropped == 1
        assert len(slow.submitted) == 0  # protected from overload

    def test_migrated_sessions_counted(self, recorder):
        lb = TransiencyAwareLoadBalancer(recorder)
        doomed = FakeBackend(0, utilization=0.2)
        survivor = FakeBackend(1, 1000.0, utilization=0.0)
        lb.add_backend(doomed)
        lb.add_backend(survivor)
        # Pin two sessions to the doomed backend.
        lb.sessions.assign(1, 0)
        lb.sessions.assign(2, 0)
        lb.on_warning(0, 0.0)
        assert lb.migrations == 2
        assert lb.sessions.backend_of(1) == 1
        assert lb.sessions.backend_of(2) == 1

    def test_unknown_backend_warning_ignored(self, recorder):
        lb = TransiencyAwareLoadBalancer(recorder)
        lb.on_warning(42, 0.0)  # no crash

    def test_validation(self, recorder):
        with pytest.raises(ValueError):
            TransiencyAwareLoadBalancer(recorder, headroom_threshold=0.0)
        with pytest.raises(ValueError):
            TransiencyAwareLoadBalancer(recorder, admission_wait_seconds=0.0)
        with pytest.raises(ValueError):
            TransiencyAwareLoadBalancer(recorder, drain_grace_seconds=-1.0)
