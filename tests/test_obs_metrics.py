"""Tests for the repro.obs metrics registry and snapshot determinism."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    set_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        assert c.snapshot() == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("n").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.5)
        g.set(2.5)
        assert g.snapshot() == 2.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in [4.0, 1.0, 3.0, 2.0, 5.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["total"] == 15.0
        assert snap["min"] == 1.0 and snap["max"] == 5.0
        assert snap["p50"] == 3.0
        assert snap["p95"] == pytest.approx(4.8)

    def test_empty_summary(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0 and snap["p95"] == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            Histogram("h").observe(float("nan"))

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(7.0)
        snap = h.snapshot()
        assert snap["p50"] == snap["p95"] == 7.0


class TestRegistry:
    def test_create_on_first_use(self, registry):
        registry.counter("a").inc()
        assert registry.counter("a").snapshot() == 1
        assert len(registry) == 1

    def test_kind_clash_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_sorted_and_deterministic(self):
        def populate(reg):
            reg.counter("z.last").inc(2)
            reg.histogram("m.lat").observe(1.0)
            reg.histogram("m.lat").observe(3.0)
            reg.gauge("a.first").set(0.5)

        r1, r2 = MetricsRegistry(), MetricsRegistry()
        populate(r1)
        populate(r2)
        assert r1.snapshot() == r2.snapshot()
        assert list(r1.snapshot()) == ["a.first", "m.lat", "z.last"]
        # JSON-diffable: identical serialized form, no unstable floats.
        assert json.dumps(r1.snapshot()) == json.dumps(r2.snapshot())

    def test_reset(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_iter_is_sorted(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert list(registry) == ["a", "b"]


class TestGlobalRegistry:
    def test_set_and_reset(self):
        old = set_metrics(MetricsRegistry())
        try:
            get_metrics().counter("t").inc(5)
            assert get_metrics().snapshot() == {"t": 5}
            reset_metrics()
            assert get_metrics().snapshot() == {}
        finally:
            set_metrics(old)

    def test_instrumented_run_populates_expected_metrics(self):
        """A tiny end-to-end sim populates the documented metric names."""
        from repro.experiments.fig6a_constant import run_fig6a

        old = set_metrics(MetricsRegistry())
        try:
            run_fig6a(hours=6, horizons=(2,))
            snap = get_metrics().snapshot()
        finally:
            set_metrics(old)
        for name in (
            "controller.steps",
            "controller.solve_ms",
            "mpo.solves",
            "sim.intervals",
        ):
            assert name in snap, f"missing metric {name}"
        assert snap["sim.intervals"] == 12  # 6 hours x 2 policies
        assert snap["controller.solve_ms"]["count"] == snap["controller.steps"]

    def test_identical_runs_snapshot_identically(self):
        """Event-derived metrics are bitwise reproducible across runs.

        Latency histograms (``*_ms``) measure the wall clock and are the
        one intentionally nondeterministic family: compare their sample
        counts, and everything else exactly.
        """
        from repro.experiments.fig6a_constant import run_fig6a

        snaps = []
        for _ in range(2):
            old = set_metrics(MetricsRegistry())
            try:
                run_fig6a(hours=4, horizons=(2,))
                snaps.append(get_metrics().snapshot())
            finally:
                set_metrics(old)

        def normalize(snap):
            return {
                name: value["count"] if name.endswith("_ms") else value
                for name, value in snap.items()
            }

        assert normalize(snaps[0]) == normalize(snaps[1])


class TestPrometheusExport:
    """Exporter edge cases: registry-typed kinds, mangling, atomic write."""

    def test_registry_types_beat_value_inference(self, registry):
        from repro.obs import prometheus_text

        # An int-valued gauge would be mis-inferred as a counter from a
        # bare snapshot dict; the registry knows its class.
        registry.gauge("fleet.size").set(4)
        text = prometheus_text(registry)
        assert "# TYPE spotweb_fleet_size gauge" in text
        assert "spotweb_fleet_size 4" in text
        assert "_total" not in text

    def test_counters_get_total_suffix_and_help(self, registry):
        from repro.obs import prometheus_text

        registry.counter("des.events").inc(3)
        text = prometheus_text(registry)
        assert "# HELP spotweb_des_events_total SpotWeb counter des.events" in text
        assert "# TYPE spotweb_des_events_total counter" in text
        assert "spotweb_des_events_total 3" in text

    def test_empty_registry_exports_empty(self, registry):
        from repro.obs import prometheus_text

        assert prometheus_text(registry) == ""
        assert prometheus_text(registry, openmetrics=True) == ""

    def test_zero_count_histogram_exports_zeroes(self, registry):
        from repro.obs import prometheus_text

        registry.histogram("solve.lat")
        text = prometheus_text(registry)
        assert "# TYPE spotweb_solve_lat summary" in text
        assert "spotweb_solve_lat_count 0" in text
        assert "spotweb_solve_lat_sum 0.0" in text

    def test_name_mangling_collisions_deduped(self, registry):
        from repro.obs import prometheus_text

        # Both mangle to spotweb_lb_spare_rps; dedupe must keep them
        # distinct instead of exporting one family twice.  Sorted name
        # order decides who keeps the bare name ("-" sorts before ".").
        registry.gauge("lb.spare.rps").set(1.0)
        registry.gauge("lb.spare-rps").set(2.0)
        text = prometheus_text(registry)
        assert "spotweb_lb_spare_rps 2.0" in text
        assert "spotweb_lb_spare_rps_2 1.0" in text

    def test_bool_snapshot_value_rejected(self):
        from repro.obs import prometheus_text

        with pytest.raises(TypeError, match="non-metric value True"):
            prometheus_text({"flag": True})

    def test_openmetrics_terminates_with_eof(self, registry):
        from repro.obs import prometheus_text

        registry.counter("a").inc()
        text = prometheus_text(registry, openmetrics=True)
        assert text.endswith("# EOF\n")
        assert not prometheus_text(registry).endswith("# EOF\n")

    def test_write_prometheus_is_atomic(self, tmp_path, registry):
        from repro.obs import write_prometheus

        registry.counter("a").inc()
        path = tmp_path / "metrics.prom"
        out = write_prometheus(path, registry)
        assert out == path
        assert "spotweb_a_total 1" in path.read_text()
        # The temp file was renamed away, never left beside the target.
        assert list(tmp_path.iterdir()) == [path]

    def test_write_prometheus_defaults_to_global_registry(self, tmp_path):
        from repro.obs import write_prometheus

        old = set_metrics(MetricsRegistry())
        try:
            get_metrics().counter("g").inc(2)
            path = write_prometheus(tmp_path / "m.prom")
        finally:
            set_metrics(old)
        assert "spotweb_g_total 2" in path.read_text()
