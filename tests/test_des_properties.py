"""Property-based tests for the DES engine and request conservation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simulator import ClusterConfig, ClusterSimulation, Simulator


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
)
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired: list[float] = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
    cancel_idx=st.integers(0, 29),
)
def test_cancelled_events_never_fire(delays, cancel_idx):
    sim = Simulator()
    fired: list[int] = []
    events = [
        sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
    ]
    cancel_idx = cancel_idx % len(events)
    events[cancel_idx].cancel()
    sim.run()
    assert cancel_idx not in fired
    assert len(fired) == len(delays) - 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), rate=st.floats(5.0, 60.0))
def test_request_conservation(seed, rate):
    """Every arrival terminates as served, dropped, or still in flight."""
    config = ClusterConfig(
        seed=seed, boot_seconds=0.0, warmup_seconds=0.0, cold_multiplier=1.0
    )
    cluster = ClusterSimulation(config)
    cluster.add_server(50.0, boot_seconds=0.0)
    rec = cluster.run(20.0, rate=rate)
    in_flight = sum(s.in_flight for s in cluster.servers.values())
    arrivals = rec.served + rec.dropped + rec.failed + in_flight
    # Poisson(rate * 20) arrivals, all accounted for.
    assert arrivals >= 1
    expected = rate * 20.0
    sigma = np.sqrt(expected)
    assert abs(arrivals - expected) < 6 * sigma + 5
