"""Long-running request class tests — the end-to-end face of Eq. 4's L."""

import pytest

from repro.loadbalancer import TransiencyAwareLoadBalancer
from repro.simulator import ClusterConfig, ClusterSimulation


def make_cluster(long_fraction, *, seed=0):
    config = ClusterConfig(
        seed=seed,
        boot_seconds=0.0,
        warmup_seconds=0.0,
        cold_multiplier=1.0,
        warning_seconds=5.0,
        long_request_fraction=long_fraction,
        long_service_scale=200.0,  # 0.1 s base -> ~20 s: exceeds the warning
        queue_limit_seconds=30.0,
    )
    cluster = ClusterSimulation(
        config, lambda rec: TransiencyAwareLoadBalancer(rec)
    )
    return cluster


class TestLongRequests:
    def test_long_requests_slow_the_tail(self):
        short = make_cluster(0.0)
        short.add_server(200.0, boot_seconds=0.0)
        rec_s = short.run(60.0, rate=50.0)

        mixed = make_cluster(0.05)
        mixed.add_server(200.0, boot_seconds=0.0)
        rec_m = mixed.run(60.0, rate=50.0)
        assert rec_m.percentile(99) > rec_s.percentile(99)

    def test_revocation_fails_inflight_long_requests(self):
        """With L > 0, even the transiency-aware balancer loses the
        long-running requests caught in flight on a revoked server."""
        cluster = make_cluster(0.3, seed=1)
        a = cluster.add_server(100.0, boot_seconds=0.0)
        cluster.add_server(100.0, boot_seconds=0.0)
        cluster.schedule_revocation(a.server_id, 20.0, warning_seconds=5.0)
        rec = cluster.run(60.0, rate=60.0)
        # Some in-flight (necessarily long, ~20 s >> 5 s warning) requests die.
        assert rec.failed > 0

    def test_pure_short_requests_survive_revocation(self):
        cluster = make_cluster(0.0, seed=1)
        a = cluster.add_server(100.0, boot_seconds=0.0)
        cluster.add_server(100.0, boot_seconds=0.0)
        cluster.schedule_revocation(a.server_id, 20.0, warning_seconds=5.0)
        rec = cluster.run(60.0, rate=60.0)
        # Short requests (0.1 s << 5 s warning) drain cleanly.
        assert rec.failed <= 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(long_request_fraction=1.5)
        with pytest.raises(ValueError):
            ClusterConfig(long_service_scale=0.5)

    def test_server_rejects_bad_scale(self):
        from repro.simulator import LatencyRecorder, SimServer, Simulator

        sim = Simulator()
        server = SimServer(
            sim, LatencyRecorder(), server_id=0, capacity_rps=10.0,
            boot_seconds=0.0,
        )
        with pytest.raises(ValueError):
            server.submit(service_scale=0.0)
