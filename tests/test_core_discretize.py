"""Unit and property tests for integer-count refinement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import allocation_to_counts, refine_counts


class TestRefineCounts:
    def test_covers_target(self):
        counts = refine_counts(
            np.array([0.5, 0.5]), 300.0, np.array([100.0, 100.0]), np.ones(2)
        )
        assert counts @ np.array([100.0, 100.0]) >= 300.0

    def test_never_more_expensive_than_ceil(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(2, 10))
            fractions = rng.uniform(0, 0.5, size=n)
            fractions *= rng.uniform(1.0, 1.5) / max(fractions.sum(), 1e-9)
            caps = rng.uniform(20, 2000, size=n)
            prices = rng.uniform(0.01, 5.0, size=n)
            target = float(rng.uniform(100, 50_000))
            naive = allocation_to_counts(fractions, target, caps)
            refined = refine_counts(fractions, target, caps, prices)
            assert refined @ caps >= target - 1e-6
            assert refined @ prices <= naive @ prices + 1e-9

    def test_zero_target(self):
        counts = refine_counts(np.array([1.0]), 0.0, np.array([10.0]), np.ones(1))
        assert counts[0] == 0

    def test_repairs_with_cheapest_market(self):
        # Fractions cover nothing; the repair should pick the cheap market.
        counts = refine_counts(
            np.zeros(2), 100.0, np.array([100.0, 100.0]), np.array([5.0, 1.0])
        )
        np.testing.assert_array_equal(counts, [0, 1])

    def test_trims_expensive_waste(self):
        # Implied counts massively overshoot in the pricey market.
        counts = refine_counts(
            np.array([2.0, 1.0]),
            100.0,
            np.array([100.0, 100.0]),
            np.array([10.0, 1.0]),
        )
        # One cheap server suffices.
        assert counts[0] == 0
        assert counts[1] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            refine_counts(np.ones(2), 10.0, np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            refine_counts(np.ones(1), -1.0, np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            refine_counts(np.ones(1), 1.0, np.zeros(1), np.ones(1))
        with pytest.raises(ValueError):
            refine_counts(np.ones(1), 1.0, np.ones(1), -np.ones(1))


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    target=st.floats(1.0, 1e5),
)
def test_refine_always_covers_and_is_minimal_ish(seed, target):
    """Coverage invariant + no single removable server remains."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 8))
    fractions = rng.uniform(0, 1, size=n)
    caps = rng.uniform(10, 2000, size=n)
    prices = rng.uniform(0.01, 10.0, size=n)
    counts = refine_counts(fractions, target, caps, prices)
    deployed = counts @ caps
    assert deployed >= target - 1e-6
    # Minimality: no server can be removed without breaking coverage.
    for j in range(n):
        if counts[j] > 0:
            assert deployed - caps[j] < target


class TestControllerIntegration:
    def test_refine_mode_cheaper_or_equal(self, small_markets, small_dataset, wiki_week):
        from repro.core import CostModel, SpotWebController
        from repro.core.policy import SpotWebPolicy
        from repro.predictors import (
            ReactiveFailurePredictor,
            ReactivePricePredictor,
            SplinePredictor,
        )
        from repro.simulator import CostSimulator

        def build(mode):
            return SpotWebPolicy(
                SpotWebController(
                    small_markets,
                    SplinePredictor(24),
                    ReactivePricePredictor(6),
                    ReactiveFailurePredictor(6),
                    horizon=3,
                    cost_model=CostModel(churn_penalty=0.2),
                    discretization=mode,
                )
            )

        sim = CostSimulator(small_dataset, wiki_week, seed=9)
        ceil_rep = sim.run(build("ceil"), name="ceil")
        refine_rep = sim.run(build("refine"), name="refine")
        # Refined discretization must not serve less...
        assert refine_rep.unserved_fraction <= ceil_rep.unserved_fraction + 0.01
        # ...and should not cost meaningfully more.
        assert refine_rep.provisioning_cost <= ceil_rep.provisioning_cost * 1.05

    def test_invalid_mode_rejected(self, small_markets):
        from repro.core import SpotWebController
        from repro.predictors import (
            ReactiveFailurePredictor,
            ReactivePredictor,
            ReactivePricePredictor,
        )

        with pytest.raises(ValueError, match="discretization"):
            SpotWebController(
                small_markets,
                ReactivePredictor(),
                ReactivePricePredictor(6),
                ReactiveFailurePredictor(6),
                discretization="round",
            )
