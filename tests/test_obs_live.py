"""Tests for the streaming telemetry bus and its sinks."""

import json
import urllib.request

import pytest

from repro.obs import (
    TELEMETRY_SCHEMA,
    DeltaWriter,
    EventLog,
    MetricsRegistry,
    MetricsServer,
    PromFileWriter,
    SLOEngine,
    TelemetryBus,
    delta_line,
    get_events,
    get_metrics,
    set_events,
    set_metrics,
)


@pytest.fixture
def global_log():
    """Install a fresh enabled global event log; restore the old after."""
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


@pytest.fixture
def global_registry():
    """Install a fresh global metrics registry; restore the old after."""
    old = set_metrics(MetricsRegistry())
    yield get_metrics()
    set_metrics(old)


def collect(bus):
    """Subscribe a list-appending sink; returns the list."""
    deltas = []
    bus.subscribe(deltas.append)
    return deltas


class TestTelemetryBus:
    def test_disabled_tick_publishes_nothing(self, global_log):
        bus = TelemetryBus(enabled=False)
        deltas = collect(bus)
        global_log.emit("warning.issued", t=1.0)
        bus.tick(1.0, 0)
        assert deltas == []

    def test_frame_order_and_seq(self, global_log, global_registry):
        bus = TelemetryBus(enabled=True)
        deltas = collect(bus)
        global_registry.counter("sim.intervals").inc()
        global_log.emit("warning.issued", t=5.0, event_id="w1")
        global_log.emit(
            "slo.interval",
            t=30.0,
            interval=0,
            requests=10,
            compliance=0.9,
            burn=10.0,
            p50=0.1,
            p95=0.2,
            p99=0.3,
        )
        bus.tick(30.0, 0)
        assert [d["type"] for d in deltas] == [
            "events",
            "slo",
            "metrics",
            "tick",
        ]
        assert [d["seq"] for d in deltas] == [0, 1, 2, 3]
        assert all(d["t"] == 30.0 and d["interval"] == 0 for d in deltas)
        assert len(deltas[0]["events"]) == 2
        point = deltas[1]["points"][0]
        assert point == {
            "interval": 0,
            "t": 30.0,
            "requests": 10,
            "compliance": 0.9,
            "burn": 10.0,
            "p50": 0.1,
            "p95": 0.2,
            "p99": 0.3,
        }
        assert deltas[2]["changed"] == {"sim.intervals": 1}

    def test_quiet_tick_is_only_a_frame_marker(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        deltas = collect(bus)
        bus.tick(1.0)
        assert [d["type"] for d in deltas] == ["tick"]
        assert deltas[0]["interval"] is None

    def test_metrics_delta_is_incremental(self, global_log, global_registry):
        bus = TelemetryBus(enabled=True)
        deltas = collect(bus)
        global_registry.counter("a").inc()
        global_registry.counter("b").inc()
        bus.tick(1.0)
        global_registry.counter("b").inc()
        bus.tick(2.0)
        metrics = [d for d in deltas if d["type"] == "metrics"]
        assert metrics[0]["changed"] == {"a": 1, "b": 1}
        assert metrics[1]["changed"] == {"b": 2}

    def test_wall_clock_histograms_collapse_to_count(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        deltas = collect(bus)
        global_registry.histogram("controller.solve_ms").observe(12.34)
        bus.tick(1.0)
        (metrics,) = [d for d in deltas if d["type"] == "metrics"]
        assert metrics["changed"]["controller.solve_ms"] == {"count": 1}

    def test_publish_metrics_off_drops_metrics_deltas(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        deltas = collect(bus)
        global_registry.counter("a").inc()
        bus.tick(1.0)
        assert [d["type"] for d in deltas] == ["tick"]

    def test_event_cursor_survives_log_swap(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        deltas = collect(bus)
        global_log.emit("warning.issued", t=1.0)
        bus.tick(1.0)
        # A swapped journal object restarts the cursor at zero instead
        # of silently dropping the new log's head — even when the new
        # log has already grown past the old cursor.
        set_events(EventLog(enabled=True))
        get_events().emit("warning.resolved", t=2.0)
        bus.tick(2.0)
        # A cleared (same-object) journal is caught by the shrunk count.
        get_events().clear()
        bus.tick(3.0)
        get_events().emit("warning.issued", t=4.0)
        bus.tick(4.0)
        events = [d for d in deltas if d["type"] == "events"]
        assert [e["events"][0]["kind"] for e in events] == [
            "warning.issued",
            "warning.resolved",
            "warning.issued",
        ]

    def test_subscribers_see_deltas_in_subscription_order(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        order = []
        bus.subscribe(lambda d: order.append("first"))
        bus.subscribe(lambda d: order.append("second"))
        bus.tick(1.0)
        assert order == ["first", "second"]
        bus.unsubscribe(bus._subscribers[0])
        bus.tick(2.0)
        assert order == ["first", "second", "second"]


class TestByteIdenticalStream:
    def _run_stream(self) -> str:
        """One deterministic SLO-driven run captured as a delta stream."""
        old_log = set_events(EventLog(enabled=True))
        old_registry = set_metrics(MetricsRegistry())
        from repro.obs import get_bus, set_bus

        bus = TelemetryBus(enabled=True)
        old_bus = set_bus(bus)
        writer = bus.subscribe(DeltaWriter())
        try:
            engine = SLOEngine(interval_seconds=30.0, slo_threshold=0.5)
            for i in range(600):
                t = i * 0.5
                engine.record(t, 0.1 if (i // 120) % 2 == 0 else 0.9)
            engine.finish(300.0)
        finally:
            set_bus(old_bus)
            set_events(old_log)
            set_metrics(old_registry)
        return writer.text()

    def test_identical_runs_identical_bytes(self):
        assert self._run_stream() == self._run_stream()

    def test_stream_is_schema_tagged_jsonl(self, tmp_path):
        old_log = set_events(EventLog(enabled=True))
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        writer = bus.subscribe(DeltaWriter())
        try:
            get_events().emit("warning.issued", t=1.0)
            bus.tick(1.0, 0)
        finally:
            set_events(old_log)
        path = writer.write(tmp_path / "deltas.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"schema": TELEMETRY_SCHEMA, "kind": "header"}
        for line in lines[1:]:
            delta = json.loads(line)
            assert delta_line(delta) == line


class TestPromFileWriter:
    def test_refreshes_atomically_on_tick(
        self, tmp_path, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        path = tmp_path / "metrics.prom"
        bus.subscribe(PromFileWriter(path))
        global_registry.counter("sim.intervals").inc()
        bus.tick(1.0)
        first = path.read_text()
        assert "spotweb_sim_intervals_total 1" in first
        global_registry.counter("sim.intervals").inc()
        bus.tick(2.0)
        assert "spotweb_sim_intervals_total 2" in path.read_text()
        # Atomic replace leaves no temp file behind.
        assert list(tmp_path.iterdir()) == [path]


class TestMetricsServer:
    def test_scrape_serves_openmetrics(self, global_registry):
        global_registry.counter("des.events").inc(7)
        server = MetricsServer(0).start()
        try:
            body = (
                urllib.request.urlopen(server.url, timeout=5).read().decode()
            )
        finally:
            server.stop()
        assert "spotweb_des_events_total 7" in body
        assert body.endswith("# EOF\n")

    def test_refreshes_on_tick_and_404s_elsewhere(
        self, global_log, global_registry
    ):
        bus = TelemetryBus(enabled=True)
        server = bus.subscribe(MetricsServer(0).start())
        try:
            global_registry.counter("des.events").inc()
            bus.tick(1.0)
            body = (
                urllib.request.urlopen(server.url, timeout=5).read().decode()
            )
            assert "spotweb_des_events_total 1" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope", timeout=5
                )
        finally:
            server.stop()

    def test_empty_registry_serves_eof_only(self):
        server = MetricsServer(0, registry=MetricsRegistry()).start()
        try:
            body = (
                urllib.request.urlopen(server.url, timeout=5).read().decode()
            )
        finally:
            server.stop()
        assert body == "# EOF\n"
