"""Tests for the two-tier hybrid engine: fluid tier, handoffs, accuracy."""

import numpy as np
import pytest

from repro import obs
from repro.obs.events import validate_events
from repro.simulator import (
    ClusterConfig,
    FluidEngine,
    HybridClusterSimulation,
)
from repro.simulator.fluid import (
    QUANTILE_EDGES,
    response_nodes,
    split_offered,
    stochastic_wait,
    warm_multiplier,
)
from repro.simulator.hybrid import (
    ENGINES,
    TIER_FLUID,
    TIER_REQUEST,
    HybridConfig,
)


def build(engine="hybrid", *, servers=4, capacity=100.0, seed=0, **hybrid_kw):
    config = ClusterConfig(seed=seed)
    cluster = HybridClusterSimulation(
        config,
        engine=engine,
        hybrid=HybridConfig(settle_seconds=5.0, **hybrid_kw),
        keep_raw=True,
    )
    for _ in range(servers):
        cluster.add_server(capacity, boot_seconds=0.0)
    for server in cluster.servers.values():
        server.serving_since = -config.warmup_seconds
    return cluster


class TestFluidHelpers:
    def test_warm_multiplier_decays_to_one(self):
        since = np.array([0.0, 0.0, 100.0])
        warm = np.array([60.0, 60.0, 60.0])
        cold = np.array([2.0, 2.0, 2.0])
        early = warm_multiplier(0.0, since, warm, cold)
        late = warm_multiplier(120.0, since, warm, cold)
        assert early[0] == pytest.approx(2.0)
        assert late[0] == pytest.approx(1.0)
        # Not-yet-serving rows report the full cold multiplier.
        assert early[2] == pytest.approx(2.0)

    def test_split_offered_proportional(self):
        out = split_offered(100.0, np.array([1.0, 3.0]))
        assert out == pytest.approx([25.0, 75.0])
        assert split_offered(10.0, np.zeros(2)).sum() == 0.0

    def test_stochastic_wait_monotone_in_rho(self):
        svc = np.full(3, 0.1)
        k = np.full(3, 4.0)
        w = stochastic_wait(np.array([0.2, 0.6, 0.95]), svc, k)
        assert w[0] < w[1] < w[2]
        # Saturated rho stays finite via the clip.
        assert np.isfinite(
            stochastic_wait(np.array([2.0]), svc[:1], k[:1])
        ).all()

    def test_response_nodes_shape_and_order(self):
        nodes = response_nodes(np.array([0.5]), np.array([0.1]))
        assert nodes.shape == (1, QUANTILE_EDGES.size - 1)
        assert (np.diff(nodes[0]) > 0).all()
        assert nodes[0, 0] > 0.5


class TestFluidEngineConservation:
    def run_steps(self, cluster, steps=50, rate=300.0):
        fluid = FluidEngine()
        for k in range(steps):
            fluid.sync(cluster.servers, float(k))
            fluid.step(float(k), 1.0, rate)
        return fluid

    def test_ledger_balances(self):
        fluid = self.run_steps(build())
        assert fluid.balance_error() < 1e-6

    def test_withdraw_deposit_round_trip(self):
        cluster = build()
        fluid = self.run_steps(cluster, rate=380.0)
        before = fluid.total_mass()
        counts = fluid.withdraw()
        moved = sum(counts.values())
        assert moved == int(sum(int(v) for v in counts.values()))
        # Residuals below one request stay fluid.
        assert fluid.total_mass() == pytest.approx(before - moved)
        for sid, n in counts.items():
            fluid.deposit(sid, n)
        assert fluid.total_mass() == pytest.approx(before)
        assert fluid.balance_error() < 1e-6

    def test_dead_server_mass_reported_failed(self):
        cluster = build()
        fluid = self.run_steps(cluster, rate=380.0)
        victim = cluster.servers[0]
        victim.kill()
        failed = fluid.sync(cluster.servers, 100.0)
        assert failed >= 0.0
        assert 0 not in fluid._mass
        assert fluid.balance_error() < 1e-6

    def test_steady_state_mass_tracks_littles_law(self):
        # Below saturation the persistent mass must approximate
        # rate * response_time (in-system work), not drain to zero —
        # materialization depends on it.
        cluster = build()
        fluid = self.run_steps(cluster, steps=100, rate=300.0)
        mass = fluid.total_mass()
        assert 300.0 * 0.05 < mass < 300.0 * 1.0


class TestHandoffs:
    def test_materialize_absorb_conserves_work(self):
        cluster = build()
        cluster.schedule_revocation(1, 30.0, warning_seconds=5.0)
        cluster.run(90.0, 300.0)
        assert cluster.tier_switches >= 2
        assert cluster.tier_steps[TIER_FLUID] > 0
        assert cluster.tier_steps[TIER_REQUEST] > 0
        assert cluster.fluid.balance_error() < 1e-6

    def test_materialize_gives_balancer_real_utilization(self):
        # The drain-vs-defer decision reads utilization; a fluid->request
        # handoff must leave the doomed servers visibly busy.
        cluster = build(servers=4)
        cluster.sim.advance(20.0)
        cluster.fluid.sync(cluster.servers, cluster.sim.now)
        for k in range(30):
            cluster.fluid.sync(cluster.servers, cluster.sim.now)
            cluster.fluid.step(cluster.sim.now, 1.0, 360.0)
            cluster.sim.advance(cluster.sim.now + 1.0)
        cluster._tier = TIER_FLUID
        cluster._switch_tier(TIER_REQUEST, cluster.sim.now)
        in_flight = sum(s.in_flight for s in cluster.servers.values())
        assert in_flight > 0

    def test_absorb_requires_tracking(self):
        from repro.simulator import ClusterSimulation

        plain = ClusterSimulation(ClusterConfig(seed=0))
        server = plain.add_server(100.0, boot_seconds=0.0)
        with pytest.raises(RuntimeError):
            server.absorb()


class TestEngines:
    def test_engine_validation(self):
        with pytest.raises(ValueError):
            HybridClusterSimulation(ClusterConfig(), engine="warp")
        assert set(ENGINES) == {"hybrid", "request", "fluid"}

    def test_hybrid_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(interval_seconds=0.0)
        with pytest.raises(ValueError):
            HybridConfig(settle_seconds=-1.0)
        with pytest.raises(ValueError):
            HybridConfig(overload_utilization=1.5)

    def test_full_window_hybrid_is_bitwise_request(self):
        # With a fidelity window covering the whole run, the hybrid engine
        # must reproduce the request-level engine exactly, sample by sample.
        request = build("request")
        request.run(60.0, 300.0)
        hybrid = build("hybrid")
        hybrid._open_window(float("inf"), cause=None, trigger="start")
        hybrid.run(60.0, 300.0)
        assert request.recorder.served == hybrid.recorder.served
        assert request.recorder.latencies == hybrid.recorder.latencies
        assert request.recorder.timestamps == hybrid.recorder.timestamps

    def test_fluid_engine_runs_without_requests(self):
        cluster = build("fluid")
        rec = cluster.run(60.0, 300.0)
        assert cluster.tier_steps[TIER_REQUEST] == 0
        assert rec.served > 0
        assert rec.drop_rate() < 0.05

    def test_quantile_accuracy_on_quick_grid(self):
        # Digest-quantile tolerance: hybrid P99 within 25% of the pure
        # request-level reference on a small steady scenario.
        request = build("request", servers=4)
        request.run(120.0, 300.0)
        hybrid = build("hybrid", servers=4)
        hybrid.run(120.0, 300.0)
        p99_r = request.recorder.percentile(99)
        p99_h = hybrid.recorder.percentile(99)
        assert abs(p99_h - p99_r) / p99_r < 0.25

    def test_rate_spike_opens_window(self):
        cluster = build("hybrid", spike_threshold=0.3)

        def rate(t):
            return 900.0 if t > 30.0 else 300.0

        cluster.run(60.0, rate)
        assert cluster.tier_steps[TIER_REQUEST] > 0

    def test_in_system_accounts_both_tiers(self):
        cluster = build("hybrid")
        cluster.run(45.0, 300.0)
        total = cluster.in_system()
        assert total >= 0.0
        assert total == pytest.approx(
            cluster.fluid.total_mass()
            + sum(s.in_flight for s in cluster.servers.values())
        )


class TestTierSwitchEvents:
    def run_evented(self):
        obs.enable_events()
        obs.get_events().clear()
        try:
            cluster = build("hybrid")
            cluster.schedule_revocation(2, 30.0, warning_seconds=5.0)
            cluster.run(90.0, 300.0)
            return obs.get_events().records()
        finally:
            obs.disable_events()

    def test_tier_switch_events_validate_and_link(self):
        records = self.run_evented()
        validate_events(records)
        switches = [r for r in records if r["kind"] == "sim.tier_switch"]
        assert switches, "hybrid run with a revocation must switch tiers"
        warning_ids = {
            r["id"] for r in records if r["kind"] == "warning.issued"
        }
        warn_switch = [
            s for s in switches if s["attrs"]["trigger"] == "warning"
        ]
        assert warn_switch
        assert all(s["cause"] in warning_ids for s in warn_switch)
        request_entries = [
            s for s in switches if s["attrs"]["tier"] == TIER_REQUEST
        ]
        assert request_entries

    def test_journal_deterministic_across_reruns(self):
        a = self.run_evented()
        b = self.run_evented()
        strip = lambda recs: [  # noqa: E731
            {k: v for k, v in r.items() if k != "wall"} for r in recs
        ]
        assert strip(a) == strip(b)
