"""Tests for the runtime contract layer (shapes, nonneg, units, freezing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools.contracts import (
    ContractError,
    UnitScalar,
    contracts_enabled,
    field_units,
    freeze_arrays,
    nonneg,
    per_request_prices,
    require_unit,
    rps,
    set_contracts,
    shapes,
    units,
    usd_per_hour,
    usd_per_hour_per_rps,
)


@pytest.fixture(autouse=True)
def _contracts_on():
    prev = set_contracts(True)
    yield
    set_contracts(prev)


# ------------------------------------------------------------------- shapes
def test_shapes_accepts_consistent_bindings():
    @shapes("(H,N)", "(N,)")
    def f(plan, prices):
        return plan @ prices

    plan = np.ones((4, 3))
    assert f(plan, np.ones(3)).shape == (4,)


def test_shapes_rejects_symbol_mismatch():
    @shapes("(H,N)", "(N,)")
    def f(plan, prices):
        return plan @ prices

    with pytest.raises(ContractError, match="prices"):
        f(np.ones((4, 3)), np.ones(5))


def test_shapes_rejects_wrong_ndim():
    @shapes("(N,)")
    def f(v):
        return v

    with pytest.raises(ContractError):
        f(np.ones((2, 2)))


def test_shapes_alternatives_allow_scalar_or_vector():
    @shapes("()|(H,)")
    def f(target):
        return target

    f(3.5)
    f(np.ones(4))
    with pytest.raises(ContractError):
        f(np.ones((2, 2)))


def test_shapes_fixed_and_wildcard_dims():
    @shapes("(2,*)")
    def f(pair):
        return pair

    f(np.ones((2, 7)))
    with pytest.raises(ContractError):
        f(np.ones((3, 7)))


def test_shapes_skips_none_values_and_star_specs():
    @shapes("(N,)", "*", extra="(N,)")
    def f(v, anything, extra=None):
        return v

    f(np.ones(3), {"not": "an array"})
    f(np.ones(3), 0, extra=np.ones(3))
    with pytest.raises(ContractError):
        f(np.ones(3), 0, extra=np.ones(4))


def test_shapes_checks_return_value():
    @shapes("(N,)", ret="(N,)")
    def good(v):
        return v * 2

    @shapes("(N,)", ret="(N,)")
    def bad(v):
        return np.outer(v, v)

    good(np.ones(3))
    with pytest.raises(ContractError, match="<return>"):
        bad(np.ones(3))


def test_shapes_is_a_noop_when_disabled():
    @shapes("(N,)")
    def f(v):
        return "ran"

    set_contracts(False)
    assert not contracts_enabled()
    assert f(np.ones((2, 2))) == "ran"


def test_shapes_rejects_specs_for_unknown_params_at_decoration():
    with pytest.raises(ValueError, match="unknown"):

        @shapes(typo="(N,)")
        def f(v):
            return v


def test_shapes_methods_skip_self():
    class Hub:
        @shapes("(N,)")
        def ingest(self, prices):
            return prices.sum()

    assert Hub().ingest(np.ones(3)) == 3.0
    with pytest.raises(ContractError):
        Hub().ingest(np.ones((3, 1)))


def test_shapes_scalar_spec_accepts_0d_inputs():
    @shapes("()")
    def f(target):
        return target

    f(3.5)  # plain Python number
    f(np.float64(2.0))  # NumPy scalar
    f(np.array(1.25))  # genuine 0-d array
    with pytest.raises(ContractError):
        f(np.ones(1))  # (1,) is not ()


def test_shapes_dtype_suffix_enforced_exactly():
    @shapes("(N,) f8")
    def f(prices):
        return prices

    f(np.ones(3))
    with pytest.raises(ContractError, match="float64"):
        f(np.ones(3, dtype=np.float32))
    with pytest.raises(ContractError, match="f8"):
        f(np.arange(3))  # int64 is not "anything numeric"


def test_shapes_alternatives_may_differ_in_dtype():
    @shapes("(N,) f8|(N,) i8")
    def f(v):
        return v

    f(np.ones(3))
    f(np.arange(3))
    with pytest.raises(ContractError):
        f(np.ones(3, dtype=np.float32))


def test_shapes_binding_conflict_across_parameters():
    # N binds on the *first* parameter; every later use must agree even
    # when each shape is individually plausible.
    @shapes("(N,)", "(N,)", "(N,N)")
    def f(a, b, c):
        return a

    f(np.ones(3), np.ones(3), np.ones((3, 3)))
    with pytest.raises(ContractError, match="'b'"):
        f(np.ones(3), np.ones(4), np.ones((3, 3)))
    with pytest.raises(ContractError, match="'c'"):
        f(np.ones(3), np.ones(3), np.ones((3, 4)))


def test_shapes_rejects_bad_dtype_suffix_at_decoration():
    with pytest.raises(ValueError, match="f16"):

        @shapes("(N,) f16")
        def f(v):
            return v


def test_declared_contracts_roundtrip_to_static_summaries(tmp_path):
    # The same decorator text the runtime checker enforces must parse
    # into spotshape's interprocedural summary table unchanged.
    from repro.devtools.shape.summaries import extract_summaries
    from repro.devtools.specs import format_spec, parse_spec

    source = (
        "from repro.devtools.contracts import shapes\n\n\n"
        '@shapes("(H,N)", "(N,) f8", ret="(H,)")\n'
        "def project(plan, prices):\n"
        "    return plan @ prices\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(source)
    (summary,) = extract_summaries(source, path).summaries
    assert summary.args == ("plan", "prices")
    assert dict(summary.params) == {"plan": "(H,N)", "prices": "(N,) f8"}
    assert summary.ret == "(H,)"
    # Both consumers parse each spec to the identical canonical form.
    for spec in [*dict(summary.params).values(), summary.ret]:
        assert format_spec(parse_spec(spec)) == spec


# ------------------------------------------------------------------- nonneg
def test_nonneg_arrays_scalars_and_mappings():
    @nonneg("fractions", "rate", "weights")
    def f(fractions, rate, weights):
        return True

    assert f(np.ones(3), 2.0, {"a": 0.5, "b": 0.0})
    with pytest.raises(ContractError, match="fractions"):
        f(np.array([0.2, -0.3]), 2.0, {})
    with pytest.raises(ContractError, match="rate"):
        f(np.ones(3), -1.0, {})
    with pytest.raises(ContractError, match="weights"):
        f(np.ones(3), 1.0, {"a": -0.5})


def test_nonneg_tolerates_solver_jitter_and_none():
    @nonneg("v")
    def f(v=None):
        return True

    assert f(np.array([0.0, -1e-12]))
    assert f(None)


# ----------------------------------------------------------------- freezing
def test_freeze_arrays_makes_fields_readonly():
    class Box:
        def __init__(self, data):
            self.data = data

    box = Box([1.0, 2.0])
    freeze_arrays(box, "data")
    assert isinstance(box.data, np.ndarray)
    with pytest.raises(ValueError):
        box.data[0] = 9.0


# -------------------------------------------------------------------- units
def test_unit_scalars_tag_and_check():
    price = usd_per_hour(0.123)
    assert float(price) == pytest.approx(0.123)
    assert price.unit == "usd/(server*hr)"
    assert require_unit(price, "usd/(server*hr)") == pytest.approx(0.123)
    # Equivalence is grammatical, not string equality.
    assert require_unit(price, "usd/hr/server") == pytest.approx(0.123)
    with pytest.raises(ContractError):
        require_unit(price, "usd/(rps*hr)")
    # Plain floats pass through: tags are opt-in.
    assert require_unit(0.5, "usd/(server*hr)") == 0.5


def test_unit_mismatch_raises_even_with_contracts_disabled():
    set_contracts(False)
    with pytest.raises(ContractError):
        require_unit(rps(100.0), "usd/(server*hr)")


def test_unit_helpers_reject_negative_values():
    for helper in (usd_per_hour, usd_per_hour_per_rps, rps):
        with pytest.raises(ContractError):
            helper(-1.0)


def test_unit_arithmetic_degrades_to_float():
    total = usd_per_hour(0.1) * 3
    assert not isinstance(total, UnitScalar)
    assert total == pytest.approx(0.3)


# ---------------------------------------------------- the @units decorator
def test_units_checks_tagged_arguments_by_equivalence():
    @units("req/s", "usd/(server*hr)", ret="usd")
    def cost(rate, price):
        return float(rate) * float(price)

    # Tagged values with equivalent spellings pass; "rps" is "req/s".
    assert cost(rps(100.0), usd_per_hour(0.1)) == pytest.approx(10.0)
    # A tagged value in the wrong unit names the offending parameter.
    with pytest.raises(ContractError, match="'rate'"):
        cost(usd_per_hour(0.1), usd_per_hour(0.1))
    # Untagged plain floats carry no unit evidence and pass.
    assert cost(100.0, 0.1) == pytest.approx(10.0)


def test_units_checks_tagged_return_values():
    @units(None, ret="usd/(rps*hr)")
    def lies(value):
        return usd_per_hour(value)  # tagged usd/(server*hr), not per-rps

    with pytest.raises(ContractError, match="<return>"):
        lies(0.25)


def test_units_methods_skip_self_and_keyword_specs_bind_by_name():
    class Biller:
        @units("hr", price="usd/(server*hr)")
        def bill(self, hours, price):
            return float(hours) * float(price)

    biller = Biller()
    assert biller.bill(2.0, usd_per_hour(0.5)) == pytest.approx(1.0)
    with pytest.raises(ContractError, match="'price'"):
        biller.bill(2.0, price=rps(0.5))


def test_units_decoration_time_validation():
    with pytest.raises(ValueError):  # more specs than parameters

        @units("s", "s")
        def one(x):
            return x

    with pytest.raises(ValueError):  # unknown keyword parameter

        @units(nope="s")
        def two(x):
            return x

    with pytest.raises(ValueError):  # spec must parse in the shared grammar

        @units("furlongs")
        def three(x):
            return x


def test_units_is_a_noop_when_disabled():
    @units("req/s")
    def f(rate):
        return float(rate)

    set_contracts(False)
    assert f(usd_per_hour(1.0)) == 1.0  # wrong tag, but checks are off


def test_field_units_records_and_validates_declarations():
    import dataclasses

    @field_units(rate="req/s", width="s/interval")
    @dataclasses.dataclass
    class Obs:
        rate: float
        width: float

    assert Obs.__unit_fields__ == {"rate": "req/s", "width": "s/interval"}

    with pytest.raises(ValueError):  # a typo'd field fails at import time

        @field_units(rte="req/s")
        @dataclasses.dataclass
        class Typo:
            rate: float


def test_field_units_inherits_and_overrides():
    @field_units(t="s")
    class Base:
        pass

    @field_units(t="ms", cost="usd")
    class Derived(Base):
        pass

    assert Base.__unit_fields__ == {"t": "s"}
    assert Derived.__unit_fields__ == {"t": "ms", "cost": "usd"}


def test_per_request_prices_conversion():
    prices = np.array([1.0, 2.0])
    caps = np.array([100.0, 400.0])
    np.testing.assert_allclose(per_request_prices(prices, caps), [0.01, 0.005])
    with pytest.raises(ContractError):
        per_request_prices(prices, np.array([100.0, 0.0]))
    with pytest.raises(ContractError):
        per_request_prices(np.array([-1.0, 2.0]), caps)
