"""Tests for the hybrid-accuracy CI gate (repro.bench.hybridgate)."""

from repro.bench import hybridgate

#: One cheap cell (the committed ACCURACY_GRID runs 180 s horizons; this
#: keeps unit-test wall time down while exercising the same code path).
TINY_GRID = (
    {
        "peak_rps": 300.0,
        "servers": 5,
        "capacity_rps": 100.0,
        "sim_seconds": 40.0,
        "revoke": True,
    },
)


class TestChecks:
    def test_accuracy_cells_report_both_engines(self):
        (cell,) = hybridgate.check_hybrid_accuracy(scenarios=TINY_GRID, seed=0)
        assert cell["revoke"] is True
        assert cell["p99_hybrid_s"] > 0
        assert cell["p99_request_s"] > 0
        assert cell["rel_error"] >= 0
        # The revocation opens a fidelity window: both tiers must run.
        assert cell["tier_steps"]["fluid"] > 0
        assert cell["tier_steps"]["request"] > 0

    def test_speedup_smoke_reports_positive_ratio(self):
        smoke = hybridgate.check_hybrid_speedup(
            peak_rps=400.0, servers=5, sim_seconds=30.0, seed=0
        )
        assert smoke["hybrid_intervals_per_sec"] > 0
        assert smoke["request_intervals_per_sec"] > 0
        assert smoke["speedup"] > 0
        assert smoke["hybrid_seconds"] > 0

    def test_committed_grid_stays_below_saturation(self):
        # At rho >= 1 the P99 comparison measures noise, not accuracy; the
        # grid must keep post-kill utilization under 1 by construction.
        for scenario in hybridgate.ACCURACY_GRID:
            alive = scenario["servers"] - (1 if scenario["revoke"] else 0)
            rho = scenario["peak_rps"] / (alive * scenario["capacity_rps"])
            assert rho < 0.9


class TestMain:
    def _fake_cells(self, rel_error):
        return [
            {
                "peak_rps": 600.0,
                "servers": 10,
                "revoke": True,
                "p99_hybrid_s": 0.5,
                "p99_request_s": 0.5,
                "rel_error": rel_error,
                "tier_steps": {"fluid": 100, "request": 20},
            }
        ]

    def _fake_smoke(self, speedup):
        return {
            "hybrid_seconds": 1.0,
            "request_seconds": speedup,
            "hybrid_intervals_per_sec": 100.0 * speedup,
            "request_intervals_per_sec": 100.0,
            "speedup": speedup,
            "tier_steps": {"fluid": 100, "request": 20},
        }

    def test_exit_zero_when_accurate_and_fast(self, monkeypatch, capsys):
        monkeypatch.setattr(
            hybridgate,
            "check_hybrid_accuracy",
            lambda **kw: self._fake_cells(0.05),
        )
        monkeypatch.setattr(
            hybridgate, "check_hybrid_speedup", lambda **kw: self._fake_smoke(40.0)
        )
        assert hybridgate.main([]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "40.0x" in out

    def test_exit_one_on_accuracy_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            hybridgate,
            "check_hybrid_accuracy",
            lambda **kw: self._fake_cells(0.60),
        )
        monkeypatch.setattr(
            hybridgate, "check_hybrid_speedup", lambda **kw: self._fake_smoke(40.0)
        )
        assert hybridgate.main(["--tolerance", "0.25"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "beyond 25%" in captured.err

    def test_exit_one_on_slow_hybrid(self, monkeypatch, capsys):
        monkeypatch.setattr(
            hybridgate,
            "check_hybrid_accuracy",
            lambda **kw: self._fake_cells(0.05),
        )
        monkeypatch.setattr(
            hybridgate, "check_hybrid_speedup", lambda **kw: self._fake_smoke(3.0)
        )
        assert hybridgate.main(["--min-speedup", "10"]) == 1
        assert "only 3.0x" in capsys.readouterr().err

    def test_seed_reaches_checks(self, monkeypatch):
        seen = {}

        def fake_accuracy(**kwargs):
            seen["accuracy_seed"] = kwargs["seed"]
            return self._fake_cells(0.05)

        def fake_speedup(**kwargs):
            seen["speedup_seed"] = kwargs["seed"]
            return self._fake_smoke(40.0)

        monkeypatch.setattr(hybridgate, "check_hybrid_accuracy", fake_accuracy)
        monkeypatch.setattr(hybridgate, "check_hybrid_speedup", fake_speedup)
        assert hybridgate.main(["--seed", "7"]) == 0
        assert seen == {"accuracy_seed": 7, "speedup_seed": 7}
