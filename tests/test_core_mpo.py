"""Unit tests for the multi-period optimizer — the heart of SpotWeb."""

import numpy as np
import pytest

from repro.core import AllocationConstraints, CostModel, MPOOptimizer
from repro.solvers import QPProblem, solve_qp_reference


def flat_inputs(dataset, horizon, target=1000.0, t=0):
    H = horizon
    return (
        np.full(H, target),
        np.tile(dataset.prices[t], (H, 1)),
        np.tile(dataset.failure_probs[t], (H, 1)),
        dataset.event_covariance(),
    )


class TestFeasibility:
    @pytest.mark.parametrize("horizon", [1, 3, 6])
    def test_plan_satisfies_constraints(self, small_markets, small_dataset, horizon):
        constraints = AllocationConstraints(a_total_min=1.0, a_total_max=1.6)
        opt = MPOOptimizer(small_markets, horizon=horizon, constraints=constraints)
        res = opt.optimize(*flat_inputs(small_dataset, horizon))
        assert res.solver.status.ok
        for tau in range(horizon):
            assert constraints.feasible(res.plan.fractions[tau], tol=1e-3)

    def test_market_cap_respected(self, small_markets, small_dataset):
        constraints = AllocationConstraints(a_market_max=0.3, a_total_max=2.0)
        opt = MPOOptimizer(small_markets, horizon=2, constraints=constraints)
        res = opt.optimize(*flat_inputs(small_dataset, 2))
        assert np.all(res.plan.fractions <= 0.3 + 1e-4)


class TestEconomicBehaviour:
    def test_prefers_cheaper_markets(self, small_markets, small_dataset):
        """With no risk/failure differences, allocation goes to low C."""
        opt = MPOOptimizer(
            small_markets,
            horizon=1,
            cost_model=CostModel(risk_aversion=0.0),
        )
        N = len(small_markets)
        prices = np.full((1, N), 1.0)
        prices[0, 2] = 0.01  # market 2 nearly free
        failures = np.zeros((1, N))
        M = 1e-9 * np.eye(N)
        res = opt.optimize(np.array([1000.0]), prices, failures, M)
        frac = res.plan.fractions[0]
        # Per-request cost also depends on capacity; normalize manually.
        C = prices[0] / opt.capacities
        assert frac[np.argmin(C)] == pytest.approx(frac.max())

    def test_risk_aversion_diversifies(self, small_markets):
        N = len(small_markets)
        prices = np.full((1, N), 0.5)
        failures = np.full((1, N), 0.1)
        M = 0.09 * np.eye(N)
        target = np.array([1000.0])

        concentrated = MPOOptimizer(
            small_markets, horizon=1, cost_model=CostModel(risk_aversion=0.0)
        ).optimize(target, prices, failures, M)
        diversified = MPOOptimizer(
            small_markets, horizon=1, cost_model=CostModel(risk_aversion=50.0)
        ).optimize(target, prices, failures, M)

        def herfindahl(frac):
            w = frac / frac.sum()
            return float((w**2).sum())

        assert herfindahl(diversified.plan.fractions[0]) < herfindahl(
            concentrated.plan.fractions[0]
        )

    def test_churn_penalty_sticks_to_current(self, small_markets, small_dataset):
        """With churn cost, the plan stays near the deployed allocation."""
        N = len(small_markets)
        current = np.zeros(N)
        current[0] = 1.0
        prices = np.full((1, N), 0.5)
        failures = np.zeros((1, N))
        M = 1e-9 * np.eye(N)
        target = np.array([1000.0])

        free = MPOOptimizer(
            small_markets, horizon=1, cost_model=CostModel(risk_aversion=0.0)
        ).optimize(target, prices, failures, M, current_fractions=current)
        sticky = MPOOptimizer(
            small_markets,
            horizon=1,
            cost_model=CostModel(risk_aversion=0.0, churn_penalty=50.0),
        ).optimize(target, prices, failures, M, current_fractions=current)

        dist_free = np.abs(free.plan.fractions[0] - current).sum()
        dist_sticky = np.abs(sticky.plan.fractions[0] - current).sum()
        assert dist_sticky < dist_free + 1e-9
        assert sticky.plan.fractions[0][0] > 0.5

    def test_failure_cost_avoids_flaky_markets(self, small_markets):
        """With L > 0, high-failure markets carry an SLA surcharge."""
        N = len(small_markets)
        prices = np.full((1, N), 0.5)
        failures = np.zeros((1, N))
        failures[0, 0] = 0.9
        M = 1e-9 * np.eye(N)
        opt = MPOOptimizer(
            small_markets,
            horizon=1,
            cost_model=CostModel(
                penalty=0.02, long_running_fraction=1.0, risk_aversion=0.0
            ),
        )
        res = opt.optimize(np.array([1000.0]), prices, failures, M)
        frac = res.plan.fractions[0]
        assert frac[0] < frac[1:].max()


class TestMultiPeriodStructure:
    def test_example1_future_knowledge(self, catalog):
        """The paper's Example 1: a predicted demand jump shifts the early
        allocation towards the large server when churn is expensive."""
        small = catalog.market("m4.large")  # 40 rps
        large = catalog.market("m4.10xlarge")  # 800 rps
        markets = [small, large]
        # Price the large server at a per-request discount (as in Example 1:
        # 15c/100req beats 3 x 2c/10req at high demand).
        prices = np.array([[0.08, 1.2], [0.08, 1.2]])
        failures = np.zeros((2, 2))
        M = 1e-9 * np.eye(2)
        cost_model = CostModel(risk_aversion=0.0, churn_penalty=5.0)

        myopic = MPOOptimizer(markets, horizon=1, cost_model=cost_model)
        res_myopic = myopic.optimize(
            np.array([25.0]), prices[:1], failures[:1], M
        )

        lookahead = MPOOptimizer(markets, horizon=2, cost_model=cost_model)
        res_look = lookahead.optimize(
            np.array([25.0, 800.0]), prices, failures, M
        )
        # The look-ahead plan leans on the large server already in interval 1
        # more than the myopic plan does.
        assert (
            res_look.plan.fractions[0, 1]
            > res_myopic.plan.fractions[0, 1] - 1e-9
        )
        assert res_look.plan.fractions[1, 1] > 0.5

    def test_matches_reference_solver(self, small_markets, small_dataset):
        """The assembled QP must solve to the same optimum as the reference."""
        H = 2
        opt = MPOOptimizer(
            small_markets,
            horizon=H,
            cost_model=CostModel(churn_penalty=0.5),
        )
        targets, prices, failures, M = flat_inputs(small_dataset, H)
        res = opt.optimize(targets, prices, failures, M)

        # Rebuild the same QP and solve with scipy trust-constr.
        N = len(small_markets)
        rows, lower, upper = opt.constraints.build_rows(N, H)
        q = np.zeros(N * H)
        per_req = prices / opt.capacities[None, :]
        for tau in range(H):
            q[tau * N : (tau + 1) * N] = opt.cost_model.provisioning_coefficients(
                per_req[tau], targets[tau], 1.0
            ) + opt.cost_model.sla_coefficients(failures[tau], targets[tau], 0.0)
        problem = QPProblem(opt._hessian(M), q, rows, lower, upper)
        ref = solve_qp_reference(problem)
        assert res.solver.objective == pytest.approx(ref.objective, rel=1e-3, abs=1e-4)


class TestValidationAndCaching:
    def test_input_validation(self, small_markets, small_dataset):
        opt = MPOOptimizer(small_markets, horizon=2)
        targets, prices, failures, M = flat_inputs(small_dataset, 2)
        with pytest.raises(ValueError):
            opt.optimize(targets[:1], prices, failures, M)
        with pytest.raises(ValueError):
            opt.optimize(targets, prices[:1], failures, M)
        with pytest.raises(ValueError):
            opt.optimize(targets, prices, failures, M[:3, :3])
        with pytest.raises(ValueError):
            opt.optimize(-targets, prices, failures, M)
        with pytest.raises(ValueError):
            opt.optimize(targets, prices, failures, M, current_fractions=np.ones(3))

    def test_constructor_validation(self, small_markets):
        with pytest.raises(ValueError):
            MPOOptimizer(small_markets, horizon=0)
        with pytest.raises(ValueError):
            MPOOptimizer([], horizon=1)
        with pytest.raises(ValueError):
            MPOOptimizer(small_markets, interval_hours=0.0)

    def test_solver_cached_across_calls(self, small_markets, small_dataset):
        opt = MPOOptimizer(small_markets, horizon=2)
        targets, prices, failures, M = flat_inputs(small_dataset, 2)
        opt.optimize(targets, prices, failures, M)
        solver1 = opt._solver
        opt.optimize(targets * 1.1, prices * 0.9, failures, M)
        assert opt._solver is solver1  # same M -> reuse
        M2 = M + 1e-3 * np.eye(M.shape[0])
        opt.optimize(targets, prices, failures, M2)
        assert opt._solver is not solver1  # new M -> rebuild
