"""Focused tests for the Fig. 6(b) sweep machinery (serial vs parallel)."""

import numpy as np
import pytest

from repro.experiments import fig6b_exosphere as f


@pytest.fixture(scope="module")
def small_sweep():
    return dict(
        market_counts=(6,),
        horizons=(2,),
        weeks=1,
        peak_rps=20_000.0,
        seeds=(3, 17),
    )


class TestFig6bSweep:
    def test_raw_savings_recorded_per_seed(self, small_sweep):
        res = f.run_fig6b(**small_sweep)
        assert (6, 2) in res.raw_savings
        raws = res.raw_savings[(6, 2)]
        assert len(raws) == 2  # one per seed
        assert res.savings[(6, 2)] == pytest.approx(float(np.mean(raws)))

    def test_parallel_matches_serial(self, small_sweep):
        serial = f.run_fig6b(**small_sweep, parallel=False)
        par = f.run_fig6b(**small_sweep, parallel=True, max_workers=2)
        assert serial.savings == par.savings
        assert sorted(serial.raw_savings[(6, 2)]) == sorted(
            par.raw_savings[(6, 2)]
        )

    def test_bootstrap_ci_from_raws(self, small_sweep):
        from repro.analysis import bootstrap_mean_ci

        res = f.run_fig6b(**small_sweep)
        ci = bootstrap_mean_ci(np.array(res.raw_savings[(6, 2)]), seed=0)
        assert ci.lower <= res.savings[(6, 2)] <= ci.upper

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            f.run_fig6b(
                market_counts=(6,),
                horizons=(2,),
                weeks=1,
                seeds=(3,),
                workload="batch",
            )
