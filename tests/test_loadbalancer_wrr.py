"""Unit and property tests for smooth weighted round robin."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.loadbalancer import SmoothWeightedRoundRobin


class TestBasics:
    def test_empty_returns_none(self):
        assert SmoothWeightedRoundRobin().pick() is None

    def test_single_backend(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0})
        assert all(wrr.pick() == "a" for _ in range(5))

    def test_proportional_distribution(self):
        wrr = SmoothWeightedRoundRobin({"a": 3.0, "b": 1.0})
        picks = Counter(wrr.pick() for _ in range(400))
        assert picks["a"] == 300
        assert picks["b"] == 100

    def test_smoothness_interleaves(self):
        """Smooth WRR must not send long bursts to the heavy backend."""
        wrr = SmoothWeightedRoundRobin({"a": 2.0, "b": 1.0})
        seq = [wrr.pick() for _ in range(12)]
        # 'b' appears once every 3 picks, never starved for 5+ in a row.
        longest_a_run = max(
            len(run)
            for run in "".join("x" if s == "a" else "." for s in seq).split(".")
        )
        assert longest_a_run <= 2

    def test_exclusion(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0, "b": 1.0})
        assert wrr.pick(exclude={"a"}) == "b"
        assert wrr.pick(exclude={"a", "b"}) is None


class TestUpdates:
    def test_set_weight_and_remove(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0})
        wrr.set_weight("b", 1.0)
        assert "b" in wrr
        wrr.set_weight("b", 0.0)  # <= 0 removes
        assert "b" not in wrr
        wrr.remove("a")
        assert wrr.pick() is None

    def test_set_weights_replaces(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0, "b": 1.0})
        wrr.set_weights({"b": 2.0, "c": 1.0})
        assert "a" not in wrr and "c" in wrr
        assert len(wrr) == 2

    def test_zero_weights_dropped(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0, "b": 0.0})
        assert "b" not in wrr

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SmoothWeightedRoundRobin({"a": -1.0})

    def test_online_reweight_shifts_distribution(self):
        wrr = SmoothWeightedRoundRobin({"a": 1.0, "b": 1.0})
        [wrr.pick() for _ in range(10)]
        wrr.set_weights({"a": 9.0, "b": 1.0})
        picks = Counter(wrr.pick() for _ in range(100))
        assert picks["a"] == 90


@settings(max_examples=30, deadline=None)
@given(
    weights=st.dictionaries(
        st.integers(0, 20),
        st.floats(0.1, 100.0),
        min_size=1,
        max_size=8,
    ),
)
def test_long_run_distribution_proportional_to_weights(weights):
    """Over K * sum cycles each backend receives picks ~ weight share."""
    wrr = SmoothWeightedRoundRobin(weights)
    total_w = sum(weights.values())
    n = 3000
    picks = Counter(wrr.pick() for _ in range(n))
    for key, w in weights.items():
        expected = n * w / total_w
        assert abs(picks[key] - expected) <= max(3.0, 0.1 * expected)
