"""Tests for the flight recorder: ring buffer, dumps, bundle files."""

import json
import sys

import pytest

from repro.obs import (
    FLIGHTREC_SCHEMA,
    EventLog,
    FlightRecorder,
    FlightRecValidationError,
    TelemetryBus,
    disable_flightrec,
    enable_flightrec,
    flightrec_enabled,
    get_bus,
    get_events,
    get_flightrec,
    install_crash_hooks,
    load_flightrec,
    set_events,
    set_flightrec,
    summarize_flightrec,
    uninstall_crash_hooks,
    validate_flightrec,
)


@pytest.fixture
def global_log():
    old = set_events(EventLog(enabled=True))
    yield get_events()
    set_events(old)


def tick_delta(seq, t, **extra):
    return {"type": "tick", "seq": seq, "t": t, "interval": None, **extra}


def alert_delta(seq, t, state="firing"):
    return {
        "type": "events",
        "seq": seq,
        "t": t,
        "interval": 0,
        "events": [
            {
                "kind": "slo.alert",
                "t": t,
                "interval": 0,
                "id": None,
                "cause": "w1",
                "attrs": {"state": state, "burn_short": 20.0, "burn_long": 12.0},
            }
        ],
    }


class TestRingBuffer:
    def test_bounded_by_max_records(self):
        rec = FlightRecorder(enabled=True, max_records=3, auto_dump=False)
        for i in range(10):
            rec(tick_delta(i, float(i)))
        assert [d["seq"] for d in rec.buffered()] == [7, 8, 9]

    def test_bounded_by_sim_time_window(self):
        rec = FlightRecorder(enabled=True, window_seconds=5.0, auto_dump=False)
        for i in range(10):
            rec(tick_delta(i, float(i)))
        # Newest is t=9; anything older than t=4 left the window.
        assert [d["t"] for d in rec.buffered()] == [4.0, 5.0, 6.0, 7.0, 8.0, 9.0]

    def test_disabled_buffers_nothing(self):
        rec = FlightRecorder(enabled=False)
        rec(tick_delta(0, 0.0))
        assert rec.buffered() == []

    def test_clear_keeps_dump_counter(self, tmp_path):
        rec = FlightRecorder(enabled=True, out_dir=tmp_path, auto_dump=False)
        rec(tick_delta(0, 0.0))
        rec.dump("manual")
        rec.clear()
        assert rec.buffered() == []
        second = rec.dump("manual")
        assert second.name == "flightrec_002_manual.jsonl"

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_records"):
            FlightRecorder(max_records=0)
        with pytest.raises(ValueError, match="window_seconds"):
            FlightRecorder(window_seconds=0.0)


class TestAutoDump:
    def test_firing_alert_dumps_pre_alert_window(self, tmp_path):
        rec = FlightRecorder(enabled=True, out_dir=tmp_path)
        rec(tick_delta(0, 30.0))
        rec(alert_delta(1, 60.0))
        assert len(rec.dumped) == 1
        header, deltas = load_flightrec(rec.dumped[0])
        assert header["reason"] == "slo.alert"
        assert header["trigger"]["attrs"]["state"] == "firing"
        # The buffer still held the pre-alert window at dump time.
        assert [d["seq"] for d in deltas] == [0, 1]

    def test_resolved_alert_does_not_dump(self, tmp_path):
        rec = FlightRecorder(enabled=True, out_dir=tmp_path)
        rec(alert_delta(0, 60.0, state="resolved"))
        assert rec.dumped == []

    def test_dump_filenames_are_deterministic(self, tmp_path):
        rec = FlightRecorder(enabled=True, out_dir=tmp_path)
        rec(alert_delta(0, 60.0))
        rec(alert_delta(1, 90.0))
        assert [p.name for p in rec.dumped] == [
            "flightrec_001_slo_alert.jsonl",
            "flightrec_002_slo_alert.jsonl",
        ]


class TestGlobals:
    def test_enable_arms_and_subscribes_once(self, tmp_path):
        old = set_flightrec(FlightRecorder(enabled=False))
        try:
            assert not flightrec_enabled()
            rec = enable_flightrec(tmp_path)
            enable_flightrec(tmp_path)  # idempotent: no double-subscribe
            assert flightrec_enabled()
            assert rec.out_dir == tmp_path
            assert get_bus()._subscribers.count(rec) == 1
            disable_flightrec()
            assert not flightrec_enabled()
            assert rec not in get_bus()._subscribers
        finally:
            disable_flightrec()
            set_flightrec(old)

    def test_crash_hook_dumps_and_chains(self, tmp_path):
        old = set_flightrec(
            FlightRecorder(enabled=True, out_dir=tmp_path, auto_dump=False)
        )
        get_flightrec()(tick_delta(0, 1.0))
        seen = []
        orig_hook = sys.excepthook
        sys.excepthook = lambda *exc: seen.append(exc)
        try:
            install_crash_hooks()
            boom = RuntimeError("boom")
            sys.excepthook(RuntimeError, boom, None)
            assert seen and seen[0][1] is boom  # original hook still ran
            (bundle,) = get_flightrec().dumped
            header, _deltas = load_flightrec(bundle)
            assert header["reason"] == "crash"
            assert header["trigger"] == {
                "exception": "RuntimeError",
                "message": "boom",
            }
        finally:
            uninstall_crash_hooks()
            sys.excepthook = orig_hook
            set_flightrec(old)
        assert sys.excepthook is orig_hook


class TestBundleFiles:
    def _dump(self, tmp_path, deltas=None):
        rec = FlightRecorder(enabled=True, out_dir=tmp_path, auto_dump=False)
        for delta in deltas if deltas is not None else [tick_delta(0, 1.0)]:
            rec(delta)
        return rec.dump("manual", trigger={"why": "test"})

    def test_round_trip(self, tmp_path):
        path = self._dump(tmp_path, [tick_delta(0, 1.0), alert_delta(1, 2.0)])
        header, deltas = load_flightrec(path)
        assert header["schema"] == FLIGHTREC_SCHEMA
        assert header["records"] == 2 == len(deltas)
        info = validate_flightrec(path)
        assert info == {"reason": "manual", "t": 2.0, "deltas": 2, "events": 1}

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda h, d: ({**h, "schema": "nope"}, d), "unknown bundle schema"),
            (lambda h, d: ({**h, "reason": None}, d), "string 'reason'"),
            (lambda h, d: ({**h, "records": 9}, d), "declares 9"),
            (
                lambda h, d: (h, [{**d[0], "type": "mystery"}]),
                "unknown delta type",
            ),
            (lambda h, d: (h, [{**d[0], "seq": "x"}]), "not an int"),
            (lambda h, d: (h, [{**d[0], "t": None}]), "not a number"),
        ],
    )
    def test_malformed_bundles_rejected(self, tmp_path, mutate, match):
        path = self._dump(tmp_path)
        header, deltas = load_flightrec(path)
        header, deltas = mutate(header, deltas)
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "\n".join(json.dumps(obj) for obj in [header, *deltas]) + "\n"
        )
        with pytest.raises(FlightRecValidationError, match=match):
            load_flightrec(bad)

    def test_non_increasing_seq_rejected(self, tmp_path):
        path = self._dump(tmp_path, [tick_delta(5, 1.0)])
        header, deltas = load_flightrec(path)
        header["records"] = 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "\n".join(
                json.dumps(obj)
                for obj in [header, *deltas, tick_delta(5, 2.0)]
            )
            + "\n"
        )
        with pytest.raises(FlightRecValidationError, match="strictly increasing"):
            load_flightrec(bad)

    def test_empty_bundle_rejected(self, tmp_path):
        bad = tmp_path / "empty.jsonl"
        bad.write_text("")
        with pytest.raises(FlightRecValidationError, match="empty"):
            load_flightrec(bad)

    def test_summarize_names_reason_trigger_and_alert(self, tmp_path):
        path = self._dump(
            tmp_path,
            [
                tick_delta(0, 30.0),
                alert_delta(1, 60.0),
                {
                    "type": "metrics",
                    "seq": 2,
                    "t": 60.0,
                    "interval": 0,
                    "changed": {"sim.intervals": 2},
                },
                tick_delta(3, 60.0),
            ],
        )
        text = summarize_flightrec(path)
        assert "reason=manual" in text
        assert 'trigger: {"why": "test"}' in text
        assert "slo.alert t=60.0 state=firing" in text
        assert "sim.intervals" in text


class TestBusIntegration:
    def test_recorder_follows_live_stream(self, tmp_path, global_log):
        bus = TelemetryBus(enabled=True, publish_metrics=False)
        rec = bus.subscribe(
            FlightRecorder(enabled=True, out_dir=tmp_path, auto_dump=False)
        )
        global_log.emit("warning.issued", t=1.0, event_id="w1")
        bus.tick(1.0, 0)
        bus.tick(2.0, 1)
        kinds = [d["type"] for d in rec.buffered()]
        assert kinds == ["events", "tick", "tick"]
        header, deltas = load_flightrec(rec.dump("manual"))
        assert header["records"] == 3
