"""Unit tests for spot price processes."""

import numpy as np
import pytest

from repro.markets import (
    ConstantPriceProcess,
    PurchaseOption,
    SpotPriceProcess,
    default_catalog,
    generate_price_matrix,
)


class TestConstantPriceProcess:
    def test_flat_series(self):
        rng = np.random.default_rng(0)
        series = ConstantPriceProcess(0.5).sample(10, rng)
        assert np.all(series == 0.5)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            ConstantPriceProcess(0.5).sample(-1, np.random.default_rng(0))


class TestSpotPriceProcess:
    def _proc(self, **kw):
        defaults = dict(ondemand_price=1.0)
        defaults.update(kw)
        return SpotPriceProcess(**defaults)

    def test_prices_within_bounds(self):
        rng = np.random.default_rng(1)
        proc = self._proc(floor=0.1, cap=0.9)
        series = proc.sample(2000, rng)
        assert np.all(series >= 0.1 - 1e-12)
        assert np.all(series <= 0.9 + 1e-12)

    def test_mean_near_base_discount_in_calm_market(self):
        rng = np.random.default_rng(2)
        proc = self._proc(base_discount=0.25, p_enter_pressure=0.0, volatility=0.05)
        series = proc.sample(5000, rng)
        assert np.median(series) == pytest.approx(0.25, rel=0.15)

    def test_pressure_regime_raises_prices(self):
        rng = np.random.default_rng(3)
        calm = self._proc(p_enter_pressure=0.0).sample(3000, rng)
        rng = np.random.default_rng(3)
        stressed = self._proc(
            p_enter_pressure=0.5, p_exit_pressure=0.05
        ).sample(3000, rng)
        assert stressed.mean() > calm.mean()

    def test_common_shocks_induce_correlation(self):
        # Disable the (independent) pressure regimes so the shared shock
        # stream is the only coupling channel being measured.
        rng = np.random.default_rng(4)
        shocks = np.random.default_rng(99).normal(size=4000)
        a = self._proc(volatility=0.1, p_enter_pressure=0.0).sample(
            4000, rng, common_shocks=shocks, common_weight=0.95
        )
        rng = np.random.default_rng(5)
        b = self._proc(volatility=0.1, p_enter_pressure=0.0).sample(
            4000, rng, common_shocks=shocks, common_weight=0.95
        )
        corr = np.corrcoef(np.log(a), np.log(b))[0, 1]
        assert corr > 0.5

    def test_zero_steps(self):
        assert self._proc().sample(0, np.random.default_rng(0)).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpotPriceProcess(1.0, base_discount=1.5)
        with pytest.raises(ValueError):
            SpotPriceProcess(1.0, reversion=0.0)
        with pytest.raises(ValueError):
            SpotPriceProcess(1.0, floor=0.5, cap=0.4)
        with pytest.raises(ValueError):
            proc = SpotPriceProcess(1.0)
            proc.sample(
                5,
                np.random.default_rng(0),
                common_shocks=np.zeros(3),
                common_weight=0.5,
            )


class TestGeneratePriceMatrix:
    def test_shape_and_determinism(self):
        markets = default_catalog().spot_markets(8)
        a = generate_price_matrix(markets, 100, seed=7)
        b = generate_price_matrix(markets, 100, seed=7)
        assert a.shape == (100, 8)
        np.testing.assert_array_equal(a, b)

    def test_ondemand_columns_flat(self):
        catalog = default_catalog()
        markets = [
            catalog.market("m4.large", PurchaseOption.ON_DEMAND),
            catalog.market("m4.large", PurchaseOption.SPOT),
        ]
        prices = generate_price_matrix(markets, 50, seed=1)
        assert np.all(prices[:, 0] == prices[0, 0])
        assert prices[:, 1].std() > 0

    def test_spot_cheaper_than_ondemand_on_average(self):
        markets = default_catalog().spot_markets(10)
        prices = generate_price_matrix(markets, 24 * 14, seed=2)
        ondemand = np.array([m.instance.ondemand_price for m in markets])
        assert np.all(prices.mean(axis=0) < ondemand)

    def test_family_correlation(self):
        catalog = default_catalog()
        # Two markets in the same family share a shock stream; suppress the
        # independent pressure regimes so the channel is measurable.
        same = [catalog.market("m5.large"), catalog.market("m5.xlarge")]
        overrides = {
            m.name: SpotPriceProcess(
                ondemand_price=m.instance.ondemand_price,
                p_enter_pressure=0.0,
                volatility=0.08,
            )
            for m in same
        }
        prices = generate_price_matrix(
            same,
            24 * 30,
            seed=3,
            family_correlation=0.9,
            process_overrides=overrides,
        )
        r_same = np.corrcoef(np.log(prices[:, 0]), np.log(prices[:, 1]))[0, 1]
        assert r_same > 0.2

    def test_cheapest_market_rotates(self):
        """The Fig. 5 premise: no market stays cheapest forever."""
        markets = default_catalog().spot_markets(12)
        prices = generate_price_matrix(markets, 24 * 14, seed=4)
        caps = np.array([m.capacity_rps for m in markets])
        cheapest = np.argmin(prices / caps[None, :], axis=1)
        assert len(set(cheapest.tolist())) >= 2
