"""Unit tests for the ridge-regression predictor."""

import numpy as np
import pytest

from repro.predictors import RidgePredictor
from repro.predictors.metrics import mape
from repro.workloads import wikipedia_like


class TestRidgePredictor:
    def test_cold_start_persists_last(self):
        p = RidgePredictor(24)
        p.observe(50.0)
        r = p.predict(2)
        np.testing.assert_array_equal(r.mean, [50.0, 50.0])

    def test_learns_diurnal_pattern(self):
        trace = wikipedia_like(3, seed=11)
        p = RidgePredictor(24, refit_every=24)
        preds, acts = [], []
        for t in range(len(trace)):
            if t >= 14 * 24:
                preds.append(p.predict(1).mean[0])
                acts.append(trace.rates[t])
            p.observe(trace.rates[t])
        assert mape(np.array(acts), np.array(preds)) < 0.06

    def test_multi_horizon_bounds(self):
        trace = wikipedia_like(2, seed=12)
        p = RidgePredictor(24, refit_every=24, max_horizon=6)
        p.observe_many(trace.rates)
        r = p.predict(6)
        assert r.horizon == 6
        assert np.all(r.upper >= r.mean)
        assert np.all(r.lower <= r.mean)
        with pytest.raises(ValueError):
            p.predict(7)

    def test_nonnegative_predictions(self):
        p = RidgePredictor(24, refit_every=24)
        rng = np.random.default_rng(0)
        p.observe_many(np.abs(rng.normal(5.0, 5.0, size=20 * 24)))
        assert np.all(p.predict(4).mean >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgePredictor(0)
        with pytest.raises(ValueError):
            RidgePredictor(24, lags=0)
        with pytest.raises(ValueError):
            RidgePredictor(24, l2=0.0)
        with pytest.raises(ValueError):
            RidgePredictor(24, refit_every=0)
        with pytest.raises(ValueError):
            RidgePredictor(24).observe(-1.0)
        with pytest.raises(ValueError):
            RidgePredictor(24).predict(0)

    def test_plugs_into_controller(self, small_markets, small_dataset):
        from repro.core import SpotWebController
        from repro.predictors import ReactiveFailurePredictor, ReactivePricePredictor

        ctrl = SpotWebController(
            small_markets,
            RidgePredictor(24, max_horizon=4),
            ReactivePricePredictor(6),
            ReactiveFailurePredictor(6),
            horizon=4,
        )
        d = ctrl.step(500.0, small_dataset.prices[0], small_dataset.failure_probs[0])
        assert d.provisioned_rps > 0
