"""Unit tests for the session table."""

from repro.loadbalancer import SessionTable


class TestSessionTable:
    def test_assign_and_lookup(self):
        t = SessionTable()
        t.assign(1, "a")
        assert t.backend_of(1) == "a"
        assert t.sessions_on("a") == {1}
        assert len(t) == 1

    def test_reassign_moves(self):
        t = SessionTable()
        t.assign(1, "a")
        t.assign(1, "b")
        assert t.backend_of(1) == "b"
        assert t.sessions_on("a") == set()
        assert t.sessions_on("b") == {1}

    def test_close(self):
        t = SessionTable()
        t.assign(1, "a")
        t.close(1)
        assert t.backend_of(1) is None
        assert len(t) == 0
        t.close(99)  # idempotent on unknown ids

    def test_evict_backend(self):
        t = SessionTable()
        t.assign(1, "a")
        t.assign(2, "a")
        t.assign(3, "b")
        orphans = t.evict_backend("a")
        assert orphans == {1, 2}
        assert t.backend_of(1) is None
        assert t.backend_of(3) == "b"

    def test_evict_unknown_backend(self):
        assert SessionTable().evict_backend("nope") == set()
