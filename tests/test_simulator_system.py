"""Closed-loop system tests: controller + cloud + LB + request-level DES."""

import numpy as np
import pytest

from repro.core import CostModel, SpotWebController
from repro.markets import generate_market_dataset
from repro.predictors import (
    ReactiveFailurePredictor,
    ReactivePredictor,
    ReactivePricePredictor,
)
from repro.simulator import SpotWebSystem, SystemConfig
from repro.workloads import constant_workload, step_workload


INTERVAL = 300.0  # 5-minute control intervals keep request counts small


def build_system(markets, *, intervals=8, seed=2, rate_padding=0.2):
    n = len(markets)
    dataset = generate_market_dataset(
        markets, intervals=intervals, seed=seed, interval_seconds=INTERVAL
    )
    controller = SpotWebController(
        markets,
        ReactivePredictor(padding_fraction=rate_padding),
        ReactivePricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=3,
        cost_model=CostModel(churn_penalty=0.2),
    )
    config = SystemConfig(interval_seconds=INTERVAL, seed=seed)
    return SpotWebSystem(controller, dataset, config)


class TestClosedLoop:
    def test_steady_load_served_within_slo(self, small_markets):
        system = build_system(small_markets)
        trace = constant_workload(8, 80.0, interval_seconds=INTERVAL)
        report = system.run(trace)
        assert report.recorder.served > 8 * INTERVAL * 80.0 * 0.9
        assert report.recorder.drop_rate() < 0.05
        assert report.recorder.percentile(90) < 1.0
        assert report.total_cost > 0.0

    def test_fleet_scales_with_demand(self, catalog):
        # Small instance types only, so fleet capacity is commensurate with
        # the offered load (big instances would mask scaling via rounding).
        markets = catalog.subset(
            ["m4.large", "m4.xlarge", "m5.large", "m5.xlarge", "c5.large"]
        ).spot_markets()
        system = build_system(markets)
        trace = step_workload(8, 40.0, 300.0, 4, interval_seconds=INTERVAL)
        report = system.run(trace)
        capacities = [cap for _, _, cap in report.fleet_timeline]
        # Fleet capacity after the step must exceed capacity before it (the
        # optimizer may scale with bigger instances rather than more of them).
        early = max(capacities[:3]) if capacities[:3] else 0.0
        late = max(capacities[-3:])
        assert late > early
        # Observed workload tracked the step.
        assert report.interval_observed_rps[-1] > 2 * report.interval_observed_rps[1]

    def test_revocations_survivable(self, small_markets):
        """Force heavy revocation weather; the loop must keep serving."""
        dataset = generate_market_dataset(
            small_markets, intervals=8, seed=3, interval_seconds=INTERVAL
        )
        dataset.failure_probs[:] = 0.4  # storms every interval
        n = len(small_markets)
        controller = SpotWebController(
            small_markets,
            ReactivePredictor(padding_fraction=0.3),
            ReactivePricePredictor(n),
            ReactiveFailurePredictor(n),
            horizon=3,
        )
        system = SpotWebSystem(
            controller, dataset, SystemConfig(interval_seconds=INTERVAL, seed=3)
        )
        trace = constant_workload(8, 60.0, interval_seconds=INTERVAL)
        report = system.run(trace)
        assert report.revocation_events > 3
        # Requests keep flowing: the vast majority served despite the storm.
        assert report.recorder.drop_rate() < 0.25
        assert report.recorder.served > 8 * INTERVAL * 60.0 * 0.6

    def test_billing_accumulates(self, small_markets):
        system = build_system(small_markets)
        trace = constant_workload(4, 50.0, interval_seconds=INTERVAL)
        report = system.run(trace, intervals=4)
        # Cost is bounded by (fleet x max price x time) and positive.
        assert 0.0 < report.total_cost < 100.0

    def test_market_mismatch_rejected(self, small_markets, catalog):
        other = catalog.spot_markets(5)
        dataset = generate_market_dataset(other, intervals=4, seed=0)
        n = len(small_markets)
        controller = SpotWebController(
            small_markets,
            ReactivePredictor(),
            ReactivePricePredictor(n),
            ReactiveFailurePredictor(n),
        )
        with pytest.raises(ValueError, match="markets must match"):
            SpotWebSystem(controller, dataset)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(interval_seconds=0.0)
        with pytest.raises(ValueError):
            SystemConfig(warning_seconds=-1.0)
