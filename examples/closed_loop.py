#!/usr/bin/env python3
"""The whole SpotWeb machine in one closed loop, request by request.

Wires every component of the paper's Fig. 2 inside the discrete-event
simulator: the controller re-plans the portfolio each control interval, the
transient cloud leases and revokes VMs (with warnings), the monitoring hub
relays feeds and warnings, the transiency-aware balancer routes live traffic
and handles failovers, and request-level servers queue and serve.

Runs a compressed two-hour scenario (5-minute control intervals) with a
diurnal-ish ramp and real revocation weather, then prints the latency/SLO
report, total spend, and the fleet-capacity timeline.
"""

import numpy as np

from repro.analysis import format_table, sparkline
from repro.core import CostModel, SpotWebController
from repro.markets import default_catalog, generate_market_dataset
from repro.predictors import (
    EWMAPredictor,
    ReactiveFailurePredictor,
    ReactivePricePredictor,
)
from repro.simulator import SpotWebSystem, SystemConfig
from repro.workloads import WorkloadTrace

INTERVAL = 300.0  # 5-minute control intervals
INTERVALS = 24  # two hours of simulated time


def main() -> None:
    catalog = default_catalog()
    markets = catalog.subset(
        ["m4.large", "m4.xlarge", "m4.2xlarge", "m5.large", "m5.xlarge",
         "m5.2xlarge", "c5.xlarge", "c5.2xlarge"]
    ).spot_markets()
    n = len(markets)

    dataset = generate_market_dataset(
        markets, intervals=INTERVALS, seed=13, interval_seconds=INTERVAL
    )
    # A ramping workload: 80 -> 320 req/s and back.
    phase = np.linspace(0, np.pi, INTERVALS)
    trace = WorkloadTrace(
        80.0 + 240.0 * np.sin(phase) ** 2, INTERVAL, name="ramp"
    )

    controller = SpotWebController(
        markets,
        EWMAPredictor(alpha=0.5),
        ReactivePricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=3,
        cost_model=CostModel(churn_penalty=0.2),
    )
    system = SpotWebSystem(
        controller, dataset, SystemConfig(interval_seconds=INTERVAL, seed=13)
    )

    print(f"Running {INTERVALS} control intervals "
          f"({INTERVALS * INTERVAL / 60:.0f} simulated minutes) "
          f"of live traffic...\n")
    report = system.run(trace)

    rows = [[k, v] for k, v in report.summary().items()]
    print(format_table(["metric", "value"], rows))

    times = np.array([t for t, _, _ in report.fleet_timeline])
    caps = np.array([c for _, _, c in report.fleet_timeline])
    # Resample capacity to the interval grid for display.
    grid = np.array(
        [caps[times <= (k + 1) * INTERVAL][-1] for k in range(INTERVALS)]
    )
    print("\ndemand    ", sparkline(trace.rates, width=INTERVALS))
    print("capacity  ", sparkline(grid, width=INTERVALS))
    print("observed  ", sparkline(np.array(report.interval_observed_rps), width=INTERVALS))
    print(f"\nrevocation events: {report.revocation_events}, "
          f"total spend: ${report.total_cost:.3f}")


if __name__ == "__main__":
    main()
