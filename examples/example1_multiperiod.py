#!/usr/bin/env python3
"""The paper's Example 1: planning over a horizon instead of a single step.

Two server types straight from the paper — a small one serving 10 req/s at
2 c/hour and a large one serving 100 req/s at 15 c/hour — with demand at
25 req/s this hour and a predicted jump to 110 req/s the next.

A single-period optimizer sees only the 25 req/s hour.  The multi-period
optimizer plans both hours at once: the jump is already in the plan, the
large server (cheaper per request: 0.15 c vs 0.20 c per req/s-hour) carries
the scale-up, and the hour-1 portfolio is chosen knowing what hour 2 needs —
so the transition is a planned scale-up rather than a surprise re-planning.

Note on fidelity: like the paper's own CVXPY formulation, the optimizer is a
continuous relaxation — it allocates *fractions* of demand by per-request
cost, and integer server effects (3 small at 6 c vs 1 large at 15 c) appear
only after rounding.  The transaction-cost benefit of multi-period planning
is measured at system level in ``benchmarks/test_ablations.py`` (churn
ablation) and Fig. 6(b).
"""

import numpy as np

from repro.analysis import format_table
from repro.core import CostModel, MPOOptimizer
from repro.markets.catalog import InstanceType, Market, PurchaseOption


def main() -> None:
    small = Market(
        InstanceType("small.example", 1, 2.0, 0.02, capacity_rps=10.0),
        PurchaseOption.SPOT,
    )
    large = Market(
        InstanceType("large.example", 8, 16.0, 0.15, capacity_rps=100.0),
        PurchaseOption.SPOT,
    )
    markets = [small, large]

    print("Per-request cost (price / capacity):")
    print(
        format_table(
            ["server", "price_$/h", "capacity_rps", "cost_per_rps_h"],
            [
                [m.instance.name, m.instance.ondemand_price, m.capacity_rps,
                 m.instance.per_request_cost(m.instance.ondemand_price)]
                for m in markets
            ],
        )
    )

    prices = np.array([[0.02, 0.15], [0.02, 0.15]])
    failures = np.zeros((2, 2))
    covariance = 1e-9 * np.eye(2)
    cost_model = CostModel(risk_aversion=0.0, churn_penalty=0.0)

    spo = MPOOptimizer(markets, horizon=1, cost_model=cost_model)
    res_spo = spo.optimize(np.array([25.0]), prices[:1], failures[:1], covariance)

    mpo = MPOOptimizer(markets, horizon=2, cost_model=cost_model)
    res_mpo = mpo.optimize(np.array([25.0, 110.0]), prices, failures, covariance)

    def plan_rows(name, result, targets):
        rows = []
        for tau in range(result.plan.horizon):
            counts = result.plan.counts(tau)
            rows.append(
                [
                    f"{name} t+{tau + 1}",
                    targets[tau],
                    *counts,
                    float(counts @ np.array([10.0, 100.0])),
                ]
            )
        return rows

    print("\nExample 1: demand 25 req/s now, predicted 110 req/s next hour\n")
    rows = plan_rows("SPO (H=1)", res_spo, [25.0]) + plan_rows(
        "MPO (H=2)", res_mpo, [25.0, 110.0]
    )
    print(
        format_table(
            ["plan", "target_rps", "small_n", "large_n", "capacity_rps"],
            rows,
        )
    )
    print(
        "\nThe SPO plan ends at hour 1; the demand jump will force a fresh "
        "decision\nunder time pressure.  The MPO plan already contains the "
        "hour-2 fleet: the\nscale-up is pre-planned, and the hour-1 choice "
        "was made knowing it was coming."
    )


if __name__ == "__main__":
    main()
