#!/usr/bin/env python3
"""Spiky VoD workload with reactive fallback provisioning.

The TV4-style workload has hard-to-predict evening spikes — the case the
paper's Sec. 6.2 reactive algorithm exists for: when realized demand blows
through the CI padding, SpotWeb tops up with non-revocable on-demand
capacity for the next interval and decays the boost once the spike passes.

The example runs two weeks of the VoD trace with and without the fallback
and prints the violation/cost trade plus an ASCII view of demand vs
provisioned capacity.
"""

import numpy as np

from repro.analysis import format_table, sparkline
from repro.core import CostModel, ReactiveFallback, SpotWebController
from repro.core.policy import SpotWebPolicy
from repro.markets import PurchaseOption, default_catalog, generate_market_dataset
from repro.predictors import (
    AR1PricePredictor,
    ReactiveFailurePredictor,
    SplinePredictor,
)
from repro.simulator import CostSimulator
from repro.workloads import vod_like

WEEKS = 2
PEAK_RPS = 30_000.0
SEED = 11


def build_policy(markets, fallback):
    n = len(markets)
    controller = SpotWebController(
        markets,
        SplinePredictor(24),
        AR1PricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=4,
        cost_model=CostModel(churn_penalty=0.2),
        fallback=fallback,
    )
    return SpotWebPolicy(controller)


def main() -> None:
    catalog = default_catalog()
    spot = catalog.spot_markets(12)
    ondemand = [
        catalog.market(m.instance.name, PurchaseOption.ON_DEMAND) for m in spot
    ]
    markets = spot + ondemand

    dataset = generate_market_dataset(markets, intervals=WEEKS * 7 * 24, seed=SEED)
    trace = vod_like(WEEKS, seed=SEED).scaled(PEAK_RPS)
    sim = CostSimulator(dataset, trace, seed=SEED)

    plain = sim.run(build_policy(markets, None), name="no-fallback")
    fallback = ReactiveFallback(markets, trigger_fraction=0.01, boost_factor=1.5)
    boosted = sim.run(build_policy(markets, fallback), name="with-fallback")

    print("=== Spiky VoD workload, reactive fallback on/off ===\n")
    rows = [
        [r.name, r.total_cost, r.provisioning_cost, 100 * r.unserved_fraction]
        for r in (plain, boosted)
    ]
    print(format_table(["policy", "total_$", "prov_$", "unserved_%"], rows))
    print(f"\nfallback activations: {fallback.activations}")

    print("\ndemand      ", sparkline(trace.rates, width=72))
    print("capacity    ", sparkline(boosted.capacity_rps, width=72))
    ratio = boosted.capacity_rps / np.maximum(trace.rates[: len(boosted.capacity_rps)], 1)
    print("cap/demand  ", sparkline(np.clip(ratio, 0, 3), width=72))


if __name__ == "__main__":
    main()
