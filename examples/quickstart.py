#!/usr/bin/env python3
"""Quickstart: run a SpotWeb-managed web cluster on synthetic spot markets.

Builds the full pipeline in ~30 lines:

1. a market universe (12 EC2-like spot markets with synthetic price and
   revocation traces),
2. a week of Wikipedia-like traffic,
3. the SpotWeb controller (spline+CI workload predictor, AR(1) price
   predictor, reactive failure predictor, 4-interval look-ahead),
4. the interval-level cost simulator,

then prints the cost/SLO report and the final portfolio.
"""

from repro.analysis import format_table
from repro.core import CostModel, SpotWebController
from repro.core.policy import SpotWebPolicy
from repro.markets import default_catalog, generate_market_dataset
from repro.predictors import (
    AR1PricePredictor,
    ReactiveFailurePredictor,
    SplinePredictor,
)
from repro.simulator import CostSimulator
from repro.workloads import wikipedia_like


def main() -> None:
    markets = default_catalog().spot_markets(12)
    n = len(markets)

    dataset = generate_market_dataset(markets, intervals=7 * 24, seed=42)
    trace = wikipedia_like(1, seed=42).scaled(20_000.0)

    controller = SpotWebController(
        markets,
        SplinePredictor(intervals_per_day=24),
        AR1PricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=4,
        cost_model=CostModel(penalty=0.02, risk_aversion=5.0, churn_penalty=0.2),
    )
    policy = SpotWebPolicy(controller)

    simulator = CostSimulator(dataset, trace, seed=42)
    report = simulator.run(policy, name="spotweb")

    print("=== SpotWeb quickstart: one week, 12 spot markets ===\n")
    rows = [[k, v] for k, v in report.summary().items()]
    print(format_table(["metric", "value"], rows))

    decision = policy.last_decision
    assert decision is not None
    print("\nFinal portfolio (last interval):")
    active = [
        (m.name, int(c))
        for m, c in zip(markets, decision.counts)
        if c > 0
    ]
    print(format_table(["market", "servers"], active))
    print(f"\nTarget capacity: {decision.target_rps:.0f} req/s "
          f"(provisioned {decision.provisioned_rps:.0f} req/s)")


if __name__ == "__main__":
    main()
