#!/usr/bin/env python3
"""Calibrating the synthetic market to a real price history.

The reproduction's spot prices are synthetic; if you hold real price data
(a CSV export of your provider's spot history), you can fit the generator to
it and run every SpotWeb experiment on markets that move like yours.

The script demonstrates the loop end to end without external data: it
treats one synthetic series as "the real history", writes it to a CSV,
loads it back through the trace loader, fits a
:class:`~repro.markets.price_process.SpotPriceProcess` with
:func:`~repro.markets.calibration.fit_price_process`, and compares the
original against a re-generated series.
"""

import csv
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import format_table, sparkline
from repro.markets import default_catalog, fit_price_process
from repro.markets.price_process import SpotPriceProcess


def main() -> None:
    market = default_catalog().market("m5.2xlarge")
    ondemand = market.instance.ondemand_price

    # "The real history": 60 days of hourly prices from a hidden process.
    hidden = SpotPriceProcess(
        ondemand_price=ondemand,
        base_discount=0.28,
        reversion=0.18,
        volatility=0.07,
        p_enter_pressure=0.012,
        p_exit_pressure=0.12,
    )
    history = hidden.sample(24 * 60, np.random.default_rng(99))

    # Round-trip through a CSV the way a user's export would arrive.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "spot_history.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["hour", "price_usd"])
            for t, p in enumerate(history):
                writer.writerow([t, f"{p:.6f}"])
        from repro.workloads import load_csv_trace

        loaded = load_csv_trace(path, value_column="price_usd")
        prices = loaded.rates

    fit = fit_price_process(prices, ondemand)
    regen = fit.process.sample(prices.size, np.random.default_rng(7))

    rows = [
        ["median_price", float(np.median(prices)), float(np.median(regen))],
        ["p95_price", float(np.quantile(prices, 0.95)), float(np.quantile(regen, 0.95))],
        ["min_price", float(prices.min()), float(regen.min())],
        [
            "lag1_autocorr(log)",
            float(np.corrcoef(np.log(prices[1:]), np.log(prices[:-1]))[0, 1]),
            float(np.corrcoef(np.log(regen[1:]), np.log(regen[:-1]))[0, 1]),
        ],
    ]
    print(f"Calibrating to {market.instance.name} "
          f"(on-demand ${ondemand}/h), 60 days of hourly history\n")
    print(format_table(["moment", "history", "regenerated"], rows))
    print(f"\nfitted: base_discount={fit.process.base_discount:.3f} "
          f"reversion={fit.process.reversion:.3f} "
          f"volatility={fit.process.volatility:.3f} "
          f"pressure_fraction={fit.pressure_fraction:.3f}")
    print("\nhistory     ", sparkline(prices, width=72))
    print("regenerated ", sparkline(regen, width=72))


if __name__ == "__main__":
    main()
