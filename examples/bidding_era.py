#!/usr/bin/env python3
"""Bid-era spot markets: how bidding strategy shapes revocation exposure.

Before per-second billing and two-minute warnings, EC2 spot instances lived
and died by the *bid*: the instance ran while the market price stayed below
it.  The paper's background section builds on that line of work.  This
example prices two classic strategies over synthetic spot markets —
bid-on-demand (never pay more than list) and quantile bidding (tolerate all
but the top tail) — and shows the trade between revocation frequency and
the implied failure probabilities SpotWeb's optimizer would see.
"""

import numpy as np

from repro.analysis import format_table, sparkline
from repro.markets import (
    OnDemandBid,
    QuantileBid,
    default_catalog,
    effective_failure_probs,
    generate_price_matrix,
    revocations_from_bids,
)


def main() -> None:
    markets = default_catalog().spot_markets(8)
    prices = generate_price_matrix(markets, 24 * 28, seed=3)

    strategies = {
        "bid=on-demand": OnDemandBid(1.0),
        "bid=q95": QuantileBid(0.95),
        "bid=q75": QuantileBid(0.75),
    }

    rows = []
    for name, strategy in strategies.items():
        bids = strategy.bids(markets, prices)
        events = revocations_from_bids(prices, bids)
        implied = effective_failure_probs(prices, bids, window=168)
        rows.append(
            [
                name,
                100 * events.mean(),
                100 * implied[-1].mean(),
                float(bids.mean()),
            ]
        )
    print(
        format_table(
            ["strategy", "revoked_intervals_%", "implied_f_%", "mean_bid_$"],
            rows,
            title="Bid strategies over 4 weeks x 8 markets",
        )
    )

    # Show one market's price path against the two bid levels.
    j = 0
    series = prices[:, j]
    od = markets[j].instance.ondemand_price
    q75 = float(np.quantile(series, 0.75))
    print(f"\n{markets[j].name}: price path (on-demand {od:.3f}, q75 bid {q75:.3f})")
    print("price  ", sparkline(series, width=72))
    print("above q75 bid:",
          "".join("x" if v > q75 else "." for v in series[::len(series) // 72]))


if __name__ == "__main__":
    main()
