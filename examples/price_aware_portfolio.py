#!/usr/bin/env python3
"""Price-aware portfolio selection: the Fig. 5 three-market race.

Three markets (r5d.24xlarge, r5.4xlarge, r4.4xlarge) with equal, low
revocation probability but moving spot prices — the cheapest per-request
market keeps changing.  A constant portfolio (frozen after 2 hours, counts
autoscaled by an oracle) cannot follow the price; SpotWeb's multi-period
optimizer re-plans every hour and shifts allocation to whichever market is
cheap.

Prints the allocation trajectory of both policies and the cost gap.
"""

import numpy as np

from repro.analysis import format_table
from repro.experiments.fig5_price_awareness import (
    MARKET_NAMES,
    format_fig5,
    run_fig5,
)


def allocation_timeline(report, capacities, every: int = 6) -> list[list]:
    rows = []
    for t in range(0, report.counts.shape[0], every):
        shares = report.counts[t] * capacities
        total = shares.sum()
        mix = shares / total if total > 0 else shares
        rows.append([t, *[f"{100 * m:.0f}%" for m in mix]])
    return rows


def main() -> None:
    result = run_fig5(hours=72, peak_rps=4000.0, seed=0)
    print(format_fig5(result))

    capacities = result.dataset.capacities
    print("\nSpotWeb allocation over time (capacity share per market):")
    print(
        format_table(
            ["hour", *MARKET_NAMES],
            allocation_timeline(result.spotweb, capacities),
        )
    )
    print("\nConstant portfolio allocation over time:")
    print(
        format_table(
            ["hour", *MARKET_NAMES],
            allocation_timeline(result.constant, capacities),
        )
    )

    cheapest = np.argmin(result.dataset.per_request_costs(), axis=1)
    names = [MARKET_NAMES[i] for i in cheapest[::6]]
    print("\nCheapest market every 6h:", " -> ".join(names))


if __name__ == "__main__":
    main()
