#!/usr/bin/env python3
"""A Wikipedia-scale cluster over two weeks: SpotWeb vs every baseline.

The paper's motivating deployment: a read-heavy wiki cluster whose traffic
is strongly diurnal, hosted entirely on transient servers.  This example
runs the interval-level simulation over 24 spot markets + the matching
on-demand markets, comparing:

- SpotWeb (multi-period optimization, CI padding, churn penalty),
- ExoSphere re-run in a loop (single-period, backward-looking),
- a constant portfolio with an oracle autoscaler,
- Qu et al. threshold over-provisioning (survive 1 concurrent failure),
- all-on-demand (the conventional deployment).

Prints the cost ledger with savings relative to on-demand — the paper's
headline is "up to 90% cheaper than on-demand, up to 50% cheaper than
state-of-the-art transiency systems".
"""

from repro.analysis import CostLedger, format_table
from repro.baselines import (
    ConstantPortfolioPolicy,
    ExoSphereLoopPolicy,
    OnDemandPolicy,
    QuThresholdPolicy,
    oracle_target,
)
from repro.core import CostModel, SpotWebController
from repro.core.policy import SpotWebPolicy
from repro.markets import default_catalog, generate_market_dataset
from repro.predictors import (
    AR1PricePredictor,
    ReactiveFailurePredictor,
    SplinePredictor,
)
from repro.simulator import CostSimulator
from repro.workloads import wikipedia_like

WEEKS = 2
PEAK_RPS = 30_000.0
SEED = 7


def main() -> None:
    catalog = default_catalog()
    spot = catalog.spot_markets(24)
    # Add the on-demand variant of each type so OnDemandPolicy has columns.
    ondemand = [catalog.market(m.instance.name, option=m.option.__class__.ON_DEMAND)
                for m in spot[:24]]
    markets = spot + ondemand
    n = len(markets)

    dataset = generate_market_dataset(markets, intervals=WEEKS * 7 * 24, seed=SEED)
    trace = wikipedia_like(WEEKS, seed=SEED).scaled(PEAK_RPS)
    sim = CostSimulator(dataset, trace, seed=SEED)

    controller = SpotWebController(
        markets,
        SplinePredictor(24),
        AR1PricePredictor(n),
        ReactiveFailurePredictor(n),
        horizon=4,
        cost_model=CostModel(churn_penalty=0.2),
    )

    ledger = CostLedger()
    print(f"Simulating {WEEKS} weeks x {n} markets for 5 policies "
          f"(peak {PEAK_RPS:.0f} req/s)...\n")
    ledger.add(sim.run(SpotWebPolicy(controller), name="spotweb"))
    ledger.add(sim.run(ExoSphereLoopPolicy(markets), name="exosphere-loop"))
    ledger.add(
        sim.run(
            ConstantPortfolioPolicy(markets, target_fn=oracle_target(trace)),
            name="constant+oracle",
        )
    )
    ledger.add(
        sim.run(
            QuThresholdPolicy(markets, num_markets=4, failure_threshold=1),
            name="qu-threshold",
        )
    )
    ledger.add(sim.run(OnDemandPolicy(markets), name="on-demand"))

    print(
        format_table(
            CostLedger.headers(baseline=True),
            ledger.rows(baseline="on-demand"),
            title="Two-week cost ledger (savings relative to on-demand)",
        )
    )
    print(
        f"\nSpotWeb vs ExoSphere-in-a-loop: "
        f"{100 * ledger.savings('spotweb', 'exosphere-loop'):.1f}% cheaper"
    )
    print(
        f"SpotWeb vs on-demand:           "
        f"{100 * ledger.savings('spotweb', 'on-demand'):.1f}% cheaper"
    )


if __name__ == "__main__":
    main()
