#!/usr/bin/env python3
"""Revocation failover: the Fig. 4(a) testbed scenario, request by request.

A six-server heterogeneous web cluster serves ~600 req/s at 70–95%
utilization.  Three minutes in, the provider revokes the four larger
machines with a 120-second warning (correlated revocation across two
markets).  The script runs the scenario twice — once under SpotWeb's
transiency-aware load balancer (which drains the doomed servers, migrates
their sessions, and boots replacements inside the warning window) and once
under a vanilla HAProxy-style balancer (which ignores the warning) — and
prints the minute-by-minute latency and drop comparison.

Run with a smaller ``--scale`` for a quick look (e.g. 0.25).
"""

import argparse

from repro.experiments.fig4a_loadbalancer import format_fig4a, run_fig4a


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="load/capacity scale factor (1.0 = the paper's 600 req/s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(
        f"Simulating the revocation scenario at scale {args.scale} "
        f"({600 * args.scale:.0f} req/s)...\n"
    )
    results = run_fig4a(seed=args.seed, scale=args.scale)
    print(format_fig4a(results))

    sw, van = results["spotweb"], results["vanilla"]
    print()
    print(
        f"transiency-aware balancer: {100 * sw.drop_rate:.2f}% dropped, "
        f"p90 {sw.recorder.percentile(90) * 1000:.0f} ms"
    )
    print(
        f"vanilla balancer:          {100 * van.drop_rate:.2f}% dropped, "
        f"p90 {van.recorder.percentile(90) * 1000:.0f} ms"
    )


if __name__ == "__main__":
    main()
